//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros,
//! `Criterion::bench_function`, `Criterion::sample_size`, and
//! `Bencher::{iter, iter_batched}` — the subset the workspace's
//! benches use. Each
//! benchmark runs a short warm-up, then times `sample_size` batches and
//! prints the median ns/iter to stdout. No statistics engine, plots, or
//! CLI: this exists so `cargo bench` compiles and produces useful
//! ballpark numbers offline.

use std::time::Instant;

pub use std::hint::black_box;

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Calls `f` repeatedly and records its median per-call time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and pick an iteration count aiming at ~1ms per sample.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed > 1_000_000 || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = per_iter[per_iter.len() / 2];
    }

    /// Calls `setup` (untimed) before each timed `routine` call and
    /// records the median routine time. Unlike real criterion, inputs
    /// are built one at a time regardless of `BatchSize` — the hint
    /// only exists so callers port over unchanged.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            per_iter.push(start.elapsed().as_nanos() as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = per_iter[per_iter.len() / 2];
    }
}

/// Batching hint accepted by [`Bencher::iter_batched`]; ignored by the
/// stand-in (inputs are always built one at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Input is cheap to hold many of.
    SmallInput,
    /// Input is expensive; batch few.
    LargeInput,
    /// Build exactly one input per iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            ns_per_iter: f64::NAN,
        };
        f(&mut b);
        if b.ns_per_iter.is_nan() {
            println!("{id}: no measurement (Bencher::iter never called)");
        } else if b.ns_per_iter >= 1_000_000.0 {
            println!("{id}: {:.3} ms/iter", b.ns_per_iter / 1_000_000.0);
        } else if b.ns_per_iter >= 1_000.0 {
            println!("{id}: {:.3} µs/iter", b.ns_per_iter / 1_000.0);
        } else {
            println!("{id}: {:.1} ns/iter", b.ns_per_iter);
        }
        self
    }
}

/// Declares a benchmark group: a function running each target with the
/// given (or default) `Criterion` config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1_000u64).sum::<u64>()));
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    );

    #[test]
    fn group_runs_and_measures() {
        benches();
    }

    #[test]
    fn plain_group_form_compiles() {
        criterion_group!(plain, target);
        plain();
    }
}
