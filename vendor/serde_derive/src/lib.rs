//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses serde only for its derive bounds (no format crate is
//! available offline), and the sibling `serde` stub provides blanket
//! implementations of `Serialize`/`Deserialize` for every type. The
//! derives therefore only need to *exist* and accept `#[serde(...)]`
//! attributes; they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
