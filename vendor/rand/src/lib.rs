//! Offline stand-in for `rand` 0.9.
//!
//! Implements exactly the API subset this workspace uses — `RngCore`,
//! `Rng::random`, `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::shuffle` — backed by xoshiro256** seeded through
//! splitmix64. The generator differs from upstream `StdRng` (ChaCha12),
//! so absolute random streams differ, but every workspace guarantee is
//! about *determinism* (same seed ⇒ same stream), which holds.

/// The core abstraction: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (the upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly from an RNG (stand-in for sampling with
/// rand's `StandardUniform` distribution).
pub trait Random {
    /// Draws one uniform value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for usize {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Extension trait with the user-facing sampling methods.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (f64 draws land in `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// splitmix64. Deterministic, fast, and statistically strong for
    /// simulation workloads (not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the stand-in has a single generator.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place, uniformly over permutations.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Uniform draw in `[0, bound)` by rejection (avoids modulo bias).
    fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_draws_are_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut mean = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            mean += x;
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_permutes_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynr: &mut dyn RngCore = &mut rng;
        let x: f64 = dynr.random();
        assert!((0.0..1.0).contains(&x));
    }
}
