//! Offline stand-in for the `bytes` crate.
//!
//! `Vec<u8>`-backed `Bytes`/`BytesMut` plus the big-endian `Buf`/`BufMut`
//! method subset the workspace's snapshot codecs use. Semantics match
//! upstream for that subset: `put_*` append network-order bytes,
//! `get_*` consume from the front and panic on underflow.

use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Bytes { inner }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` reserved bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Freezes the buffer into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }

    /// Clears the buffer, keeping its allocated capacity (upstream
    /// semantics) — lets callers stage repeated encodes in one buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write access to a byte buffer (big-endian, matching upstream `bytes`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64` (bit-exact round trip).
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte buffer; implementations consume from the front.
///
/// # Panics
///
/// All `get_*` methods panic when fewer bytes remain than requested,
/// matching upstream `bytes`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `N`-byte array.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Consumes a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    /// Consumes a big-endian IEEE-754 `f64` (bit-exact round trip).
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow: {} < {N}", self.len());
        let (head, tail) = self.split_at(N);
        *self = tail;
        head.try_into().expect("split_at returned N bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_f64(-0.0); // sign-bit round trip
        buf.put_f64(f64::NAN);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_f64().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().is_nan());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_layout_matches_upstream() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u32(0x0102_0304);
        assert_eq!(&buf[..], &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
