//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types to
//! guarantee serializability (C-SERDE) but ships no format crate, so the
//! traits are never *driven*. This stub keeps the same spelling — traits
//! named `Serialize` and `Deserialize<'de>`, derive macros re-exported
//! under the same names — while implementing both traits for every type
//! via blanket impls. Swapping the real serde back in later only requires
//! repointing the workspace dependency.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Mirror of serde's `de` module namespace.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Mirror of serde's `ser` module namespace.
pub mod ser {
    pub use super::Serialize;
}
