//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), range and tuple strategies, `prop_map`,
//! `prop::collection::vec`, `any::<T>()`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are sampled from a generator seeded
//! deterministically from the test's module path and name, so failures
//! reproduce across runs. There is no shrinking: a failing case panics
//! with the standard assertion message.

pub mod test_runner {
    /// Per-test configuration (case count only).
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A deterministic splitmix64 stream used to sample strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

/// Re-export under proptest's public name.
pub use test_runner::Config as ProptestConfig;

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Include the end bound by widening one ULP-scale step: draw
            // in [0, 1] via a 53-bit lattice including both endpoints.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            self.start() + unit * (self.end() - self.start())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// A strategy always yielding clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`crate::any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The full-range strategy for a type: `any::<u64>()` etc.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any::default()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `elem`-generated values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Asserts a property within a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality within a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality within a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Expands to an early `return` from the case closure, so the case simply
/// doesn't count — there is no global rejection budget in this stand-in.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)
/// { body }` samples and runs `body` for each case. As in upstream
/// proptest, the `#[test]` attribute is written by the caller and passed
/// through.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let case = move || $body;
                    case();
                }
            }
        )+
    };
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::collection::vec(...)` resolves.
    pub use crate as prop;
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    fn point() -> impl Strategy<Value = (f64, f64)> {
        (-10.0..10.0, -10.0..10.0).prop_map(|(x, y)| (x, y))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respect_bounds(x in -5.0..7.0f64, n in 3usize..9, s in any::<u64>()) {
            prop_assert!((-5.0..7.0).contains(&x));
            prop_assert!((3..9).contains(&n));
            let _ = s;
        }

        #[test]
        fn tuples_and_map_compose(p in point()) {
            prop_assert!(p.0.abs() <= 10.0 && p.1.abs() <= 10.0);
        }

        #[test]
        fn vec_lengths_in_range(xs in prop::collection::vec(0.0..1.0f64, 1..50)) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            for x in xs {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_instantiations() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("label");
        let mut b = crate::test_runner::TestRng::deterministic("label");
        let s = 0.0..1.0f64;
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a).to_bits(), s.sample(&mut b).to_bits());
        }
    }
}
