//! # beaconplace
//!
//! A from-scratch Rust reproduction of **“Adaptive Beacon Placement”**
//! (N. Bulusu, J. Heidemann, D. Estrin — ICDCS 2001): connectivity-based
//! RF-proximity localization, a terrain-survey substrate, and the paper's
//! three adaptive beacon placement algorithms (Random, Max, Grid), together
//! with the full Monte-Carlo evaluation pipeline that regenerates every
//! figure and table of the paper's evaluation section.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names so applications can depend on a single crate.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`geom`] | `abp-geom` | points, terrains, lattices, disks, loci |
//! | [`stats`] | `abp-stats` | summaries, quantiles, confidence intervals |
//! | [`radio`] | `abp-radio` | propagation models incl. the paper's noise model |
//! | [`field`] | `abp-field` | beacons, beacon fields, generators, density math |
//! | [`localize`] | `abp-localize` | centroid/locus/multilateration localizers, metrics |
//! | [`survey`] | `abp-survey` | survey plans, the robot agent, error maps |
//! | [`placement`] | `abp-placement` | Random / Max / Grid + extensions |
//! | [`sim`] | `abp-sim` | experiment engine, figure regeneration, reports |
//!
//! # Quickstart
//!
//! ```
//! use beaconplace::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Paper setup: 100 m x 100 m terrain, R = 15 m, step = 1 m.
//! let terrain = Terrain::square(100.0);
//! let lattice = Lattice::new(terrain, 1.0);
//! let mut rng = StdRng::seed_from_u64(7);
//!
//! // Drop 50 beacons uniformly at random and survey the terrain.
//! let field = BeaconField::random_uniform(50, terrain, &mut rng);
//! let radio = IdealDisk::new(15.0);
//! let map = ErrorMap::survey(&lattice, &field, &radio, UnheardPolicy::TerrainCenter);
//! let before = map.mean_error();
//!
//! // Let the Grid algorithm pick where one extra beacon helps most.
//! let view = SurveyView { map: &map, field: &field, model: &radio };
//! let grid = GridPlacement::paper(terrain, 15.0);
//! let spot = grid.propose(&view, &mut rng);
//!
//! let mut improved = field.clone();
//! improved.add_beacon(spot);
//! let after = ErrorMap::survey(&lattice, &improved, &radio, UnheardPolicy::TerrainCenter)
//!     .mean_error();
//! assert!(after <= before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use abp_field as field;
pub use abp_geom as geom;
pub use abp_localize as localize;
pub use abp_placement as placement;
pub use abp_radio as radio;
pub use abp_sim as sim;
pub use abp_stats as stats;
pub use abp_survey as survey;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use abp_field::{Beacon, BeaconField, BeaconId};
    pub use abp_geom::{Disk, Lattice, LatticeIndex, Point, Rect, Terrain, Vec2};
    pub use abp_localize::{
        localization_error, CentroidLocalizer, ConnectivityOracle, Localizer, UnheardPolicy,
        WeightedCentroidLocalizer,
    };
    pub use abp_placement::{
        GridPlacement, MaxPlacement, PlacementAlgorithm, RandomPlacement, SurveyView,
    };
    pub use abp_radio::{IdealDisk, PerBeaconNoise, Propagation};
    pub use abp_sim::{PaperConfig, SimConfig};
    pub use abp_stats::Summary;
    pub use abp_survey::{ErrorMap, Robot, SurveyPlan};
}
