//! Quickstart: the paper's adaptive-placement loop in ~40 lines.
//!
//! Deploy a sparse random beacon field, survey the terrain, let each of
//! the paper's three algorithms (Random, Max, Grid) place one extra
//! beacon, and report the improvement in mean/median localization error.
//!
//! Run with: `cargo run --release --example quickstart`

use beaconplace::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Table 1 geometry: 100 m x 100 m terrain, R = 15 m, 1 m survey step.
    let terrain = Terrain::square(100.0);
    let lattice = Lattice::new(terrain, 1.0);
    let model = IdealDisk::new(15.0);

    // A sparse deployment: 40 beacons (0.004 / m^2 — "low density" regime).
    let mut rng = StdRng::seed_from_u64(2026);
    let field = BeaconField::random_uniform(40, terrain, &mut rng);
    println!("deployed {field}");

    // The exploring agent's survey.
    let before = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
    println!(
        "before placement: mean error {:.3} m, median {:.3} m, {} unheard points",
        before.mean_error(),
        before.median_error(),
        before.unheard_count()
    );

    // Let each algorithm place one additional beacon.
    let algorithms: Vec<Box<dyn PlacementAlgorithm>> = vec![
        Box::new(RandomPlacement::new(terrain)),
        Box::new(MaxPlacement::new()),
        Box::new(GridPlacement::paper(terrain, 15.0)),
    ];
    println!(
        "\n{:<8} {:>12} {:>16} {:>18}",
        "algo", "placed at", "mean gain (m)", "median gain (m)"
    );
    for algo in &algorithms {
        let view = SurveyView {
            map: &before,
            field: &field,
            model: &model,
        };
        let spot = algo.propose(&view, &mut rng);

        let mut extended = field.clone();
        let id = extended.add_beacon(spot);
        let mut after = before.clone();
        after.add_beacon(extended.get(id).expect("just added"), &model);

        println!(
            "{:<8} {:>12} {:>16.3} {:>18.3}",
            algo.name(),
            format!("({:.0},{:.0})", spot.x, spot.y),
            before.mean_error() - after.mean_error(),
            before.median_error() - after.median_error(),
        );
    }
    println!(
        "\nOne field is noisy; averaged over 1000 fields (paper fig. 5, `abp fig5`)\n\
         the ordering at this density is grid > max > random."
    );
}
