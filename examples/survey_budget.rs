//! Survey budget: how much exploration does adaptive placement need?
//!
//! The paper assumes the robot measures *every* lattice point (§3.1).
//! This example sweeps the exploration budget — the fraction of the
//! terrain actually measured — and shows the Grid algorithm's gain
//! degrading gracefully, a direct consequence of the solution space being
//! dense in good placements at low beacon density (§1, contribution 3).
//!
//! Run with: `cargo run --release --example survey_budget`

use abp_sim::experiments::{robustness, solution_space};
use abp_sim::SimConfig;

fn main() {
    let cfg = SimConfig {
        step: 2.0,
        trials: 60,
        ..SimConfig::paper()
    };
    let beacons = 40; // 0.004 / m^2: the low-density regime

    println!("exploration budget vs Grid's improvement ({beacons} beacons, ideal radio):\n");
    let fractions = [0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0];
    let points = robustness::exploration_sweep(&cfg, beacons, &fractions);
    let full = points.last().unwrap().mean_improvement.estimate;
    println!(
        "{:>10} {:>16} {:>12}",
        "explored", "mean gain (m)", "vs full"
    );
    for p in &points {
        println!(
            "{:>9.0}% {:>9.3} ± {:.3} {:>11.0}%",
            p.x * 100.0,
            p.mean_improvement.estimate,
            p.mean_improvement.half_width,
            p.mean_improvement.estimate / full * 100.0
        );
    }

    println!("\nwhy it works — the solution space is dense at low density:");
    let mut sol_cfg = cfg.clone();
    sol_cfg.beacon_counts = vec![20, 40, 100, 240];
    sol_cfg.trials = 30;
    let sol = solution_space::run(&sol_cfg, 0.0, 100, 0.02);
    println!(
        "\n{:>10} {:>22} {:>20}",
        "density", "satisfying candidates", "best possible (m)"
    );
    for p in &sol {
        println!(
            "{:>10.4} {:>21.0}% {:>20.3}",
            p.density,
            p.satisfying_fraction.estimate * 100.0,
            p.best_improvement.estimate
        );
    }
    println!(
        "\nAt 0.002-0.004 /m^2 roughly a third to a half of ALL candidate points are\n\
         'satisfying' placements, so even a 5% survey finds one. Past the saturation\n\
         density almost no candidate helps - no amount of surveying can fix that."
    );
}
