//! Noisy campus: placement under propagation noise and obstacles.
//!
//! The paper argues fixed placement cannot anticipate "terrain and
//! propagation uncertainties". This example builds a hostile world — the
//! paper's per-beacon noise model stacked with two radio-attenuating walls
//! — and shows the *empirical* algorithms (Max, Grid) adapting to coverage
//! holes a fixed uniform deployment leaves behind, while Random does not.
//!
//! Run with: `cargo run --release --example noisy_campus`

use beaconplace::placement::LocusBreakPlacement;
use beaconplace::prelude::*;
use beaconplace::radio::{Obstructed, Wall};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let terrain = Terrain::square(100.0);
    let lattice = Lattice::new(terrain, 1.0);

    // The world: paper noise model (Noise = 0.5) plus two walls that
    // halve effective range when crossed — think a long building and a
    // dense tree line.
    let noise = PerBeaconNoise::new(15.0, 0.5, 11);
    let world = Obstructed::new(
        noise,
        vec![
            Wall::new(Point::new(30.0, 20.0), Point::new(30.0, 80.0), 0.5),
            Wall::new(Point::new(30.0, 60.0), Point::new(90.0, 60.0), 0.6),
        ],
    );

    let mut rng = StdRng::seed_from_u64(5);
    let field = BeaconField::random_uniform(60, terrain, &mut rng);
    let before = ErrorMap::survey(&lattice, &field, &world, UnheardPolicy::TerrainCenter);
    println!(
        "60 beacons under noise 0.5 + walls: mean error {:.3} m, median {:.3} m",
        before.mean_error(),
        before.median_error()
    );

    let algorithms: Vec<Box<dyn PlacementAlgorithm>> = vec![
        Box::new(RandomPlacement::new(terrain)),
        Box::new(MaxPlacement::new()),
        Box::new(GridPlacement::paper(terrain, 15.0)),
        Box::new(LocusBreakPlacement::new()),
    ];

    println!("\none added beacon, averaged over 20 independent worlds:");
    println!(
        "{:<12} {:>16} {:>18}",
        "algo", "mean gain (m)", "median gain (m)"
    );
    for algo in &algorithms {
        let mut mean_gain = 0.0;
        let mut median_gain = 0.0;
        let worlds = 20;
        for seed in 0..worlds {
            let mut wrng = StdRng::seed_from_u64(1000 + seed);
            let f = BeaconField::random_uniform(60, terrain, &mut wrng);
            let w = Obstructed::new(
                PerBeaconNoise::new(15.0, 0.5, 100 + seed),
                world.walls().to_vec(),
            );
            let base = ErrorMap::survey(&lattice, &f, &w, UnheardPolicy::TerrainCenter);
            let view = SurveyView {
                map: &base,
                field: &f,
                model: &w,
            };
            let spot = algo.propose(&view, &mut wrng);
            let mut extended = f.clone();
            let id = extended.add_beacon(spot);
            let mut after = base.clone();
            after.add_beacon(extended.get(id).expect("just added"), &w);
            mean_gain += base.mean_error() - after.mean_error();
            median_gain += base.median_error() - after.median_error();
        }
        println!(
            "{:<12} {:>16.3} {:>18.3}",
            algo.name(),
            mean_gain / worlds as f64,
            median_gain / worlds as f64
        );
    }
    println!(
        "\nThe measurement-driven algorithms adapt to walls the deployment plan never knew about."
    );
}
