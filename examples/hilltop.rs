//! Hilltop: the paper's terrain scenario end to end.
//!
//! §1 motivates adaptive placement with a terrain "comprising of a
//! hilltop", and §6 plans a "more sophisticated terrain map". This
//! example builds that world: a 25 m hill in the middle of the terrain
//! casts radio shadows that no uniform deployment plan could anticipate.
//! A robot runs an *adaptive coarse-to-fine* survey (cheap sweep, then
//! detail only where the errors are), and the Grid algorithm patches the
//! shadowed side — pure measurement-driven adaptation.
//!
//! Run with: `cargo run --release --example hilltop`

use beaconplace::prelude::*;
use beaconplace::radio::{HeightField, TerrainShadowed};
use beaconplace::survey::render::{render_heatmap, HeatmapOptions};
use beaconplace::survey::sampling::survey_adaptive;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let terrain = Terrain::square(100.0);
    let lattice = Lattice::new(terrain, 2.0);

    // The world: ideal radios shadowed by a 25 m hill (radius 30 m) in
    // the middle of the terrain, antennas 1.5 m above ground.
    let world = TerrainShadowed::new(
        IdealDisk::new(15.0),
        HeightField::hill(10.0, 11, 25.0, 30.0),
        1.5,
    );
    println!("{}", world.heights());

    let mut rng = StdRng::seed_from_u64(41);
    let mut field = BeaconField::random_uniform(55, terrain, &mut rng);

    // Adaptive exploration: coarse every-4th-point sweep, then fully
    // refine the worst 25% of coarse cells.
    let (map, report) = survey_adaptive(
        &lattice,
        &field,
        &world,
        UnheardPolicy::TerrainCenter,
        4,
        0.25,
    );
    println!(
        "adaptive survey measured {:.0}% of the lattice ({} coarse + {} refined points)",
        report.measured_fraction * 100.0,
        report.coarse_measured,
        report.refined_measured
    );
    println!(
        "measured mean error {:.2} m, median {:.2} m\n",
        map.mean_error(),
        map.median_error()
    );
    let scale = map.valid_errors().fold(0.0f64, f64::max);
    let options = HeatmapOptions {
        width: 64,
        scale_max: Some(scale),
        show_beacons: true,
    };
    println!("{}", render_heatmap(&map, Some(&field), options));

    // Patch with two beacons, re-surveying adaptively between drops.
    let grid = GridPlacement::paper(terrain, 15.0);
    for round in 1..=2 {
        let (view_map, _) = survey_adaptive(
            &lattice,
            &field,
            &world,
            UnheardPolicy::TerrainCenter,
            4,
            0.25,
        );
        let spot = {
            let view = SurveyView {
                map: &view_map,
                field: &field,
                model: &world,
            };
            grid.propose(&view, &mut rng)
        };
        field.add_beacon(spot);
        let truth = ErrorMap::survey(&lattice, &field, &world, UnheardPolicy::TerrainCenter);
        println!(
            "round {round}: placed at ({:.1}, {:.1}) -> true mean error {:.2} m",
            spot.x,
            spot.y,
            truth.mean_error()
        );
    }

    let after = ErrorMap::survey(&lattice, &field, &world, UnheardPolicy::TerrainCenter);
    println!("\nafter patching:\n");
    println!("{}", render_heatmap(&after, Some(&field), options));
    println!("The shadow behind the hill is where the beacons went — no terrain model was given\nto the algorithm; it only saw the robot's measurements.");
}
