//! Air-drop recovery: the motivating scenario of the paper's §1.
//!
//! "Beacons may be perturbed during deployment. Consider for instance, a
//! terrain comprising of a hilltop. Air dropped beacon nodes will roll
//! over the hill..." A planned uniform grid of beacons lands scattered;
//! a robot carrying a handful of spare beacons surveys the damage and
//! patches the field greedily with the Grid algorithm (propose → deploy →
//! incremental re-survey).
//!
//! Run with: `cargo run --release --example airdrop_recovery`

use beaconplace::field::generate::{perturbed_grid, uniform_grid};
use beaconplace::placement::greedy_batch;
use beaconplace::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let terrain = Terrain::square(100.0);
    let lattice = Lattice::new(terrain, 1.0);
    let model = IdealDisk::new(15.0);
    let mut rng = StdRng::seed_from_u64(7);

    // The plan: a 5 x 5 grid. The reality: each beacon rolled up to 18 m.
    let planned = uniform_grid(terrain, 5);
    let mut actual = perturbed_grid(terrain, 5, 18.0, &mut rng);

    let planned_map = ErrorMap::survey(&lattice, &planned, &model, UnheardPolicy::TerrainCenter);
    let mut actual_map = ErrorMap::survey(&lattice, &actual, &model, UnheardPolicy::TerrainCenter);

    println!(
        "planned grid : mean error {:.3} m",
        planned_map.mean_error()
    );
    println!(
        "after airdrop: mean error {:.3} m ({} points lost coverage)",
        actual_map.mean_error(),
        actual_map.unheard_count() as i64 - planned_map.unheard_count() as i64
    );

    // A robot with 4 spare beacons patches the field greedily.
    let spares = 4;
    let algo = GridPlacement::paper(terrain, 15.0);
    let outcome = greedy_batch(
        &algo,
        &mut actual_map,
        &mut actual,
        &model,
        spares,
        &mut rng,
    );

    println!("\npatching with {spares} spare beacons (greedy Grid):");
    for (k, (pos, mean)) in outcome
        .positions
        .iter()
        .zip(&outcome.mean_after_each)
        .enumerate()
    {
        println!(
            "  spare {} at ({:5.1}, {:5.1}) -> mean error {:.3} m",
            k + 1,
            pos.x,
            pos.y,
            mean
        );
    }
    println!(
        "\nrecovered to {:.3} m vs the planned grid's {:.3} m",
        actual_map.mean_error(),
        planned_map.mean_error()
    );
}
