//! Beacon self-scheduling: the paper's §6 "beacon based" alternative.
//!
//! A dense (over-provisioned) beacon deployment prunes itself: each
//! beacon counts the active peers it can hear and redundant ones turn
//! passive, AFECA-style, using only beacon-to-beacon measurements — no
//! terrain survey, no robot. The example sweeps the redundancy target and
//! reports duty cycle vs localization quality, the energy/fidelity
//! trade-off the paper cites from its reference [19].
//!
//! Run with: `cargo run --release --example self_scheduling`

use beaconplace::placement::selfsched::{active_field, self_schedule};
use beaconplace::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let terrain = Terrain::square(100.0);
    let lattice = Lattice::new(terrain, 1.0);
    let model = IdealDisk::new(15.0);

    // Saturated deployment: 240 beacons = 0.024 / m^2, ~17 per coverage
    // area — well past the paper's saturation density of ~0.01.
    let mut rng = StdRng::seed_from_u64(31);
    let field = BeaconField::random_uniform(240, terrain, &mut rng);
    let full = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
    println!(
        "full deployment: {} beacons, mean error {:.3} m",
        field.len(),
        full.mean_error()
    );

    println!(
        "\n{:>16} {:>8} {:>12} {:>16} {:>14}",
        "target neighbors", "active", "duty cycle", "mean error (m)", "error vs full"
    );
    for target in [12usize, 8, 6, 4, 3, 2] {
        let schedule = self_schedule(&field, &model, target, target / 2);
        let pruned = active_field(&field, &schedule);
        let map = ErrorMap::survey(&lattice, &pruned, &model, UnheardPolicy::TerrainCenter);
        println!(
            "{:>16} {:>8} {:>11.0}% {:>16.3} {:>13.1}%",
            target,
            schedule.active.len(),
            schedule.duty_cycle() * 100.0,
            map.mean_error(),
            (map.mean_error() / full.mean_error() - 1.0) * 100.0
        );
    }
    println!("\nPast the saturation density, most beacons can sleep almost for free.");
}
