//! The exploring agent end to end (paper §3).
//!
//! A GPS-equipped robot walks the survey lattice in boustrophedon order,
//! measures localization error at every waypoint — through a slightly
//! imperfect GPS — then spends its beacon payload where the Grid
//! algorithm directs, re-surveying between deployments. Reports odometry
//! and payload, the operational quantities the paper's approach implies.
//!
//! Run with: `cargo run --release --example robot_survey`

use beaconplace::placement::PlacementAlgorithm;
use beaconplace::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let terrain = Terrain::square(100.0);
    let model = PerBeaconNoise::new(15.0, 0.3, 17);
    let mut rng = StdRng::seed_from_u64(99);
    let mut field = BeaconField::random_uniform(35, terrain, &mut rng);

    // A 2 m survey step keeps the walk at ~5.2 km per pass.
    let plan = SurveyPlan::new(terrain, 2.0);
    let mut robot = Robot::new(0.5, 3, 4); // 0.5 m GPS sigma, 3 beacons aboard
    println!("{robot}");
    println!("{plan}\n");

    let grid = GridPlacement::paper(terrain, 15.0);
    for pass in 1..=3 {
        let (map, report) = robot.survey(&plan, &field, &model, UnheardPolicy::TerrainCenter);
        println!(
            "pass {pass}: mean error {:.3} m, median {:.3} m, {} unheard waypoints, {:.0} m walked",
            map.mean_error(),
            map.median_error(),
            report.unheard,
            report.travelled
        );
        if robot.payload() == 0 {
            println!("  payload exhausted");
            break;
        }
        let spot = {
            let view = SurveyView {
                map: &map,
                field: &field,
                model: &model,
            };
            grid.propose(&view, &mut rng)
        };
        robot
            .deploy(&mut field, spot)
            .expect("payload checked above");
        println!(
            "  deployed a beacon at ({:.1}, {:.1}); {} left aboard",
            spot.x,
            spot.y,
            robot.payload()
        );
    }

    let (final_map, _) = robot.survey(&plan, &field, &model, UnheardPolicy::TerrainCenter);
    println!(
        "\nfinal: mean error {:.3} m with {} beacons; robot odometer {:.0} m",
        final_map.mean_error(),
        field.len(),
        robot.odometer()
    );
}
