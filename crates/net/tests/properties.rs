//! Property tests for the event queue and the simulator's determinism
//! contract (satellite: event-queue ordering invariants).

use abp_field::BeaconField;
use abp_geom::{Point, Terrain};
use abp_net::{EventKind, EventQueue, NetConfig, NetSim, SchedulerKind};
use abp_radio::IdealDisk;
use proptest::prelude::*;

fn kind_of(code: u8) -> EventKind {
    match code % 4 {
        0 => EventKind::Fire,
        1 => EventKind::DifsEnd,
        2 => EventKind::BackoffEnd,
        _ => EventKind::TxEnd,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events pop in non-decreasing timestamp order, and events sharing a
    /// timestamp pop in the order they were pushed.
    #[test]
    fn queue_pops_in_time_then_push_order(
        entries in prop::collection::vec((0u64..50, 0u32..8, 0u8..4), 1..200)
    ) {
        let mut q = EventQueue::new();
        for &(time, slot, code) in &entries {
            q.push(time, slot, kind_of(code), 0);
        }
        let mut last = (0u64, 0u64);
        let mut popped = 0usize;
        while let Some(e) = q.pop() {
            let key = (e.time, e.seq);
            prop_assert!(
                key > last || popped == 0,
                "events must pop in strict (time, seq) order: {last:?} then {key:?}"
            );
            last = key;
            popped += 1;
        }
        prop_assert_eq!(popped, entries.len());
    }

    /// Same-timestamp events preserve push order exactly.
    #[test]
    fn simultaneous_events_keep_push_order(n in 1usize..150, time in 0u64..1000) {
        let mut q = EventQueue::new();
        for slot in 0..n {
            q.push(time, slot as u32, EventKind::Fire, slot as u64);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.slot).collect();
        prop_assert_eq!(order, (0..n as u32).collect::<Vec<_>>());
    }

    /// Two runs from the same seed produce byte-identical event logs,
    /// across schedulers, duty cycles, and channel regimes.
    #[test]
    fn same_seed_runs_are_byte_identical(
        seed in any::<u64>(),
        n in 2usize..12,
        adaptive in any::<bool>(),
        ideal in any::<bool>(),
        duty_pct in 2u32..=10,
    ) {
        let terrain = Terrain::square(60.0);
        let field = BeaconField::from_positions(
            terrain,
            (0..n).map(|k| Point::new(5.0 + 50.0 * (k as f64 / n as f64), 30.0)),
        );
        let base = IdealDisk::new(15.0);
        let cfg = NetConfig {
            duration: 5.0,
            listen: 5.0,
            scheduler: if adaptive { SchedulerKind::Adaptive } else { SchedulerKind::Fixed },
            ideal_channel: ideal,
            duty_cycle: f64::from(duty_pct) / 10.0,
            ..NetConfig::paper()
        };
        let a = NetSim::run(&field, &base, &cfg, seed);
        let b = NetSim::run(&field, &base, &cfg, seed);
        prop_assert_eq!(a.log_bytes(), b.log_bytes());
        prop_assert_eq!(a.stats, b.stats);
    }

    /// The log replays events in strict (time, seq) order — the simulator
    /// never processes time out of order.
    #[test]
    fn run_log_is_time_ordered(seed in any::<u64>(), n in 2usize..10) {
        let field = BeaconField::from_positions(
            Terrain::square(40.0),
            (0..n).map(|k| Point::new(4.0 * (k + 1) as f64, 20.0)),
        );
        let base = IdealDisk::new(15.0);
        let run = NetSim::run(&field, &base, &NetConfig::tiny(), seed);
        let log = run.log();
        prop_assert!(!log.is_empty());
        for w in log.windows(2) {
            prop_assert!(
                (w[0].time, w[0].seq) < (w[1].time, w[1].seq),
                "log out of order: {:?} then {:?}", w[0], w[1]
            );
        }
    }
}
