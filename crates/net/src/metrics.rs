//! Workspace-wide time-domain simulation counters (`abp-trace`).
//!
//! The event loop counts locally in [`crate::NetStats`] while it runs and
//! charges each counter **once per run** from the final totals (the
//! batching idiom of `abp_radio::metrics`), so per-event cost is zero
//! even with tracing enabled.

use abp_trace::Counter;

/// Events popped from the queue across all simulation runs.
pub static EVENTS_PROCESSED: Counter = Counter::new("net_events_processed");

/// Receptions destroyed by interference (an in-range overlapping
/// transmission at the receiver).
pub static COLLISIONS: Counter = Counter::new("net_collisions");

/// Backoff countdowns entered after sensing a busy channel.
pub static BACKOFFS: Counter = Counter::new("net_backoffs");

/// Beacon messages successfully delivered beacon-to-beacon.
pub static MESSAGES_DELIVERED: Counter = Counter::new("net_messages_delivered");
