//! The event queue: a binary heap of timestamped events with
//! deterministic tie-breaking.
//!
//! Simulation time is integer **ticks** (microseconds) rather than `f64`
//! seconds, so event ordering is pure integer comparison — no
//! platform-dependent floating-point ties. Events at the same tick are
//! ordered by the monotone sequence number assigned when they were
//! pushed, which makes the processing order a *total* order determined
//! entirely by the push history: the replay-identity guarantee of
//! [`crate::NetSim`] rests on this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in microseconds.
pub type Ticks = u64;

/// Ticks per second (the tick is one microsecond).
pub const TICKS_PER_SEC: f64 = 1_000_000.0;

/// Converts seconds to ticks, rounding to the nearest tick.
#[inline]
pub(crate) fn ticks(secs: f64) -> Ticks {
    (secs * TICKS_PER_SEC).round() as Ticks
}

/// Converts ticks back to seconds.
#[inline]
pub(crate) fn secs(t: Ticks) -> f64 {
    t as f64 / TICKS_PER_SEC
}

/// What a scheduled event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A beacon's scheduler fires: time to attempt a transmission.
    Fire,
    /// The DIFS idle-wait elapsed; re-sense and transmit if still clear.
    DifsEnd,
    /// A backoff countdown elapsed; re-sense the channel.
    BackoffEnd,
    /// A transmission finished; deliver it to listeners.
    TxEnd,
}

impl EventKind {
    /// Stable single-byte encoding for the event log.
    pub fn code(self) -> u8 {
        match self {
            EventKind::Fire => 0,
            EventKind::DifsEnd => 1,
            EventKind::BackoffEnd => 2,
            EventKind::TxEnd => 3,
        }
    }
}

/// One scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// When the event fires.
    pub time: Ticks,
    /// Push order — the deterministic tie-break for simultaneous events.
    pub seq: u64,
    /// The beacon slot the event belongs to.
    pub slot: u32,
    /// What happens.
    pub kind: EventKind,
    /// Kind-specific payload: the transmission index for
    /// [`EventKind::TxEnd`], the attempt number for
    /// [`EventKind::BackoffEnd`], zero otherwise.
    pub arg: u64,
}

/// A min-heap of [`Event`]s ordered by `(time, seq)`.
///
/// `seq` is assigned by [`EventQueue::push`] in push order, so two events
/// scheduled for the same tick pop in the order they were scheduled —
/// never in heap-internal order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event, assigning it the next sequence number.
    pub fn push(&mut self, time: Ticks, slot: u32, kind: EventKind, arg: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq,
            slot,
            kind,
            arg,
        }));
    }

    /// Removes and returns the earliest event (ties broken by push order).
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One processed event, as recorded in the replay log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// When the event fired.
    pub time: Ticks,
    /// Its queue sequence number.
    pub seq: u64,
    /// The beacon slot it belonged to.
    pub slot: u32,
    /// [`EventKind::code`] of the event.
    pub kind: u8,
    /// The event's `arg` payload.
    pub arg: u64,
}

impl EventRecord {
    /// Appends the record's canonical little-endian byte encoding to
    /// `out` (the unit of the byte-identical replay contract).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.time.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.slot.to_le_bytes());
        out.push(self.kind);
        out.extend_from_slice(&self.arg.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 0, EventKind::Fire, 0);
        q.push(10, 1, EventKind::Fire, 0);
        q.push(20, 2, EventKind::Fire, 0);
        let times: Vec<Ticks> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, [10, 20, 30]);
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut q = EventQueue::new();
        for slot in 0..50u32 {
            q.push(7, slot, EventKind::Fire, 0);
        }
        let slots: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.slot).collect();
        assert_eq!(slots, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn tick_conversion_round_trips_whole_microseconds() {
        assert_eq!(ticks(1.5), 1_500_000);
        assert_eq!(secs(1_500_000), 1.5);
        assert_eq!(ticks(0.0), 0);
    }

    #[test]
    fn record_encoding_is_fixed_width() {
        let r = EventRecord {
            time: 1,
            seq: 2,
            slot: 3,
            kind: 4,
            arg: 5,
        };
        let mut out = Vec::new();
        r.encode_into(&mut out);
        assert_eq!(out.len(), 8 + 8 + 4 + 1 + 8);
    }
}
