//! Beacon transmission schedulers.
//!
//! The interval policy is a *pure function* of the configuration, the
//! beacon's observed state (audible neighbors, remaining battery), and a
//! pre-drawn jitter uniform — no internal state, so schedules replay
//! exactly. The adaptive policy follows the `bnet` buoy scheduler: a
//! beacon surrounded by audible neighbors (the region is already
//! beaconed) or running low on battery stretches its interval toward
//! `adaptive_max`, while a lonely, fresh beacon beacons at
//! `adaptive_min`.

use crate::config::{NetConfig, SchedulerKind};

/// Seconds until the next transmission attempt.
///
/// * `neighbors` — beacons heard within [`NetConfig::neighbor_timeout`].
/// * `battery_frac` — remaining/capacity in `[0, 1]` (1.0 when the
///   battery is unlimited).
/// * `jitter_u` — a uniform draw in `[0, 1)`; the caller derives it from
///   the seed stream so the scheduler itself stays stateless.
pub fn interval_secs(cfg: &NetConfig, neighbors: u32, battery_frac: f64, jitter_u: f64) -> f64 {
    let nominal = match cfg.scheduler {
        SchedulerKind::Fixed => cfg.period,
        SchedulerKind::Adaptive => {
            // Crowding: how saturated the neighborhood already is.
            let crowding = f64::from(neighbors.min(cfg.neighbor_threshold))
                / f64::from(cfg.neighbor_threshold.max(1));
            // Exhaustion: how much battery is gone.
            let exhaustion = 1.0 - battery_frac.clamp(0.0, 1.0);
            let stretch = 0.5 * crowding + 0.5 * exhaustion;
            cfg.adaptive_min + (cfg.adaptive_max - cfg.adaptive_min) * stretch
        }
    };
    // Symmetric multiplicative jitter: factor in [1 - j/2, 1 + j/2).
    nominal * (1.0 + cfg.jitter * (jitter_u - 0.5))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: SchedulerKind) -> NetConfig {
        NetConfig {
            scheduler: kind,
            jitter: 0.0,
            ..NetConfig::paper()
        }
    }

    #[test]
    fn fixed_ignores_observations() {
        let c = cfg(SchedulerKind::Fixed);
        assert_eq!(interval_secs(&c, 0, 1.0, 0.5), c.period);
        assert_eq!(interval_secs(&c, 100, 0.01, 0.5), c.period);
    }

    #[test]
    fn adaptive_spans_its_range() {
        let c = cfg(SchedulerKind::Adaptive);
        // Lonely and fresh: fastest beaconing.
        assert_eq!(interval_secs(&c, 0, 1.0, 0.5), c.adaptive_min);
        // Crowded and drained: slowest.
        assert_eq!(
            interval_secs(&c, c.neighbor_threshold, 0.0, 0.5),
            c.adaptive_max
        );
        // Monotone in crowding.
        let a = interval_secs(&c, 1, 1.0, 0.5);
        let b = interval_secs(&c, 4, 1.0, 0.5);
        assert!(a < b);
        // Monotone in exhaustion.
        let fresh = interval_secs(&c, 0, 0.9, 0.5);
        let tired = interval_secs(&c, 0, 0.2, 0.5);
        assert!(fresh < tired);
    }

    #[test]
    fn jitter_brackets_the_nominal_interval() {
        let c = NetConfig {
            jitter: 0.2,
            ..cfg(SchedulerKind::Fixed)
        };
        let lo = interval_secs(&c, 0, 1.0, 0.0);
        let hi = interval_secs(&c, 0, 1.0, 0.999_999);
        assert!(lo >= c.period * 0.9 - 1e-12);
        assert!(hi < c.period * 1.1);
        assert!(lo < hi);
    }
}
