//! The discrete-event engine and its replayable outcome.
//!
//! One [`NetSim::run`] simulates a beacon field for a configured span of
//! time: schedulers fire, beacons contend for the channel (carrier sense →
//! DIFS → transmit, or bounded exponential backoff when busy), messages
//! collide at receivers that hear two overlapping in-range transmissions,
//! batteries drain, and beacons die. The outcome is a [`NetRun`]: every
//! transmission with its interference set (which the
//! [`crate::MessageCountOracle`] replays offline for arbitrary receiver
//! positions), MAC statistics, and the byte-exact event log behind the
//! replay-identity contract.
//!
//! # Determinism
//!
//! The loop is single-threaded; events are processed in `(time, seq)`
//! order where `seq` is push order; every random draw is a hash of
//! `(seed, purpose-salt, beacon slot, monotone counter)`. Two calls with
//! the same `(field, base-model, config, seed)` therefore produce
//! byte-identical [`NetRun::log_bytes`] — asserted by proptests here and
//! gated in CI.

use crate::config::NetConfig;
use crate::event::{secs, ticks, EventKind, EventQueue, EventRecord, Ticks};
use crate::oracle::MessageCountOracle;
use crate::sched;
use crate::{hash_words, metrics, unit};
use abp_field::BeaconField;
use abp_geom::Point;
use abp_radio::{Propagation, TxId};

/// Draw-stream salts: each randomness purpose gets an independent stream.
const SALT_PHASE: u64 = 0x11;
const SALT_JITTER: u64 = 0x22;
const SALT_BACKOFF: u64 = 0x33;
const SALT_DUTY: u64 = 0x44;

/// "Never heard" sentinel in the per-beacon neighbor tables.
const NEVER: Ticks = Ticks::MAX;

/// One beacon message on the air.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmission {
    /// Index of the transmitting beacon in the field.
    pub slot: u32,
    /// Its transmitter id (the propagation-model key).
    pub tx: TxId,
    /// Its position.
    pub pos: Point,
    /// Tick the transmission started.
    pub start: Ticks,
    /// Tick it ended (`start + airtime`); the occupancy interval is the
    /// half-open `[start, end)`.
    pub end: Ticks,
}

/// Aggregate MAC/energy statistics of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Events popped from the queue.
    pub events_processed: u64,
    /// Scheduler fires on live beacons.
    pub fires: u64,
    /// Fires skipped because the beacon was still mid-access from the
    /// previous fire.
    pub skipped_busy: u64,
    /// Backoff countdowns entered.
    pub backoffs: u64,
    /// Messages abandoned after exhausting `max_backoffs` (or running
    /// past the end of the simulation).
    pub drops: u64,
    /// Transmissions that made it onto the air.
    pub messages_sent: u64,
    /// Beacon-to-beacon receptions that succeeded.
    pub messages_delivered: u64,
    /// Receptions destroyed by an overlapping in-range transmission.
    pub collisions: u64,
    /// Beacons whose battery ran out.
    pub deaths: u64,
    /// Tick of the first battery death, if any.
    pub first_death: Option<Ticks>,
    /// Beacons still alive when the run ended.
    pub alive_at_end: u64,
}

impl NetStats {
    /// Fraction of in-range receptions destroyed by interference:
    /// `collisions / (collisions + delivered)`, zero when nothing was
    /// heard at all.
    pub fn collision_rate(&self) -> f64 {
        let total = self.collisions + self.messages_delivered;
        if total == 0 {
            0.0
        } else {
            self.collisions as f64 / total as f64
        }
    }
}

/// The replayable outcome of one [`NetSim::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetRun {
    cfg: NetConfig,
    seed: u64,
    transmissions: Vec<Transmission>,
    /// `overlaps[i]` — indices of transmissions whose air intervals
    /// overlap transmission `i` (mutual; empty under an ideal channel).
    overlaps: Vec<Vec<u32>>,
    /// Per-slot transmission indices, in time order.
    by_slot: Vec<Vec<u32>>,
    /// Sorted `(tx id, slot)` pairs for oracle lookups.
    tx_slots: Vec<(u64, u32)>,
    log: Vec<EventRecord>,
    /// Aggregate statistics.
    pub stats: NetStats,
}

impl NetRun {
    /// The configuration that produced this run.
    pub fn cfg(&self) -> &NetConfig {
        &self.cfg
    }

    /// The seed that produced this run.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Every transmission, in start order.
    pub fn transmissions(&self) -> &[Transmission] {
        &self.transmissions
    }

    /// Indices of transmissions overlapping transmission `i` on the air.
    pub fn overlaps_of(&self, i: usize) -> &[u32] {
        &self.overlaps[i]
    }

    /// The processed-event log, in processing order.
    pub fn log(&self) -> &[EventRecord] {
        &self.log
    }

    /// The canonical byte encoding of the run: every processed event plus
    /// the final statistics. Two runs from the same `(field, model,
    /// config, seed)` produce **identical** bytes — the replay contract.
    pub fn log_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.log.len() * 29 + 96);
        for r in &self.log {
            r.encode_into(&mut out);
        }
        let s = &self.stats;
        for v in [
            s.events_processed,
            s.fires,
            s.skipped_busy,
            s.backoffs,
            s.drops,
            s.messages_sent,
            s.messages_delivered,
            s.collisions,
            s.deaths,
            s.first_death.unwrap_or(u64::MAX),
            s.alive_at_end,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Transmission indices of the beacon in field slot `slot`.
    pub fn transmissions_of_slot(&self, slot: usize) -> &[u32] {
        &self.by_slot[slot]
    }

    /// Field slot of a transmitter id, if that beacon exists in the run.
    pub fn slot_of_tx(&self, tx: TxId) -> Option<usize> {
        self.tx_slots
            .binary_search_by_key(&tx.0, |&(id, _)| id)
            .ok()
            .map(|k| self.tx_slots[k].1 as usize)
    }

    /// The listen window `[start, end)` in ticks: the final
    /// [`NetConfig::listen`] seconds of the run.
    pub fn listen_window(&self) -> (Ticks, Ticks) {
        let end = ticks(self.cfg.duration);
        (end.saturating_sub(ticks(self.cfg.listen)), end)
    }

    /// Network lifetime in seconds: time of the first battery death, or
    /// the full duration if every beacon survived.
    pub fn lifetime_secs(&self) -> f64 {
        self.stats.first_death.map_or(self.cfg.duration, secs)
    }

    /// The paper's message-counting connectivity oracle over this run's
    /// schedule, backed by `base` (normally the same model the run was
    /// simulated with).
    pub fn oracle<'a, M: Propagation + ?Sized>(&'a self, base: &'a M) -> MessageCountOracle<'a, M> {
        MessageCountOracle::new(self, base)
    }
}

/// Per-beacon runtime state.
struct BeaconRt {
    state: State,
    battery: f64,
    last_drain: Ticks,
    /// Fire counter — the jitter draw stream index.
    fires: u64,
    /// Backoff draw counter.
    draws: u64,
    /// Last tick each other slot was heard (`NEVER` = not yet).
    last_heard: Vec<Ticks>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    Difs,
    Backoff,
    Transmitting,
    Dead,
}

/// The discrete-event simulator. Stateless: all state lives inside one
/// [`NetSim::run`] call.
pub struct NetSim;

impl NetSim {
    /// Simulates `field` under `base` propagation for `cfg.duration`
    /// seconds. Deterministic in `(field, base, cfg, seed)`.
    ///
    /// `base` decides who carries to whom — passing an
    /// `abp-fault` `FaultyRadio` composes fault plans with the MAC layer
    /// (dead beacons neither occupy the channel nor get heard).
    pub fn run(field: &BeaconField, base: &dyn Propagation, cfg: &NetConfig, seed: u64) -> NetRun {
        cfg.validate();
        let _span = abp_trace::span!("net.run");
        let mut engine = Engine::new(field, base, cfg, seed);
        engine.prime();
        while let Some(e) = engine.q.pop() {
            engine.stats.events_processed += 1;
            engine.log.push(EventRecord {
                time: e.time,
                seq: e.seq,
                slot: e.slot,
                kind: e.kind.code(),
                arg: e.arg,
            });
            let slot = e.slot as usize;
            match e.kind {
                EventKind::Fire => engine.handle_fire(slot, e.time),
                EventKind::DifsEnd => engine.handle_difs_end(slot, e.time),
                EventKind::BackoffEnd => engine.handle_backoff_end(slot, e.arg as u32, e.time),
                EventKind::TxEnd => engine.handle_tx_end(slot, e.arg as usize, e.time),
            }
        }
        engine.finish(field)
    }
}

struct Engine<'a> {
    cfg: &'a NetConfig,
    base: &'a dyn Propagation,
    seed: u64,
    positions: Vec<Point>,
    tx_ids: Vec<TxId>,
    rts: Vec<BeaconRt>,
    q: EventQueue,
    transmissions: Vec<Transmission>,
    overlaps: Vec<Vec<u32>>,
    /// Transmissions possibly still on the air (pruned lazily).
    active: Vec<u32>,
    stats: NetStats,
    log: Vec<EventRecord>,
    duration: Ticks,
    airtime: Ticks,
    difs: Ticks,
    slot_ticks: Ticks,
    neighbor_timeout: Ticks,
}

impl<'a> Engine<'a> {
    fn new(field: &BeaconField, base: &'a dyn Propagation, cfg: &'a NetConfig, seed: u64) -> Self {
        let n = field.len();
        Engine {
            cfg,
            base,
            seed,
            positions: field.iter().map(|b| b.pos()).collect(),
            tx_ids: field.iter().map(|b| b.tx()).collect(),
            rts: (0..n)
                .map(|_| BeaconRt {
                    state: State::Idle,
                    battery: cfg.battery,
                    last_drain: 0,
                    fires: 0,
                    draws: 0,
                    last_heard: vec![NEVER; n],
                })
                .collect(),
            q: EventQueue::new(),
            transmissions: Vec::new(),
            overlaps: Vec::new(),
            active: Vec::new(),
            stats: NetStats::default(),
            log: Vec::new(),
            duration: ticks(cfg.duration),
            airtime: ticks(cfg.airtime).max(1),
            difs: ticks(cfg.difs),
            slot_ticks: ticks(cfg.slot).max(1),
            neighbor_timeout: ticks(cfg.neighbor_timeout),
        }
    }

    /// Schedules every beacon's first fire at an independent random phase
    /// in `[0, period)` — without this, synchronized schedulers would
    /// collide forever.
    fn prime(&mut self) {
        for slot in 0..self.rts.len() {
            let u = unit(hash_words(&[self.seed, SALT_PHASE, slot as u64]));
            let phase = ticks(u * self.cfg.period);
            if phase < self.duration {
                self.q.push(phase, slot as u32, EventKind::Fire, 0);
            }
        }
    }

    fn handle_fire(&mut self, slot: usize, now: Ticks) {
        if self.rts[slot].state == State::Dead {
            return;
        }
        self.drain_idle(slot, now);
        if self.rts[slot].state == State::Dead {
            return;
        }
        self.stats.fires += 1;
        let fire_idx = self.rts[slot].fires;
        self.rts[slot].fires += 1;
        // Schedule the next fire first, so the cadence never depends on
        // how this access attempt plays out.
        let neighbors = self.count_neighbors(slot, now);
        let frac = self.battery_frac(slot);
        let u = unit(hash_words(&[self.seed, SALT_JITTER, slot as u64, fire_idx]));
        let interval = sched::interval_secs(self.cfg, neighbors, frac, u);
        let next = now + ticks(interval).max(1);
        if next < self.duration {
            self.q.push(next, slot as u32, EventKind::Fire, 0);
        }
        if self.rts[slot].state != State::Idle {
            self.stats.skipped_busy += 1;
            return;
        }
        if self.cfg.ideal_channel {
            self.start_tx(slot, now);
            return;
        }
        if self.sense_busy(slot, now) {
            self.enter_backoff(slot, 1, now);
        } else {
            let t = now + self.difs;
            if t >= self.duration {
                self.stats.drops += 1;
                return;
            }
            self.rts[slot].state = State::Difs;
            self.q.push(t, slot as u32, EventKind::DifsEnd, 0);
        }
    }

    fn handle_difs_end(&mut self, slot: usize, now: Ticks) {
        if self.rts[slot].state == State::Dead {
            return;
        }
        if self.sense_busy(slot, now) {
            self.enter_backoff(slot, 1, now);
        } else {
            self.start_tx(slot, now);
        }
    }

    fn handle_backoff_end(&mut self, slot: usize, attempts: u32, now: Ticks) {
        if self.rts[slot].state == State::Dead {
            return;
        }
        if self.sense_busy(slot, now) {
            self.enter_backoff(slot, attempts + 1, now);
        } else {
            self.start_tx(slot, now);
        }
    }

    /// CSMA carrier sense: the channel at `slot` is busy iff any other
    /// beacon's active transmission carries (per the base model) to this
    /// beacon's position. Hidden terminals — in-range of a receiver but
    /// not of this sender — are invisible here and show up as collisions.
    fn sense_busy(&mut self, slot: usize, now: Ticks) -> bool {
        let pos = self.positions[slot];
        let transmissions = &self.transmissions;
        self.active.retain(|&i| transmissions[i as usize].end > now);
        self.active.iter().any(|&i| {
            let t = &self.transmissions[i as usize];
            t.slot as usize != slot && self.base.connected(t.tx, t.pos, pos)
        })
    }

    fn enter_backoff(&mut self, slot: usize, attempts: u32, now: Ticks) {
        if attempts > self.cfg.max_backoffs {
            self.stats.drops += 1;
            self.rts[slot].state = State::Idle;
            return;
        }
        self.stats.backoffs += 1;
        let cw = self
            .cfg
            .cw_min
            .checked_shl(attempts - 1)
            .unwrap_or(self.cfg.cw_max)
            .clamp(1, self.cfg.cw_max);
        let draw = self.rts[slot].draws;
        self.rts[slot].draws += 1;
        let k = hash_words(&[self.seed, SALT_BACKOFF, slot as u64, draw]) % u64::from(cw);
        let t = now + self.difs + k * self.slot_ticks;
        if t >= self.duration {
            self.stats.drops += 1;
            self.rts[slot].state = State::Idle;
            return;
        }
        self.rts[slot].state = State::Backoff;
        self.q
            .push(t, slot as u32, EventKind::BackoffEnd, u64::from(attempts));
    }

    fn start_tx(&mut self, slot: usize, now: Ticks) {
        if self.cfg.battery.is_finite() {
            if self.rts[slot].battery < self.cfg.tx_cost {
                self.die(slot, now);
                return;
            }
            self.rts[slot].battery -= self.cfg.tx_cost;
        }
        let i = self.transmissions.len() as u32;
        let end = now + self.airtime;
        let mut ovl = Vec::new();
        if !self.cfg.ideal_channel {
            // Half-open intervals: a transmission ending exactly now does
            // not overlap one starting now.
            let transmissions = &self.transmissions;
            self.active.retain(|&j| transmissions[j as usize].end > now);
            for &j in &self.active {
                ovl.push(j);
                self.overlaps[j as usize].push(i);
            }
            self.active.push(i);
        }
        self.overlaps.push(ovl);
        self.transmissions.push(Transmission {
            slot: slot as u32,
            tx: self.tx_ids[slot],
            pos: self.positions[slot],
            start: now,
            end,
        });
        self.stats.messages_sent += 1;
        self.rts[slot].state = State::Transmitting;
        self.q
            .push(end, slot as u32, EventKind::TxEnd, u64::from(i));
    }

    /// Delivery: every other live beacon whose receiver was awake and in
    /// range hears the message — unless an overlapping transmission also
    /// carried to it (a collision) or it was itself transmitting.
    fn handle_tx_end(&mut self, slot: usize, i: usize, now: Ticks) {
        if self.rts[slot].state == State::Transmitting {
            self.rts[slot].state = State::Idle;
        }
        let t = self.transmissions[i];
        for r in 0..self.rts.len() {
            if r == slot || self.rts[r].state == State::Dead {
                continue;
            }
            // A beacon mid-transmission during the overlap cannot receive.
            if self.overlaps[i]
                .iter()
                .any(|&j| self.transmissions[j as usize].slot as usize == r)
            {
                continue;
            }
            // Duty-cycled receiver asleep for this message?
            if self.cfg.duty_cycle < 1.0 {
                let u = unit(hash_words(&[self.seed, SALT_DUTY, r as u64, i as u64]));
                if u >= self.cfg.duty_cycle {
                    continue;
                }
            }
            let rx = self.positions[r];
            if !self.base.connected(t.tx, t.pos, rx) {
                continue;
            }
            let interfered = self.overlaps[i].iter().any(|&j| {
                let o = &self.transmissions[j as usize];
                self.base.connected(o.tx, o.pos, rx)
            });
            if interfered {
                self.stats.collisions += 1;
            } else {
                self.stats.messages_delivered += 1;
                self.rts[r].last_heard[slot] = now;
            }
        }
    }

    fn drain_idle(&mut self, slot: usize, now: Ticks) {
        let rt = &mut self.rts[slot];
        let dt = secs(now.saturating_sub(rt.last_drain));
        rt.last_drain = now;
        if self.cfg.battery.is_finite() {
            rt.battery -= self.cfg.idle_power * self.cfg.duty_cycle * dt;
            if rt.battery <= 0.0 {
                self.die(slot, now);
            }
        }
    }

    fn die(&mut self, slot: usize, now: Ticks) {
        self.rts[slot].state = State::Dead;
        self.stats.deaths += 1;
        if self.stats.first_death.is_none() {
            self.stats.first_death = Some(now);
        }
    }

    fn battery_frac(&self, slot: usize) -> f64 {
        if self.cfg.battery.is_finite() {
            (self.rts[slot].battery / self.cfg.battery).clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    fn count_neighbors(&self, slot: usize, now: Ticks) -> u32 {
        let horizon = now.saturating_sub(self.neighbor_timeout);
        self.rts[slot]
            .last_heard
            .iter()
            .filter(|&&h| h != NEVER && h >= horizon)
            .count() as u32
    }

    fn finish(mut self, field: &BeaconField) -> NetRun {
        self.stats.alive_at_end =
            self.rts.iter().filter(|rt| rt.state != State::Dead).count() as u64;
        // One batched charge per run keeps the per-event tracing cost at
        // zero (the abp_radio::metrics idiom).
        metrics::EVENTS_PROCESSED.add(self.stats.events_processed);
        metrics::COLLISIONS.add(self.stats.collisions);
        metrics::BACKOFFS.add(self.stats.backoffs);
        metrics::MESSAGES_DELIVERED.add(self.stats.messages_delivered);
        let mut by_slot: Vec<Vec<u32>> = vec![Vec::new(); field.len()];
        for (i, t) in self.transmissions.iter().enumerate() {
            by_slot[t.slot as usize].push(i as u32);
        }
        let mut tx_slots: Vec<(u64, u32)> = self
            .tx_ids
            .iter()
            .enumerate()
            .map(|(slot, tx)| (tx.0, slot as u32))
            .collect();
        tx_slots.sort_unstable();
        NetRun {
            cfg: self.cfg.clone(),
            seed: self.seed,
            transmissions: self.transmissions,
            overlaps: self.overlaps,
            by_slot,
            tx_slots,
            log: self.log,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::Terrain;
    use abp_radio::IdealDisk;

    fn grid_field(n_side: usize, spacing: f64) -> BeaconField {
        let terrain = Terrain::square(spacing * (n_side + 1) as f64);
        BeaconField::from_positions(
            terrain,
            (0..n_side * n_side).map(|k| {
                Point::new(
                    spacing * (1 + k % n_side) as f64,
                    spacing * (1 + k / n_side) as f64,
                )
            }),
        )
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let field = grid_field(4, 10.0);
        let base = IdealDisk::new(15.0);
        let cfg = NetConfig::tiny();
        let a = NetSim::run(&field, &base, &cfg, 1234);
        let b = NetSim::run(&field, &base, &cfg, 1234);
        assert_eq!(a.log_bytes(), b.log_bytes());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.transmissions(), b.transmissions());
    }

    #[test]
    fn different_seeds_differ() {
        let field = grid_field(4, 10.0);
        let base = IdealDisk::new(15.0);
        let cfg = NetConfig::tiny();
        let a = NetSim::run(&field, &base, &cfg, 1);
        let b = NetSim::run(&field, &base, &cfg, 2);
        assert_ne!(a.log_bytes(), b.log_bytes());
    }

    #[test]
    fn every_beacon_transmits_roughly_per_period() {
        let field = grid_field(3, 30.0);
        let base = IdealDisk::new(15.0);
        let cfg = NetConfig::tiny(); // 8 s at ~1 s period
        let run = NetSim::run(&field, &base, &cfg, 7);
        for slot in 0..field.len() {
            let k = run.transmissions_of_slot(slot).len();
            assert!(
                (6..=10).contains(&k),
                "slot {slot} sent {k} messages in 8 s at ~1 s period"
            );
        }
    }

    #[test]
    fn isolated_beacons_never_backoff_or_collide() {
        // 9 beacons spaced far beyond range: the channel is always clear.
        let field = grid_field(3, 40.0);
        let base = IdealDisk::new(15.0);
        let run = NetSim::run(&field, &base, &NetConfig::tiny(), 99);
        assert_eq!(run.stats.backoffs, 0);
        assert_eq!(run.stats.collisions, 0);
        assert_eq!(run.stats.messages_delivered, 0, "nobody is in range");
        assert!(run.overlaps.iter().all(Vec::is_empty));
    }

    #[test]
    fn dense_contention_defers_or_collides() {
        // 16 beacons all within range of each other, aggressive airtime.
        let field = grid_field(4, 2.0);
        let base = IdealDisk::new(15.0);
        let cfg = NetConfig {
            airtime: 0.2,
            period: 0.5,
            ..NetConfig::tiny()
        };
        let run = NetSim::run(&field, &base, &cfg, 5);
        assert!(
            run.stats.backoffs > 0,
            "a saturated channel must force backoffs"
        );
        assert!(run.stats.messages_delivered > 0);
    }

    #[test]
    fn ideal_channel_has_no_mac_artifacts() {
        let field = grid_field(4, 2.0);
        let base = IdealDisk::new(15.0);
        let cfg = NetConfig {
            ideal_channel: true,
            ..NetConfig::tiny()
        };
        let run = NetSim::run(&field, &base, &cfg, 5);
        assert_eq!(run.stats.backoffs, 0);
        assert_eq!(run.stats.collisions, 0);
        assert_eq!(run.stats.skipped_busy, 0);
        assert!(run.overlaps.iter().all(Vec::is_empty));
        // Every in-range reception succeeds: 16 beacons × 15 listeners.
        assert_eq!(
            run.stats.messages_delivered,
            run.stats.messages_sent * (field.len() as u64 - 1)
        );
    }

    #[test]
    fn finite_battery_kills_beacons() {
        let field = grid_field(3, 30.0);
        let base = IdealDisk::new(15.0);
        let cfg = NetConfig {
            battery: 0.004, // ~4 transmissions at 1 mJ each
            duration: 30.0,
            listen: 4.0,
            ..NetConfig::paper()
        };
        let run = NetSim::run(&field, &base, &cfg, 3);
        assert_eq!(run.stats.deaths, field.len() as u64);
        assert_eq!(run.stats.alive_at_end, 0);
        let first = run.stats.first_death.expect("someone must die");
        assert!(secs(first) < 30.0);
        assert!(run.lifetime_secs() < 30.0);
    }

    #[test]
    fn lower_duty_extends_lifetime() {
        let field = grid_field(3, 10.0);
        let base = IdealDisk::new(15.0);
        let mk = |duty: f64| NetConfig {
            battery: 0.02,
            idle_power: 2e-3,
            duty_cycle: duty,
            duration: 60.0,
            listen: 4.0,
            ..NetConfig::paper()
        };
        let full = NetSim::run(&field, &base, &mk(1.0), 11);
        let low = NetSim::run(&field, &base, &mk(0.25), 11);
        assert!(
            low.lifetime_secs() > full.lifetime_secs(),
            "duty 0.25 must outlive duty 1.0 ({} vs {})",
            low.lifetime_secs(),
            full.lifetime_secs()
        );
    }

    #[test]
    fn adaptive_scheduler_sends_fewer_messages_when_crowded() {
        let field = grid_field(4, 2.0); // everyone hears everyone
        let base = IdealDisk::new(15.0);
        let fixed = NetConfig {
            period: 0.5,
            ..NetConfig::tiny()
        };
        let adaptive = NetConfig {
            scheduler: crate::SchedulerKind::Adaptive,
            adaptive_min: 0.5,
            adaptive_max: 4.0,
            ..fixed.clone()
        };
        let f = NetSim::run(&field, &base, &fixed, 21);
        let a = NetSim::run(&field, &base, &adaptive, 21);
        assert!(
            a.stats.messages_sent < f.stats.messages_sent,
            "adaptive in a crowd must back off the cadence ({} vs {})",
            a.stats.messages_sent,
            f.stats.messages_sent
        );
    }

    #[test]
    fn stats_survive_the_log_round_trip() {
        let field = grid_field(3, 10.0);
        let base = IdealDisk::new(15.0);
        let run = NetSim::run(&field, &base, &NetConfig::tiny(), 8);
        let bytes = run.log_bytes();
        assert_eq!(bytes.len(), run.log().len() * 29 + 11 * 8);
        assert!(run.stats.events_processed as usize == run.log().len());
    }

    #[test]
    fn slot_lookup_by_tx_id() {
        let field = grid_field(3, 10.0);
        let base = IdealDisk::new(15.0);
        let run = NetSim::run(&field, &base, &NetConfig::tiny(), 8);
        for (slot, b) in field.iter().enumerate() {
            assert_eq!(run.slot_of_tx(b.tx()), Some(slot));
        }
        assert_eq!(run.slot_of_tx(TxId(u64::MAX)), None);
    }

    #[test]
    fn collision_rate_is_bounded() {
        let s = NetStats {
            collisions: 3,
            messages_delivered: 9,
            ..NetStats::default()
        };
        assert_eq!(s.collision_rate(), 0.25);
        assert_eq!(NetStats::default().collision_rate(), 0.0);
    }
}
