//! The paper's message-counting connectivity rule as a [`Propagation`]
//! model.
//!
//! §2.2 of the paper defines connectivity procedurally: beacons transmit
//! every period `T`, a client listens for a window `t`, and the client
//! counts a beacon as connected when it receives at least `CMthresh` of
//! its messages. [`MessageCountOracle`] evaluates exactly that rule
//! against a recorded [`NetRun`] schedule: for a query `(tx, rx)`, it
//! replays the transmitter's messages whose airtime began inside the
//! listen window, keeps those the base model carries to `rx`, discards
//! those destroyed by an overlapping in-range transmission (a collision
//! *at this receiver*), and compares the count against `CMthresh`.
//!
//! Because it implements [`Propagation`], the oracle drops into every
//! existing consumer — `ErrorMap::survey`, `ConnectivityOracle`, the
//! placement algorithms — giving the whole pipeline a time-domain radio
//! without touching a line of it.
//!
//! # Reduction to the base predicate
//!
//! Under [`crate::NetConfig::always_on`] (ideal channel, always-on duty,
//! unlimited battery, `CMthresh` = 1, listen window spanning a run longer
//! than one period) every beacon lands at least one uncollided message in
//! the window, so `connected` degenerates to the base model's predicate —
//! bit-for-bit, which the acceptance tests gate on at paper scale.

use crate::sim::NetRun;
use abp_geom::Point;
use abp_radio::{Propagation, TxId};

/// [`Propagation`] backend that answers connectivity queries by counting
/// a transmitter's surviving messages in the run's listen window.
///
/// Borrowed from a [`NetRun`] via [`NetRun::oracle`]. The base model
/// should be the one the run was simulated with: it decides both which
/// messages reach `rx` and which overlapping transmissions interfere
/// there.
pub struct MessageCountOracle<'a, M: ?Sized> {
    run: &'a NetRun,
    base: &'a M,
    window: (u64, u64),
}

impl<'a, M: Propagation + ?Sized> MessageCountOracle<'a, M> {
    /// Builds the oracle over `run`'s schedule, backed by `base`.
    pub fn new(run: &'a NetRun, base: &'a M) -> Self {
        let window = run.listen_window();
        MessageCountOracle { run, base, window }
    }

    /// Messages from `tx` a listener at `rx` receives within the listen
    /// window: transmitted in-window, carried by the base model, and not
    /// destroyed by an overlapping in-range transmission.
    pub fn messages_heard(&self, tx: TxId, rx: Point) -> u32 {
        self.heard_up_to(tx, rx, u32::MAX)
    }

    /// Counts surviving messages, stopping early once `cap` is reached
    /// (the survey hot path only needs "≥ CMthresh").
    fn heard_up_to(&self, tx: TxId, rx: Point, cap: u32) -> u32 {
        let Some(slot) = self.run.slot_of_tx(tx) else {
            return 0;
        };
        let (w_start, w_end) = self.window;
        let mut heard = 0u32;
        for &i in self.run.transmissions_of_slot(slot) {
            let t = &self.run.transmissions()[i as usize];
            if t.start < w_start || t.start >= w_end {
                continue;
            }
            if !self.base.connected(t.tx, t.pos, rx) {
                continue;
            }
            let collided = self.run.overlaps_of(i as usize).iter().any(|&j| {
                let o = &self.run.transmissions()[j as usize];
                self.base.connected(o.tx, o.pos, rx)
            });
            if !collided {
                heard += 1;
                if heard >= cap {
                    return heard;
                }
            }
        }
        heard
    }
}

impl<M: Propagation + ?Sized> Propagation for MessageCountOracle<'_, M> {
    /// The §2.2 rule: `rx` hears `tx` iff at least `CMthresh` of its
    /// in-window messages survive. The passed `tx_pos` is ignored in
    /// favor of the position recorded in the schedule (they coincide for
    /// queries issued from the same field the run simulated).
    fn connected(&self, tx: TxId, _tx_pos: Point, rx: Point) -> bool {
        let cm = self.run.cfg().cmthresh;
        self.heard_up_to(tx, rx, cm) >= cm
    }

    /// Delegates to the base model: a message can never be heard farther
    /// than the base radio carries, so the base bound stays sound.
    fn max_range(&self, tx: TxId, tx_pos: Point) -> f64 {
        self.base.max_range(tx, tx_pos)
    }

    fn nominal_range(&self) -> f64 {
        self.base.nominal_range()
    }

    // disk_exact() stays the default `false`: even over an exact-disk
    // base, message counting can disconnect in-range pairs (collisions,
    // sleep, death), so the sharp-disk fast path must not be taken.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetConfig, NetSim};
    use abp_field::BeaconField;
    use abp_geom::Terrain;
    use abp_radio::IdealDisk;

    fn small_field() -> BeaconField {
        BeaconField::from_positions(
            Terrain::square(100.0),
            [(20.0, 20.0), (50.0, 50.0), (80.0, 80.0)].map(|(x, y)| Point::new(x, y)),
        )
    }

    #[test]
    fn always_on_reduces_to_base_predicate() {
        let field = small_field();
        let base = IdealDisk::new(15.0);
        let run = NetSim::run(&field, &base, &NetConfig::always_on(), 77);
        let oracle = run.oracle(&base);
        for b in field.iter() {
            for (x, y) in [(20.0, 25.0), (50.0, 40.0), (90.0, 90.0), (0.0, 0.0)] {
                let rx = Point::new(x, y);
                assert_eq!(
                    oracle.connected(b.tx(), b.pos(), rx),
                    base.connected(b.tx(), b.pos(), rx),
                    "reduction must hold for {} at ({x}, {y})",
                    b.tx()
                );
            }
        }
    }

    #[test]
    fn unknown_transmitter_is_never_connected() {
        let field = small_field();
        let base = IdealDisk::new(15.0);
        let run = NetSim::run(&field, &base, &NetConfig::always_on(), 77);
        let oracle = run.oracle(&base);
        assert!(!oracle.connected(TxId(999), Point::ORIGIN, Point::ORIGIN));
        assert_eq!(oracle.messages_heard(TxId(999), Point::ORIGIN), 0);
    }

    #[test]
    fn cmthresh_raises_the_bar() {
        let field = small_field();
        let base = IdealDisk::new(15.0);
        // 8 s run, ~1 s period, full-run window: ~8 messages audible.
        let cfg = NetConfig::tiny();
        let run = NetSim::run(&field, &base, &cfg, 5);
        let b = field.beacons()[0];
        let rx = Point::new(22.0, 22.0);
        let heard = run.oracle(&base).messages_heard(b.tx(), rx);
        assert!(heard >= 6, "expected most messages to land, got {heard}");
        // A threshold above what landed disconnects the link.
        let strict = NetConfig {
            cmthresh: heard + 1,
            ..cfg.clone()
        };
        let strict_run = NetSim::run(&field, &base, &strict, 5);
        assert!(!strict_run.oracle(&base).connected(b.tx(), b.pos(), rx));
        let lax = NetConfig { cmthresh: 1, ..cfg };
        let lax_run = NetSim::run(&field, &base, &lax, 5);
        assert!(lax_run.oracle(&base).connected(b.tx(), b.pos(), rx));
    }

    #[test]
    fn longer_period_starves_the_window() {
        let field = small_field();
        let base = IdealDisk::new(15.0);
        let slow = NetConfig {
            period: 6.0,
            cmthresh: 3,
            ..NetConfig::tiny()
        };
        let run = NetSim::run(&field, &base, &slow, 9);
        let b = field.beacons()[0];
        let rx = Point::new(22.0, 22.0);
        // At most ⌈8/6⌉ = 2 messages fit the window — below CMthresh 3.
        assert!(run.oracle(&base).messages_heard(b.tx(), rx) <= 2);
        assert!(!run.oracle(&base).connected(b.tx(), b.pos(), rx));
    }

    #[test]
    fn range_bounds_delegate_to_base() {
        let field = small_field();
        let base = IdealDisk::new(15.0);
        let run = NetSim::run(&field, &base, &NetConfig::always_on(), 1);
        let oracle = run.oracle(&base);
        let b = field.beacons()[0];
        assert_eq!(oracle.max_range(b.tx(), b.pos()), 15.0);
        assert_eq!(oracle.nominal_range(), 15.0);
        assert!(!oracle.disk_exact(), "sharp-disk fast path must stay off");
    }
}
