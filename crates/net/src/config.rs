//! Simulation parameters: the paper's §2.2 link procedure plus the MAC,
//! duty-cycle, and energy knobs layered under it.

use crate::hash_words;
use serde::{Deserialize, Serialize};

/// How a beacon chooses the interval to its next transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Transmit every [`NetConfig::period`] seconds (± jitter) — the
    /// paper's "beacons transmit every `T`".
    Fixed,
    /// Adaptive interval in `[adaptive_min, adaptive_max]`: stretch the
    /// interval when many neighbors are audible (the region is already
    /// well covered) and when battery runs low — the density/energy
    /// adaptation of the `bnet` buoy scheduler.
    Adaptive,
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerKind::Fixed => write!(f, "fixed"),
            SchedulerKind::Adaptive => write!(f, "adaptive"),
        }
    }
}

/// All parameters of a time-domain run. Times are in seconds, energies in
/// joules, powers in watts.
///
/// The §2.2 / §6 message-counting parameters map directly:
///
/// | paper | field |
/// |-------|-------|
/// | `T` (beaconing period)    | [`NetConfig::period`] |
/// | `t` (listening window)    | [`NetConfig::listen`] |
/// | `CMthresh` (message count)| [`NetConfig::cmthresh`] |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Beaconing period `T`: target seconds between transmissions
    /// (the fixed scheduler's interval; the adaptive scheduler ranges
    /// over [`NetConfig::adaptive_min`]..=[`NetConfig::adaptive_max`]).
    pub period: f64,
    /// Per-fire interval jitter as a fraction of the interval: each
    /// interval is scaled by a factor uniform in `[1 - jitter/2,
    /// 1 + jitter/2)`. Zero means strictly periodic. Beacons always start
    /// at an independent random phase in `[0, period)` regardless.
    pub jitter: f64,
    /// Listening window `t`: the [`crate::MessageCountOracle`] counts
    /// messages whose transmission began in the final `listen` seconds of
    /// the run.
    pub listen: f64,
    /// `CMthresh`: minimum messages heard within the listen window for a
    /// link to exist.
    pub cmthresh: u32,
    /// DIFS: seconds the channel must stay idle before transmitting.
    pub difs: f64,
    /// Backoff slot length in seconds.
    pub slot: f64,
    /// Initial contention-window size in slots. Doubles per failed
    /// attempt up to [`NetConfig::cw_max`].
    pub cw_min: u32,
    /// Contention-window ceiling in slots.
    pub cw_max: u32,
    /// Transmission airtime in seconds (one beacon message on the air).
    pub airtime: f64,
    /// Attempts before a message is dropped (counted in
    /// [`crate::NetStats::drops`]).
    pub max_backoffs: u32,
    /// Receiver duty cycle in `(0, 1]`: the probability a beacon's
    /// receiver is awake for any given transmission, and the fraction of
    /// time its radio draws [`NetConfig::idle_power`].
    pub duty_cycle: f64,
    /// Battery capacity in joules; `f64::INFINITY` disables energy
    /// accounting entirely.
    pub battery: f64,
    /// Energy cost of one transmission, joules.
    pub tx_cost: f64,
    /// Receive/idle power draw in watts, scaled by the duty cycle.
    pub idle_power: f64,
    /// Interval policy.
    pub scheduler: SchedulerKind,
    /// Shortest adaptive interval, seconds.
    pub adaptive_min: f64,
    /// Longest adaptive interval, seconds.
    pub adaptive_max: f64,
    /// Neighbors heard within this many seconds count as present for the
    /// adaptive scheduler.
    pub neighbor_timeout: f64,
    /// Neighbor count at which the adaptive scheduler saturates toward
    /// [`NetConfig::adaptive_max`].
    pub neighbor_threshold: u32,
    /// Total simulated seconds.
    pub duration: f64,
    /// Skip the MAC entirely: no carrier sense, no DIFS/backoff, no
    /// collisions. Every scheduled transmission goes on an interference-
    /// free air. This is the reduction regime in which the message-
    /// counting oracle provably degenerates to the base predicate.
    pub ideal_channel: bool,
}

impl NetConfig {
    /// Paper-flavored defaults: 1 s beaconing period, 4 s listen window,
    /// `CMthresh` = 3, 802.11-ish MAC timing, always-on receivers,
    /// unlimited battery, 30 s of simulated time.
    pub fn paper() -> Self {
        NetConfig {
            period: 1.0,
            jitter: 0.1,
            listen: 4.0,
            cmthresh: 3,
            difs: 50e-6,
            slot: 20e-6,
            cw_min: 8,
            cw_max: 256,
            airtime: 1e-3,
            max_backoffs: 6,
            duty_cycle: 1.0,
            battery: f64::INFINITY,
            tx_cost: 1e-3,
            idle_power: 1e-3,
            scheduler: SchedulerKind::Fixed,
            adaptive_min: 0.5,
            adaptive_max: 4.0,
            neighbor_timeout: 3.0,
            neighbor_threshold: 8,
            duration: 30.0,
            ideal_channel: false,
        }
    }

    /// A short, cheap run for tests and smoke jobs: 8 simulated seconds,
    /// otherwise [`NetConfig::paper`].
    pub fn tiny() -> Self {
        NetConfig {
            duration: 8.0,
            listen: 8.0,
            ..NetConfig::paper()
        }
    }

    /// The *reduction* configuration: ideal channel, always-on duty,
    /// unlimited battery, `CMthresh` = 1, and a listen window covering
    /// the whole (2-period) run so every live beacon lands at least one
    /// message in it. Under this configuration the
    /// [`crate::MessageCountOracle`]'s `connected` equals the base
    /// model's `connected` for every beacon — the bit-identity gate of
    /// the acceptance tests.
    pub fn always_on() -> Self {
        NetConfig {
            period: 1.0,
            listen: 2.0,
            duration: 2.0,
            cmthresh: 1,
            duty_cycle: 1.0,
            battery: f64::INFINITY,
            ideal_channel: true,
            ..NetConfig::paper()
        }
    }

    /// Panics unless the configuration is physically sensible (positive
    /// times, duty in `(0, 1]`, window within the run).
    pub fn validate(&self) {
        assert!(
            self.period > 0.0 && self.period.is_finite(),
            "period must be positive and finite"
        );
        assert!(self.listen > 0.0, "listen window must be positive");
        assert!(
            self.listen <= self.duration,
            "listen window cannot exceed the run duration"
        );
        assert!(self.cmthresh >= 1, "cmthresh must be at least 1");
        assert!(
            self.duration > 0.0 && self.duration.is_finite(),
            "duration must be positive and finite"
        );
        assert!(
            self.duty_cycle > 0.0 && self.duty_cycle <= 1.0,
            "duty cycle must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.jitter),
            "jitter must be in [0, 1]"
        );
        assert!(self.airtime > 0.0, "airtime must be positive");
        assert!(
            self.difs >= 0.0 && self.slot > 0.0,
            "MAC times must be sane"
        );
        assert!(
            self.cw_min >= 1 && self.cw_max >= self.cw_min,
            "contention window must satisfy 1 <= cw_min <= cw_max"
        );
        assert!(
            self.adaptive_min > 0.0 && self.adaptive_max >= self.adaptive_min,
            "adaptive interval range must be positive and ordered"
        );
        assert!(
            self.tx_cost >= 0.0 && self.idle_power >= 0.0,
            "energy costs must be non-negative"
        );
        assert!(
            self.battery > 0.0,
            "battery must be positive (use f64::INFINITY for unlimited)"
        );
    }

    /// A stable digest of every result-affecting parameter — two configs
    /// with equal fingerprints produce identical schedules from the same
    /// seed and field.
    pub fn fingerprint(&self) -> u64 {
        hash_words(&[
            self.period.to_bits(),
            self.jitter.to_bits(),
            self.listen.to_bits(),
            u64::from(self.cmthresh),
            self.difs.to_bits(),
            self.slot.to_bits(),
            u64::from(self.cw_min),
            u64::from(self.cw_max),
            self.airtime.to_bits(),
            u64::from(self.max_backoffs),
            self.duty_cycle.to_bits(),
            self.battery.to_bits(),
            self.tx_cost.to_bits(),
            self.idle_power.to_bits(),
            match self.scheduler {
                SchedulerKind::Fixed => 0,
                SchedulerKind::Adaptive => 1,
            },
            self.adaptive_min.to_bits(),
            self.adaptive_max.to_bits(),
            self.neighbor_timeout.to_bits(),
            u64::from(self.neighbor_threshold),
            self.duration.to_bits(),
            u64::from(self.ideal_channel),
        ])
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        NetConfig::paper().validate();
        NetConfig::tiny().validate();
        NetConfig::always_on().validate();
    }

    #[test]
    fn always_on_is_the_reduction_regime() {
        let c = NetConfig::always_on();
        assert!(c.ideal_channel);
        assert_eq!(c.cmthresh, 1);
        assert_eq!(c.duty_cycle, 1.0);
        assert!(c.battery.is_infinite());
        assert!(c.period <= c.listen, "every beacon must fire in the window");
        assert_eq!(c.listen, c.duration);
    }

    #[test]
    fn fingerprint_tracks_every_parameter() {
        let base = NetConfig::paper();
        let fp = base.fingerprint();
        assert_eq!(fp, NetConfig::paper().fingerprint());
        for f in [
            NetConfig {
                period: 2.0,
                ..base.clone()
            },
            NetConfig {
                cmthresh: 4,
                ..base.clone()
            },
            NetConfig {
                scheduler: SchedulerKind::Adaptive,
                ..base.clone()
            },
            NetConfig {
                ideal_channel: true,
                ..base.clone()
            },
            NetConfig {
                duty_cycle: 0.5,
                ..base.clone()
            },
        ] {
            assert_ne!(f.fingerprint(), fp, "fingerprint must see {f:?}");
        }
    }

    #[test]
    #[should_panic(expected = "listen window cannot exceed")]
    fn validate_rejects_window_longer_than_run() {
        NetConfig {
            listen: 99.0,
            ..NetConfig::tiny()
        }
        .validate();
    }

    #[test]
    fn scheduler_kind_displays() {
        assert_eq!(SchedulerKind::Fixed.to_string(), "fixed");
        assert_eq!(SchedulerKind::Adaptive.to_string(), "adaptive");
    }
}
