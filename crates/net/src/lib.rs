//! Deterministic discrete-event packet-level radio simulation.
//!
//! The rest of the workspace treats the radio as a *timeless oracle
//! predicate*: `Propagation::connected` answers instantly and identically
//! forever. The paper, however, derives connectivity from **counted beacon
//! messages over time** (§2.2, §6): beacons transmit every period `T`,
//! clients listen for a window `t`, and a link exists when at least
//! `CMthresh` messages arrive. Between those messages sit a medium-access
//! layer (carrier sense, DIFS, backoff, collisions), duty cycles, and
//! batteries — none of which a timeless predicate can express.
//!
//! This crate supplies the missing time domain:
//!
//! * [`EventQueue`] — a binary-heap queue of timestamped events with
//!   deterministic `(time, seq)` tie-breaking,
//! * [`NetSim`] — the event loop: CSMA-style carrier sense with DIFS and
//!   bounded exponential backoff, fixed-interval and adaptive-interval
//!   beacon schedulers, receiver duty cycling, and per-beacon battery
//!   drain, all driven by an existing [`Propagation`](abp_radio::Propagation) base model,
//! * [`NetRun`] — the replayable outcome: every transmission with its
//!   interference set, MAC statistics, and a byte-exact event log,
//! * [`MessageCountOracle`] — the paper's §2.2 connectivity rule (≥
//!   `CMthresh` messages heard in the listen window) as a drop-in
//!   [`Propagation`](abp_radio::Propagation) backend for the existing survey/localize paths.
//!
//! # Determinism and replay
//!
//! Like `abp-fault`, the simulator is **seed-pure**: every random draw
//! (initial phase, per-fire jitter, backoff slots, duty-cycle sleep) is a
//! [`abp_geom::splitmix64`] hash of the run seed, the beacon slot, and a
//! monotone draw counter — there is no mutable RNG state. The loop is
//! single-threaded and events are totally ordered by `(time, seq)`, so two
//! runs from the same inputs produce **byte-identical** event logs
//! ([`NetRun::log_bytes`]); CI gates on this. Because the base model is
//! any `Propagation`, an `abp-fault` `FaultyRadio` composes directly: dead
//! beacons stop carrying and stop being heard, with the MAC layered on
//! top.
//!
//! # Example
//!
//! ```
//! use abp_field::BeaconField;
//! use abp_geom::Terrain;
//! use abp_net::{NetConfig, NetSim};
//! use abp_radio::{IdealDisk, Propagation, TxId};
//!
//! let terrain = Terrain::square(100.0);
//! let field = BeaconField::from_positions(
//!     terrain,
//!     [(20.0, 20.0), (50.0, 50.0), (80.0, 80.0)].map(|(x, y)| abp_geom::Point::new(x, y)),
//! );
//! let base = IdealDisk::new(15.0);
//! let cfg = NetConfig::always_on();
//! let run = NetSim::run(&field, &base, &cfg, 42);
//! assert_eq!(run.stats.messages_sent as usize, run.transmissions().len());
//!
//! // Replaying the schedule is byte-identical.
//! let again = NetSim::run(&field, &base, &cfg, 42);
//! assert_eq!(run.log_bytes(), again.log_bytes());
//!
//! // The message-counting oracle is a drop-in Propagation model.
//! let oracle = run.oracle(&base);
//! let b = field.beacons()[1];
//! assert!(oracle.connected(b.tx(), b.pos(), abp_geom::Point::new(52.0, 50.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod event;
pub mod metrics;
pub mod oracle;
pub mod sched;
pub mod sim;

pub use config::{NetConfig, SchedulerKind};
pub use event::{Event, EventKind, EventQueue, EventRecord, Ticks, TICKS_PER_SEC};
pub use oracle::MessageCountOracle;
pub use sim::{NetRun, NetSim, NetStats, Transmission};

/// Folds a slice of words into one splitmix64 hash.
///
/// Shared by every draw stream in the simulator so streams with different
/// salts are independent but reproducible (the `abp-fault` idiom).
#[inline]
pub(crate) fn hash_words(words: &[u64]) -> u64 {
    let mut h = 0x05EE_D04E_7000_0001u64; // arbitrary non-zero basis
    for &w in words {
        h = abp_geom::splitmix64(h ^ w);
    }
    h
}

/// Maps a 64-bit hash to a uniform value in `[0, 1)` using the top 53
/// bits, so the result is exactly representable and platform-independent.
#[inline]
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_in_range_and_deterministic() {
        for i in 0..1000u64 {
            let u = unit(hash_words(&[7, i]));
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, unit(hash_words(&[7, i])));
        }
    }

    #[test]
    fn hash_streams_are_independent() {
        assert_ne!(hash_words(&[1, 2]), hash_words(&[2, 1]));
        assert_ne!(hash_words(&[1]), hash_words(&[1, 0]));
    }
}
