//! Survey-agent GPS outages: dropped or position-biased samples.
//!
//! The paper's terrain survey assumes the measuring agent knows its own
//! position exactly (idealized GPS/differential-GPS, §5). Field robots do
//! not: canyon walls and foliage produce *outage windows* during which
//! the receiver either reports nothing or reports a confidently wrong
//! position. This module models both, in units of survey waypoints:
//!
//! * **drop** mode: samples taken inside an outage window are discarded —
//!   the error map simply has holes where the robot was blind;
//! * **bias** mode: the receiver keeps reporting, but with a constant
//!   per-window offset (multipath lock onto a reflected signal), so the
//!   robot files its measurements under the wrong coordinates.
//!
//! Windows are blocks of consecutive waypoints; whether a block is an
//! outage, and the bias vector it applies, hash deterministically from
//! the schedule seed so replays agree.

use crate::{mix, unit};
use abp_geom::Vec2;
use serde::{Deserialize, Serialize};

/// What the GPS fault does to one survey sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GpsFault {
    /// The sample is lost entirely.
    Drop,
    /// The believed position is offset by this displacement.
    Bias(Vec2),
}

/// Declarative GPS-outage parameters for a [`crate::FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsOutagePlan {
    /// Expected fraction of waypoints falling inside an outage, `[0, 1]`.
    pub outage_fraction: f64,
    /// Length of an outage window, in consecutive waypoints (`>= 1`).
    pub window: usize,
    /// Magnitude scale of the per-window position bias in meters.
    /// Zero selects drop mode: blind samples are discarded instead.
    pub bias_meters: f64,
}

impl GpsOutagePlan {
    /// Folds the plan's parameters into a fingerprint hash.
    pub(crate) fn fingerprint(&self, h: u64) -> u64 {
        let h = mix(h, 0x4750_5321); // "GPS!"
        let h = mix(h, self.outage_fraction.to_bits());
        let h = mix(h, self.window as u64);
        mix(h, self.bias_meters.to_bits())
    }
}

/// A compiled GPS-outage realization for one trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsOutage {
    seed: u64,
    plan: GpsOutagePlan,
}

impl GpsOutage {
    /// Compiles `plan` against a per-trial seed.
    pub fn new(seed: u64, plan: GpsOutagePlan) -> Self {
        GpsOutage { seed, plan }
    }

    /// The fault affecting waypoint index `waypoint`, if any.
    pub fn fault_at(&self, waypoint: usize) -> Option<GpsFault> {
        let block = (waypoint / self.plan.window.max(1)) as u64;
        let h = mix(self.seed, mix(0x0675_0004, block));
        if unit(h) >= self.plan.outage_fraction {
            return None;
        }
        if self.plan.bias_meters <= 0.0 {
            return Some(GpsFault::Drop);
        }
        // One constant offset per window: the receiver locks onto a
        // reflected signal and stays wrong until the window ends.
        let angle = std::f64::consts::TAU * unit(mix(h, 0x0676_0005));
        let magnitude = self.plan.bias_meters * (0.5 + unit(mix(h, 0x0677_0006)));
        Some(GpsFault::Bias(Vec2 {
            x: magnitude * angle.cos(),
            y: magnitude * angle.sin(),
        }))
    }

    /// Fraction of the first `n` waypoints affected by an outage
    /// (diagnostic helper).
    pub fn outage_fraction_of(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let hit = (0..n).filter(|&w| self.fault_at(w).is_some()).count();
        hit as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop_plan() -> GpsOutagePlan {
        GpsOutagePlan {
            outage_fraction: 0.3,
            window: 8,
            bias_meters: 0.0,
        }
    }

    #[test]
    fn replay_is_identical() {
        let a = GpsOutage::new(31, drop_plan());
        let b = GpsOutage::new(31, drop_plan());
        for w in 0..500 {
            assert_eq!(a.fault_at(w), b.fault_at(w));
        }
    }

    #[test]
    fn drop_mode_emits_drops_only() {
        let o = GpsOutage::new(31, drop_plan());
        let mut saw_drop = false;
        for w in 0..500 {
            match o.fault_at(w) {
                Some(GpsFault::Drop) => saw_drop = true,
                Some(GpsFault::Bias(_)) => panic!("drop mode produced a bias"),
                None => {}
            }
        }
        assert!(saw_drop);
    }

    #[test]
    fn windows_are_contiguous_blocks() {
        let o = GpsOutage::new(31, drop_plan());
        // All waypoints inside one window share its fate.
        for block in 0..40 {
            let first = o.fault_at(block * 8);
            for offset in 1..8 {
                assert_eq!(o.fault_at(block * 8 + offset).is_some(), first.is_some());
            }
        }
    }

    #[test]
    fn bias_mode_is_constant_within_a_window() {
        let plan = GpsOutagePlan {
            outage_fraction: 0.5,
            window: 6,
            bias_meters: 3.0,
        };
        let o = GpsOutage::new(99, plan);
        for block in 0..60usize {
            if let Some(GpsFault::Bias(v)) = o.fault_at(block * 6) {
                let len = (v.x * v.x + v.y * v.y).sqrt();
                assert!((1.5..=4.5).contains(&len), "bias magnitude {len}");
                for offset in 1..6 {
                    assert_eq!(o.fault_at(block * 6 + offset), Some(GpsFault::Bias(v)));
                }
            }
        }
    }

    #[test]
    fn outage_fraction_tracks_request() {
        let o = GpsOutage::new(5, drop_plan());
        let f = o.outage_fraction_of(8000);
        assert!((f - 0.3).abs() < 0.06, "outage fraction {f} far from 0.3");
    }

    #[test]
    fn zero_fraction_never_faults() {
        let plan = GpsOutagePlan {
            outage_fraction: 0.0,
            window: 4,
            bias_meters: 2.0,
        };
        let o = GpsOutage::new(5, plan);
        assert!((0..200).all(|w| o.fault_at(w).is_none()));
    }
}
