//! Deterministic fault injection for the beacon-placement pipeline.
//!
//! The paper evaluates placement in a *healthy* world: every beacon stays
//! up, the channel noise is static in time, and the survey agent always
//! knows where it is. Section 6 names the missing pieces — beacon
//! self-scheduling (beacons that sleep and wake), time-varying
//! propagation, and imperfect surveying — as future work. This crate
//! supplies those failure modes as *injectable faults* so the rest of the
//! workspace can measure how gracefully localization and placement
//! degrade.
//!
//! # Design
//!
//! A declarative [`FaultPlan`] describes *which* faults exist and how
//! intense they are. Calling [`FaultPlan::compile`] with a trial seed
//! produces a [`FaultSchedule`]: a concrete, queryable realization of the
//! plan for one Monte-Carlo trial. Every answer a schedule gives — is
//! beacon 17 alive at epoch 1? does waypoint 203 fall in a GPS outage?
//! what fraction of this link's beacon messages survived the current loss
//! burst? — is a pure function of `(trial seed, plan, query)`, derived
//! through [`abp_geom::splitmix64`] chains with **no mutable state and no
//! external RNG**. Two compilations from the same seed are
//! indistinguishable, which keeps faulty sweeps bit-for-bit replayable
//! and therefore checkpoint/resume-compatible.
//!
//! The four fault families:
//!
//! | Module | Fault | Paper motivation |
//! |---|---|---|
//! | [`mortality`] | permanent beacon death + duty-cycle flapping with revival | §6 beacon self-scheduling |
//! | [`gilbert`] | correlated message-loss bursts (Gilbert–Elliott on/off channel) | §6 time-varying propagation |
//! | [`gps`] | survey-agent GPS outage windows (dropped or biased samples) | §5 measurement methodology |
//! | [`drift`] | noise-factor ramps that grow across epochs | §6 time-varying propagation |
//!
//! Radio-facing faults (mortality + burst loss) are layered over any base
//! [`abp_radio::Propagation`] model by [`FaultyRadio`], so consumers keep
//! talking to the same trait object they always did.
//!
//! # Example
//!
//! ```
//! use abp_fault::{FaultPlan, MortalityPlan};
//!
//! let plan = FaultPlan {
//!     mortality: Some(MortalityPlan { death_rate: 0.2, flap_rate: 0.1, duty_cycle: 0.5 }),
//!     ..FaultPlan::none()
//! };
//! let schedule = plan.compile(0xA11CE);
//! // Replayable: recompiling from the same seed answers identically.
//! assert_eq!(schedule.is_alive(7, 0), plan.compile(0xA11CE).is_alive(7, 0));
//! // A permanently dead beacon stays dead at every epoch.
//! let dead: Vec<u64> = (0..50).filter(|&b| !schedule.is_alive(b, 0) && !schedule.is_alive(b, 1)).collect();
//! assert!(!dead.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod gilbert;
pub mod gps;
pub mod mortality;
pub mod plan;

pub use drift::{DriftPlan, DriftSchedule};
pub use gilbert::{BurstPlan, BurstSchedule, GilbertElliott};
pub use gps::{GpsFault, GpsOutage, GpsOutagePlan};
pub use mortality::{MortalityPlan, MortalitySchedule};
pub use plan::{FaultPlan, FaultSchedule, FaultyRadio};

/// Folds a label and a value into a running splitmix64 hash.
///
/// Shared by the plan fingerprint and the per-family seed derivations so
/// every stream is independent but reproducible.
#[inline]
pub(crate) fn mix(h: u64, w: u64) -> u64 {
    abp_geom::splitmix64(h ^ w)
}

/// Maps a 64-bit hash to a uniform value in `[0, 1)`.
///
/// Uses the top 53 bits so the result is exactly representable and
/// platform-independent.
#[inline]
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}
