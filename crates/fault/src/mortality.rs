//! Beacon mortality: permanent death and duty-cycle flapping.
//!
//! The paper assumes every placed beacon transmits forever. Its §6 names
//! *beacon self-scheduling* — beacons that sleep to save energy — as
//! future work. This module models the two ends of that spectrum:
//!
//! * **permanent death**: a beacon fails at deployment time and never
//!   transmits (battery dead on arrival, crushed radio);
//! * **flapping**: a beacon duty-cycles, so it is alive in some epochs
//!   and asleep in others, with *revival* — a beacon dark in epoch `e`
//!   may well be back in epoch `e + 1`.
//!
//! Whether a given beacon is dead, a flapper, or healthy — and, for a
//! flapper, which epochs it is awake in — is a pure hash of the schedule
//! seed, the beacon id, and the epoch. No state, no iteration order
//! dependence, identical on every replay.

use crate::{mix, unit};
use serde::{Deserialize, Serialize};

/// Declarative mortality parameters (see [`MortalitySchedule`] for the
/// compiled, queryable form).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MortalityPlan {
    /// Probability that a beacon is permanently dead, in `[0, 1]`.
    pub death_rate: f64,
    /// Probability that a *surviving* beacon duty-cycles, in `[0, 1]`.
    pub flap_rate: f64,
    /// Fraction of epochs a flapping beacon is awake, in `[0, 1]`.
    pub duty_cycle: f64,
}

impl MortalityPlan {
    /// A plan where every beacon is permanently healthy.
    pub const fn healthy() -> Self {
        MortalityPlan {
            death_rate: 0.0,
            flap_rate: 0.0,
            duty_cycle: 1.0,
        }
    }

    /// Folds the plan's parameters into a fingerprint hash.
    pub(crate) fn fingerprint(&self, h: u64) -> u64 {
        let h = mix(h, 0x4D4F_5254); // "MORT"
        let h = mix(h, self.death_rate.to_bits());
        let h = mix(h, self.flap_rate.to_bits());
        mix(h, self.duty_cycle.to_bits())
    }
}

/// A compiled mortality realization for one trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MortalitySchedule {
    seed: u64,
    plan: MortalityPlan,
}

impl MortalitySchedule {
    /// Compiles `plan` against a per-trial seed.
    pub fn new(seed: u64, plan: MortalityPlan) -> Self {
        MortalitySchedule { seed, plan }
    }

    /// Whether beacon `tx` is transmitting during `epoch`.
    ///
    /// Permanent death dominates flapping: a dead beacon is dead at every
    /// epoch. A flapping beacon's awake/asleep pattern is re-drawn per
    /// epoch, which is what gives revival — unlike permanent death, being
    /// dark in one epoch says nothing about the next.
    pub fn is_alive(&self, tx: u64, epoch: u64) -> bool {
        let per_beacon = mix(self.seed, mix(0x0DEA_D001, tx));
        if unit(per_beacon) < self.plan.death_rate {
            return false;
        }
        let flapper = mix(self.seed, mix(0x0F1A_9002, tx));
        if unit(flapper) < self.plan.flap_rate {
            let awake = mix(per_beacon, mix(0x0A3A_6003, epoch));
            return unit(awake) < self.plan.duty_cycle;
        }
        true
    }

    /// Fraction of `n` beacon ids alive at `epoch` (diagnostic helper).
    pub fn alive_fraction(&self, n: u64, epoch: u64) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let alive = (0..n).filter(|&tx| self.is_alive(tx, epoch)).count();
        alive as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> MortalityPlan {
        MortalityPlan {
            death_rate: 0.3,
            flap_rate: 0.4,
            duty_cycle: 0.5,
        }
    }

    #[test]
    fn replay_is_identical() {
        let a = MortalitySchedule::new(99, plan());
        let b = MortalitySchedule::new(99, plan());
        for tx in 0..200 {
            for epoch in 0..4 {
                assert_eq!(a.is_alive(tx, epoch), b.is_alive(tx, epoch));
            }
        }
    }

    #[test]
    fn permanent_death_never_revives() {
        let s = MortalitySchedule::new(7, plan());
        let dead: Vec<u64> = (0..500).filter(|&tx| !s.is_alive(tx, 0)).collect();
        assert!(!dead.is_empty(), "death_rate 0.3 should kill someone");
        // Beacons dark at *every* epoch exist (the permanently dead);
        // whichever die at epoch 0 due to permanent death stay dead.
        let always_dead = (0..500u64)
            .filter(|&tx| (0..8).all(|e| !s.is_alive(tx, e)))
            .count();
        assert!(always_dead > 0);
    }

    #[test]
    fn flappers_revive_across_epochs() {
        let s = MortalitySchedule::new(7, plan());
        // Some beacon must be dark in one epoch and awake in another.
        let revived = (0..500u64).any(|tx| !s.is_alive(tx, 0) && s.is_alive(tx, 1));
        assert!(revived, "duty-cycle flapping must allow revival");
    }

    #[test]
    fn healthy_plan_keeps_everyone_alive() {
        let s = MortalitySchedule::new(1234, MortalityPlan::healthy());
        assert!((0..300u64).all(|tx| (0..4).all(|e| s.is_alive(tx, e))));
        assert_eq!(s.alive_fraction(300, 0), 1.0);
    }

    #[test]
    fn death_rate_tracks_alive_fraction() {
        let p = MortalityPlan {
            death_rate: 0.5,
            flap_rate: 0.0,
            duty_cycle: 1.0,
        };
        let s = MortalitySchedule::new(42, p);
        let f = s.alive_fraction(2000, 0);
        assert!((f - 0.5).abs() < 0.05, "alive fraction {f} far from 0.5");
    }

    #[test]
    fn different_seeds_differ() {
        let a = MortalitySchedule::new(1, plan());
        let b = MortalitySchedule::new(2, plan());
        let differs = (0..200u64).any(|tx| a.is_alive(tx, 0) != b.is_alive(tx, 0));
        assert!(differs);
    }
}
