//! The declarative [`FaultPlan`] and its compiled [`FaultSchedule`].

use crate::drift::{DriftPlan, DriftSchedule};
use crate::gilbert::{BurstPlan, BurstSchedule};
use crate::gps::{GpsFault, GpsOutage, GpsOutagePlan};
use crate::mix;
use crate::mortality::{MortalityPlan, MortalitySchedule};
use abp_geom::{DeterministicField, Point};
use abp_radio::{Propagation, TxId};
use serde::{Deserialize, Serialize};

/// A declarative description of which faults afflict a trial.
///
/// `None` in every slot is the healthy world: compiling such a plan
/// yields a schedule that never kills a beacon, never cuts a link,
/// never blinds the robot, and never drifts the noise — byte-for-byte
/// the behavior of a run without `abp-fault` in the loop.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Beacon mortality (permanent death + duty-cycle flapping).
    pub mortality: Option<MortalityPlan>,
    /// Correlated message-loss bursts on every link.
    pub burst: Option<BurstPlan>,
    /// Survey-agent GPS outage windows.
    pub gps: Option<GpsOutagePlan>,
    /// Drifting noise-factor ramp across epochs.
    pub drift: Option<DriftPlan>,
}

impl FaultPlan {
    /// The healthy world: no faults at all.
    pub const fn none() -> Self {
        FaultPlan {
            mortality: None,
            burst: None,
            gps: None,
            drift: None,
        }
    }

    /// Whether this plan injects no faults whatsoever.
    pub fn is_none(&self) -> bool {
        self.mortality.is_none()
            && self.burst.is_none()
            && self.gps.is_none()
            && self.drift.is_none()
    }

    /// A stable hash of every parameter in the plan.
    ///
    /// Folded into sweep checkpoint keys so entries computed under one
    /// fault regime are never mistaken for another's.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0x4642_5046_5f76_3031; // "FBPF_v01"
        h = mix(h, u64::from(self.mortality.is_some()));
        if let Some(m) = &self.mortality {
            h = m.fingerprint(h);
        }
        h = mix(h, u64::from(self.burst.is_some()));
        if let Some(b) = &self.burst {
            h = b.fingerprint(h);
        }
        h = mix(h, u64::from(self.gps.is_some()));
        if let Some(g) = &self.gps {
            h = g.fingerprint(h);
        }
        h = mix(h, u64::from(self.drift.is_some()));
        if let Some(d) = &self.drift {
            h = d.fingerprint(h);
        }
        h
    }

    /// Compiles the plan into a concrete per-trial realization.
    ///
    /// Each fault family receives an independent sub-seed derived from
    /// `trial_seed` by a salted splitmix64 chain, so enabling one family
    /// never perturbs another's realization.
    pub fn compile(&self, trial_seed: u64) -> FaultSchedule {
        FaultSchedule {
            mortality: self
                .mortality
                .map(|p| MortalitySchedule::new(mix(trial_seed, 0x4D4F_5254_5345_4544), p)),
            burst: self
                .burst
                .map(|p| BurstSchedule::new(mix(trial_seed, 0x4255_5253_5345_4544), p)),
            gps: self
                .gps
                .map(|p| GpsOutage::new(mix(trial_seed, 0x4750_5353_5345_4544), p)),
            drift: self
                .drift
                .map(|p| DriftSchedule::new(mix(trial_seed, 0x4452_4654_5345_4544), p)),
            link_field: DeterministicField::new(mix(trial_seed, 0x4C49_4E4B_5345_4544)),
        }
    }
}

/// A compiled, queryable fault realization for one trial.
///
/// Pure functions of `(trial seed, plan, query)` throughout — a schedule
/// holds no mutable state and may be queried from any thread in any
/// order with identical results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    mortality: Option<MortalitySchedule>,
    burst: Option<BurstSchedule>,
    gps: Option<GpsOutage>,
    drift: Option<DriftSchedule>,
    link_field: DeterministicField,
}

impl FaultSchedule {
    /// Whether beacon `tx` is transmitting during `epoch`.
    pub fn is_alive(&self, tx: u64, epoch: u64) -> bool {
        self.mortality.map_or(true, |m| m.is_alive(tx, epoch))
    }

    /// The GPS fault affecting survey waypoint `waypoint`, if any.
    pub fn gps_fault(&self, waypoint: usize) -> Option<GpsFault> {
        self.gps.and_then(|g| g.fault_at(waypoint))
    }

    /// Multiplier on the configured noise factor at `epoch`.
    pub fn noise_multiplier(&self, epoch: u64) -> f64 {
        self.drift.map_or(1.0, |d| d.noise_multiplier(epoch))
    }

    /// The compiled mortality realization, if mortality is planned.
    pub fn mortality(&self) -> Option<&MortalitySchedule> {
        self.mortality.as_ref()
    }

    /// The compiled burst-loss realization, if bursts are planned.
    pub fn burst(&self) -> Option<&BurstSchedule> {
        self.burst.as_ref()
    }

    /// The compiled GPS-outage realization, if outages are planned.
    pub fn gps(&self) -> Option<&GpsOutage> {
        self.gps.as_ref()
    }

    /// Layers this schedule's radio-facing faults (mortality + burst
    /// loss) over `base`, producing a [`Propagation`] model for `epoch`.
    ///
    /// With neither family planned the wrapper is transparent: it
    /// forwards every query to `base` unchanged.
    pub fn wrap<M: Propagation>(&self, base: M, epoch: u64) -> FaultyRadio<M> {
        FaultyRadio {
            base,
            mortality: self.mortality,
            burst: self.burst,
            link_field: self.link_field,
            epoch,
        }
    }
}

/// A [`Propagation`] model with mortality and burst loss layered on top.
///
/// * a dead (or currently asleep) beacon reaches nobody and advertises a
///   zero `max_range`, so surveys skip it cheaply;
/// * a live link additionally survives only if enough of the listening
///   window escapes the Gilbert–Elliott bursts.
///
/// Burst loss only ever *removes* connectivity, so the base model's
/// `max_range` remains a valid upper bound.
#[derive(Debug, Clone, Copy)]
pub struct FaultyRadio<M> {
    base: M,
    mortality: Option<MortalitySchedule>,
    burst: Option<BurstSchedule>,
    link_field: DeterministicField,
    epoch: u64,
}

impl<M> FaultyRadio<M> {
    /// The epoch this wrapper evaluates faults at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The wrapped base model.
    pub fn base(&self) -> &M {
        &self.base
    }
}

impl<M: Propagation> Propagation for FaultyRadio<M> {
    fn connected(&self, tx: TxId, tx_pos: Point, rx: Point) -> bool {
        if let Some(m) = &self.mortality {
            if !m.is_alive(tx.0, self.epoch) {
                return false;
            }
        }
        if !self.base.connected(tx, tx_pos, rx) {
            return false;
        }
        match &self.burst {
            Some(b) => b.link_up(self.link_field.hash(tx.0, rx), self.epoch),
            None => true,
        }
    }

    fn max_range(&self, tx: TxId, tx_pos: Point) -> f64 {
        if let Some(m) = &self.mortality {
            if !m.is_alive(tx.0, self.epoch) {
                return 0.0;
            }
        }
        self.base.max_range(tx, tx_pos)
    }

    fn nominal_range(&self) -> f64 {
        self.base.nominal_range()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_radio::IdealDisk;

    fn full_plan() -> FaultPlan {
        FaultPlan {
            mortality: Some(MortalityPlan {
                death_rate: 0.2,
                flap_rate: 0.2,
                duty_cycle: 0.5,
            }),
            burst: Some(BurstPlan::paper(0.4)),
            gps: Some(GpsOutagePlan {
                outage_fraction: 0.25,
                window: 5,
                bias_meters: 0.0,
            }),
            drift: Some(DriftPlan {
                ramp_per_epoch: 0.1,
                cap: 1.4,
            }),
        }
    }

    #[test]
    fn noop_plan_compiles_to_transparent_schedule() {
        let s = FaultPlan::none().compile(42);
        assert!(FaultPlan::none().is_none());
        assert!(s.is_alive(3, 0));
        assert!(s.gps_fault(10).is_none());
        assert_eq!(s.noise_multiplier(5), 1.0);
        let base = IdealDisk::new(15.0);
        let wrapped = s.wrap(&base, 0);
        let tx = TxId(4);
        let tx_pos = Point::new(10.0, 10.0);
        for i in 0..40 {
            let rx = Point::new(i as f64, 2.0 * i as f64);
            assert_eq!(
                wrapped.connected(tx, tx_pos, rx),
                base.connected(tx, tx_pos, rx)
            );
        }
        assert_eq!(wrapped.max_range(tx, tx_pos), base.max_range(tx, tx_pos));
    }

    #[test]
    fn compile_is_deterministic() {
        let plan = full_plan();
        let a = plan.compile(0xBEEF);
        let b = plan.compile(0xBEEF);
        assert_eq!(a, b);
    }

    #[test]
    fn different_trial_seeds_give_different_realizations() {
        let plan = full_plan();
        let a = plan.compile(1);
        let b = plan.compile(2);
        let differs = (0..200u64).any(|tx| a.is_alive(tx, 0) != b.is_alive(tx, 0));
        assert!(differs);
    }

    #[test]
    fn fingerprint_tracks_parameters() {
        let base = full_plan();
        assert_eq!(base.fingerprint(), full_plan().fingerprint());
        let mut tweaked = base;
        tweaked.mortality = Some(MortalityPlan {
            death_rate: 0.21,
            flap_rate: 0.2,
            duty_cycle: 0.5,
        });
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
        assert_ne!(base.fingerprint(), FaultPlan::none().fingerprint());
    }

    #[test]
    fn dead_beacon_has_zero_range_and_no_links() {
        let plan = FaultPlan {
            mortality: Some(MortalityPlan {
                death_rate: 1.0,
                flap_rate: 0.0,
                duty_cycle: 1.0,
            }),
            ..FaultPlan::none()
        };
        let s = plan.compile(9);
        let base = IdealDisk::new(15.0);
        let w = s.wrap(&base, 0);
        let tx = TxId(0);
        let p = Point::new(5.0, 5.0);
        assert_eq!(w.max_range(tx, p), 0.0);
        assert!(!w.connected(tx, p, p));
        assert_eq!(w.nominal_range(), 15.0);
    }

    #[test]
    fn burst_only_removes_connectivity() {
        let plan = FaultPlan {
            burst: Some(BurstPlan::paper(0.6)),
            ..FaultPlan::none()
        };
        let s = plan.compile(123);
        let base = IdealDisk::new(15.0);
        let w = s.wrap(&base, 0);
        let tx = TxId(1);
        let tx_pos = Point::new(50.0, 50.0);
        let mut cut = 0;
        for i in 0..400 {
            let rx = Point::new(40.0 + (i % 20) as f64, 40.0 + (i / 20) as f64);
            let before = base.connected(tx, tx_pos, rx);
            let after = w.connected(tx, tx_pos, rx);
            assert!(!after || before, "burst wrapper must never add links");
            if before && !after {
                cut += 1;
            }
        }
        assert!(cut > 0, "intensity 0.6 should cut some links");
    }
}
