//! Drifting noise-factor ramps.
//!
//! The paper's propagation noise is *static in time*: the noise factor
//! `F` chosen for a run never changes while the experiment executes
//! (§4.1), and §6 flags time-varying propagation as future work. This
//! module models the slow component of that variation — the environment
//! drifting between the "before" survey and the "after" re-survey
//! (weather fronts, vegetation moisture, diurnal temperature) — as a
//! multiplicative ramp on the noise factor indexed by *epoch*:
//!
//! ```text
//! multiplier(epoch) = min(1 + ramp * (epoch + phase), cap)
//! ```
//!
//! where `phase ∈ [0, 1)` is hashed from the trial seed so different
//! trials start at different points of the drift cycle, yet every replay
//! of a trial sees the same ramp.

use crate::{mix, unit};
use serde::{Deserialize, Serialize};

/// Declarative drift parameters for a [`crate::FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftPlan {
    /// Additive growth of the noise multiplier per epoch (`>= 0`).
    pub ramp_per_epoch: f64,
    /// Upper bound on the multiplier (keeps effective noise sane).
    pub cap: f64,
}

impl DriftPlan {
    /// Folds the plan's parameters into a fingerprint hash.
    pub(crate) fn fingerprint(&self, h: u64) -> u64 {
        let h = mix(h, 0x4452_4654); // "DRFT"
        let h = mix(h, self.ramp_per_epoch.to_bits());
        mix(h, self.cap.to_bits())
    }
}

/// A compiled drift realization for one trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftSchedule {
    phase: f64,
    plan: DriftPlan,
}

impl DriftSchedule {
    /// Compiles `plan` against a per-trial seed.
    pub fn new(seed: u64, plan: DriftPlan) -> Self {
        DriftSchedule {
            phase: unit(mix(seed, 0x0D21_F007)),
            plan,
        }
    }

    /// Multiplier to apply to the configured noise factor at `epoch`.
    ///
    /// Always `>= 1` (drift degrades, never improves, the channel) and
    /// capped by the plan so the effective noise factor stays physical.
    pub fn noise_multiplier(&self, epoch: u64) -> f64 {
        let m = 1.0 + self.plan.ramp_per_epoch * (epoch as f64 + self.phase);
        m.min(self.plan.cap.max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> DriftPlan {
        DriftPlan {
            ramp_per_epoch: 0.2,
            cap: 1.5,
        }
    }

    #[test]
    fn replay_is_identical() {
        let a = DriftSchedule::new(11, plan());
        let b = DriftSchedule::new(11, plan());
        for e in 0..10 {
            assert_eq!(a.noise_multiplier(e), b.noise_multiplier(e));
        }
    }

    #[test]
    fn ramp_is_monotone_until_capped() {
        let s = DriftSchedule::new(3, plan());
        let m0 = s.noise_multiplier(0);
        let m1 = s.noise_multiplier(1);
        let m9 = s.noise_multiplier(9);
        assert!(m0 >= 1.0);
        assert!(m1 > m0);
        assert!((m9 - 1.5).abs() < 1e-12, "cap should bind by epoch 9");
    }

    #[test]
    fn phase_varies_with_seed() {
        let a = DriftSchedule::new(1, plan());
        let b = DriftSchedule::new(2, plan());
        assert_ne!(a.noise_multiplier(0), b.noise_multiplier(0));
    }

    #[test]
    fn zero_ramp_is_identity() {
        let s = DriftSchedule::new(
            9,
            DriftPlan {
                ramp_per_epoch: 0.0,
                cap: 2.0,
            },
        );
        assert_eq!(s.noise_multiplier(0), 1.0);
        assert_eq!(s.noise_multiplier(7), 1.0);
    }
}
