//! Correlated message loss: a Gilbert–Elliott on/off burst channel.
//!
//! The paper's reference-based localization listens for `T` beacon
//! messages per sample window and counts a beacon as *connected* when at
//! least `t` of them arrive (the 90 %-of-messages threshold, §2). Real
//! 433 MHz radios do not lose messages independently — interference and
//! fading arrive in *bursts*. The classic two-state model for that is the
//! Gilbert–Elliott channel: a hidden Markov chain alternates between a
//! **good** state (low loss) and a **bad** state (high loss), and the
//! geometric sojourn time in the bad state is the burst length.
//!
//! [`GilbertElliott::from_intensity`] parameterizes the chain by its
//! stationary bad-state probability (the *burst-loss intensity* swept by
//! the robustness figure) and the mean burst length, which is how the
//! experiment axes stay interpretable.
//!
//! Determinism: the chain is simulated with hashed uniforms derived from
//! a per-link seed, so the same `(seed, window)` query always sees the
//! same loss pattern — no RNG state leaks between links or trials.

use crate::{mix, unit};
use serde::{Deserialize, Serialize};

/// A two-state Gilbert–Elliott loss channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Per-message probability of moving good → bad.
    pub p_enter_bad: f64,
    /// Per-message probability of moving bad → good.
    pub p_exit_bad: f64,
    /// Per-message loss probability while in the good state.
    pub loss_good: f64,
    /// Per-message loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Builds a chain from its stationary bad-state probability
    /// (`intensity`, clamped to `[0, 0.95]`) and mean burst length in
    /// messages (`burst_len`, clamped to `>= 1`).
    ///
    /// `p_exit_bad = 1 / burst_len` makes bad-state sojourns geometric
    /// with the requested mean; `p_enter_bad` is then solved from the
    /// stationary equation `pi_bad = p_enter / (p_enter + p_exit)`.
    pub fn from_intensity(intensity: f64, burst_len: f64, loss_good: f64, loss_bad: f64) -> Self {
        let pi_bad = intensity.clamp(0.0, 0.95);
        let p_exit_bad = 1.0 / burst_len.max(1.0);
        let p_enter_bad = if pi_bad <= 0.0 {
            0.0
        } else {
            p_exit_bad * pi_bad / (1.0 - pi_bad)
        };
        GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good,
            loss_bad,
        }
    }

    /// Stationary probability of being in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom <= 0.0 {
            0.0
        } else {
            self.p_enter_bad / denom
        }
    }

    /// Long-run expected per-message loss probability.
    pub fn expected_loss(&self) -> f64 {
        let pi = self.stationary_bad();
        pi * self.loss_bad + (1.0 - pi) * self.loss_good
    }

    /// Whether the channel can never lose a message.
    pub fn is_transparent(&self) -> bool {
        self.loss_good <= 0.0 && (self.stationary_bad() <= 0.0 || self.loss_bad <= 0.0)
    }

    /// Fraction of `messages` delivered on the link identified by `seed`.
    ///
    /// Simulates the chain deterministically: the initial state is drawn
    /// from the stationary distribution and every loss/transition coin is
    /// a hashed uniform, so the identical query replays the identical
    /// burst pattern.
    pub fn received_fraction(&self, seed: u64, messages: u32) -> f64 {
        if messages == 0 {
            return 1.0;
        }
        if self.is_transparent() {
            return 1.0;
        }
        let mut h = mix(seed, 0x6E11_B357); // burst-stream salt
        let mut bad = unit(h) < self.stationary_bad();
        let mut received = 0u32;
        for _ in 0..messages {
            h = mix(h, 1);
            let loss = if bad { self.loss_bad } else { self.loss_good };
            if unit(h) >= loss {
                received += 1;
            }
            h = mix(h, 2);
            let flip = if bad {
                self.p_exit_bad
            } else {
                self.p_enter_bad
            };
            if unit(h) < flip {
                bad = !bad;
            }
        }
        f64::from(received) / f64::from(messages)
    }
}

/// Declarative burst-loss parameters for a [`crate::FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstPlan {
    /// Stationary bad-state probability (the swept *intensity*), `[0, 0.95]`.
    pub intensity: f64,
    /// Mean burst length in messages, `>= 1`.
    pub burst_len: f64,
    /// Per-message loss in the good state (0 for a clean good state).
    pub loss_good: f64,
    /// Per-message loss in the bad state.
    pub loss_bad: f64,
    /// Messages listened for per connectivity decision (the paper's `T`).
    pub window: u32,
    /// Fraction of the window that must arrive to count as connected
    /// (the paper's 90 % threshold is `0.9`).
    pub threshold: f64,
}

impl BurstPlan {
    /// The paper-style window: `T = 20` messages with a 90 % threshold,
    /// total blackout while the channel is in a bad burst of mean length
    /// five messages, at the given stationary intensity.
    pub fn paper(intensity: f64) -> Self {
        BurstPlan {
            intensity,
            burst_len: 5.0,
            loss_good: 0.0,
            loss_bad: 1.0,
            window: 20,
            threshold: 0.9,
        }
    }

    /// Folds the plan's parameters into a fingerprint hash.
    pub(crate) fn fingerprint(&self, h: u64) -> u64 {
        let h = mix(h, 0x4255_5253); // "BURS"
        let h = mix(h, self.intensity.to_bits());
        let h = mix(h, self.burst_len.to_bits());
        let h = mix(h, self.loss_good.to_bits());
        let h = mix(h, self.loss_bad.to_bits());
        let h = mix(h, u64::from(self.window));
        mix(h, self.threshold.to_bits())
    }
}

/// A compiled burst-loss realization for one trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstSchedule {
    seed: u64,
    chain: GilbertElliott,
    window: u32,
    threshold: f64,
}

impl BurstSchedule {
    /// Compiles `plan` against a per-trial seed.
    pub fn new(seed: u64, plan: BurstPlan) -> Self {
        BurstSchedule {
            seed,
            chain: GilbertElliott::from_intensity(
                plan.intensity,
                plan.burst_len,
                plan.loss_good,
                plan.loss_bad,
            ),
            window: plan.window,
            threshold: plan.threshold,
        }
    }

    /// The underlying loss chain.
    pub fn chain(&self) -> GilbertElliott {
        self.chain
    }

    /// Whether enough of the listening window survives the bursts for
    /// the link keyed by `link_key` during `epoch`.
    pub fn link_up(&self, link_key: u64, epoch: u64) -> bool {
        if self.chain.is_transparent() {
            return true;
        }
        let seed = mix(self.seed, mix(epoch.rotate_left(23), link_key));
        self.chain.received_fraction(seed, self.window) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_is_transparent() {
        let ge = GilbertElliott::from_intensity(0.0, 5.0, 0.0, 1.0);
        assert!(ge.is_transparent());
        assert_eq!(ge.received_fraction(123, 20), 1.0);
        assert_eq!(ge.expected_loss(), 0.0);
    }

    #[test]
    fn stationary_probability_matches_request() {
        for &pi in &[0.1, 0.3, 0.5, 0.8] {
            let ge = GilbertElliott::from_intensity(pi, 5.0, 0.0, 1.0);
            assert!((ge.stationary_bad() - pi).abs() < 1e-12, "pi={pi}");
        }
    }

    #[test]
    fn received_fraction_replays_bit_for_bit() {
        let ge = GilbertElliott::from_intensity(0.4, 4.0, 0.05, 0.95);
        for seed in 0..50u64 {
            assert_eq!(
                ge.received_fraction(seed, 32),
                ge.received_fraction(seed, 32)
            );
        }
    }

    #[test]
    fn higher_intensity_loses_more() {
        let lo = GilbertElliott::from_intensity(0.1, 5.0, 0.0, 1.0);
        let hi = GilbertElliott::from_intensity(0.7, 5.0, 0.0, 1.0);
        let avg = |ge: &GilbertElliott| {
            (0..400u64)
                .map(|s| ge.received_fraction(s, 20))
                .sum::<f64>()
                / 400.0
        };
        assert!(avg(&hi) < avg(&lo));
        // And the empirical mean should be near the analytic expectation.
        assert!((avg(&lo) - (1.0 - lo.expected_loss())).abs() < 0.05);
    }

    #[test]
    fn burst_schedule_is_deterministic_and_epoch_varying() {
        let plan = BurstPlan::paper(0.5);
        let a = BurstSchedule::new(77, plan);
        let b = BurstSchedule::new(77, plan);
        let mut varies = false;
        for key in 0..300u64 {
            assert_eq!(a.link_up(key, 0), b.link_up(key, 0));
            assert_eq!(a.link_up(key, 1), b.link_up(key, 1));
            varies |= a.link_up(key, 0) != a.link_up(key, 1);
        }
        assert!(varies, "bursts should differ between epochs");
    }

    #[test]
    fn transparent_schedule_never_cuts_links() {
        let s = BurstSchedule::new(5, BurstPlan::paper(0.0));
        assert!((0..100u64).all(|k| s.link_up(k, 0)));
    }
}
