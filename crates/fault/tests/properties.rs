//! Property-based determinism tests for fault schedules.
//!
//! The contract the rest of the workspace leans on: compiling the same
//! `FaultPlan` from the same trial seed yields *identical* fault
//! schedules, no matter how, when, or from which thread they are
//! queried. Checkpoint/resume of faulty sweeps is only sound because of
//! this.

use abp_fault::{BurstPlan, DriftPlan, FaultPlan, GpsOutagePlan, MortalityPlan};
use abp_geom::Point;
use abp_radio::{IdealDisk, Propagation, TxId};
use proptest::prelude::*;

fn plan_from(
    death: f64,
    flap: f64,
    duty: f64,
    intensity: f64,
    outage: f64,
    ramp: f64,
) -> FaultPlan {
    FaultPlan {
        mortality: Some(MortalityPlan {
            death_rate: death,
            flap_rate: flap,
            duty_cycle: duty,
        }),
        burst: Some(BurstPlan::paper(intensity)),
        gps: Some(GpsOutagePlan {
            outage_fraction: outage,
            window: 6,
            bias_meters: if outage > 0.5 { 2.0 } else { 0.0 },
        }),
        drift: Some(DriftPlan {
            ramp_per_epoch: ramp,
            cap: 1.5,
        }),
    }
}

proptest! {
    #[test]
    fn same_seed_same_schedule(
        seed in any::<u64>(),
        death in 0.0..0.9f64,
        flap in 0.0..0.9f64,
        duty in 0.1..1.0f64,
        intensity in 0.0..0.9f64,
        outage in 0.0..0.9f64,
        ramp in 0.0..0.5f64,
    ) {
        let plan = plan_from(death, flap, duty, intensity, outage, ramp);
        let a = plan.compile(seed);
        let b = plan.compile(seed);
        prop_assert_eq!(a, b);
        // Queries agree too, including through the radio wrapper.
        let base = IdealDisk::new(15.0);
        let wa = a.wrap(&base, 1);
        let wb = b.wrap(&base, 1);
        for tx in 0..32u64 {
            prop_assert_eq!(a.is_alive(tx, 0), b.is_alive(tx, 0));
            prop_assert_eq!(a.is_alive(tx, 1), b.is_alive(tx, 1));
            let tx_pos = Point::new((tx % 8) as f64 * 12.0, (tx / 8) as f64 * 12.0);
            let rx = Point::new(tx as f64, 90.0 - tx as f64);
            prop_assert_eq!(
                wa.connected(TxId(tx), tx_pos, rx),
                wb.connected(TxId(tx), tx_pos, rx)
            );
        }
        for w in 0..64usize {
            prop_assert_eq!(a.gps_fault(w), b.gps_fault(w));
        }
        prop_assert_eq!(a.noise_multiplier(0).to_bits(), b.noise_multiplier(0).to_bits());
        prop_assert_eq!(a.noise_multiplier(1).to_bits(), b.noise_multiplier(1).to_bits());
    }

    #[test]
    fn fingerprint_is_stable_and_parameter_sensitive(
        death in 0.01..0.9f64,
        intensity in 0.01..0.9f64,
    ) {
        let plan = plan_from(death, 0.1, 0.5, intensity, 0.2, 0.1);
        prop_assert_eq!(plan.fingerprint(), plan.fingerprint());
        let other = plan_from(death + 0.05, 0.1, 0.5, intensity, 0.2, 0.1);
        prop_assert_ne!(plan.fingerprint(), other.fingerprint());
    }

    #[test]
    fn noop_wrapper_matches_base_model(seed in any::<u64>()) {
        let schedule = FaultPlan::none().compile(seed);
        let base = IdealDisk::new(15.0);
        let wrapped = schedule.wrap(&base, 0);
        for i in 0..64u64 {
            let tx = TxId(i % 4);
            let tx_pos = Point::new(30.0, 30.0);
            let rx = Point::new((i % 8) as f64 * 7.0, (i / 8) as f64 * 7.0);
            prop_assert_eq!(
                wrapped.connected(tx, tx_pos, rx),
                base.connected(tx, tx_pos, rx)
            );
            prop_assert_eq!(wrapped.max_range(tx, tx_pos), base.max_range(tx, tx_pos));
        }
    }
}
