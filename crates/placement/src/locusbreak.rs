//! Locus-breaking placement (paper §6).
//!
//! "Knowledge of loci enables a new perspective on adaptive beacon
//! placement, such as adding new beacons to break down the loci with the
//! largest area into smaller loci. ... such algorithms are worth pursuing
//! from a theoretical standpoint."
//!
//! A *locus* here is a localization region: a maximal set of points with
//! identical beacon connectivity (all of which receive the same estimate).
//! [`LocusBreakPlacement`] finds the largest region — measured by how many
//! survey points fall in it — and proposes its centroid, splitting the
//! region into several smaller ones.

use crate::{PlacementAlgorithm, SurveyView};
use abp_geom::Point;
use abp_localize::regions::region_map;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Breaks the largest localization region with a new beacon.
///
/// The region structure is computed from the survey view's field and
/// model (the same connectivity observations the exploring robot makes).
/// Ties between equal-sized regions break toward the smaller region id
/// (first appearance in the row-major sweep), making the algorithm
/// deterministic.
///
/// Complexity: `O(Σ points-in-range)` for the region sweep plus `O(PT)`
/// for the centroid — the same order as the Grid algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LocusBreakPlacement {}

impl LocusBreakPlacement {
    /// Creates the algorithm.
    pub fn new() -> Self {
        LocusBreakPlacement {}
    }
}

impl PlacementAlgorithm for LocusBreakPlacement {
    fn name(&self) -> &'static str {
        "locus-break"
    }

    fn propose(&self, view: &SurveyView<'_>, _rng: &mut dyn RngCore) -> Point {
        let lattice = view.map.lattice();
        let regions = region_map(lattice, view.field, view.model);
        if regions.region_count == 0 {
            return lattice.terrain().center();
        }
        // Count points per region.
        let mut sizes = vec![0u32; regions.region_count];
        for &r in &regions.region_of {
            sizes[r as usize] += 1;
        }
        let mut largest = 0usize;
        for (r, &s) in sizes.iter().enumerate() {
            if s > sizes[largest] {
                largest = r;
            }
        }
        // Centroid of the largest region's lattice points.
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        let mut n = 0u32;
        for (flat, &r) in regions.region_of.iter().enumerate() {
            if r as usize == largest {
                let p = lattice.point(lattice.unflat(flat));
                sum_x += p.x;
                sum_y += p.y;
                n += 1;
            }
        }
        debug_assert!(n > 0);
        let c = Point::new(sum_x / n as f64, sum_y / n as f64);
        // Region centroids can leave non-convex regions but never the
        // terrain (lattice points span it); clamp defensively anyway.
        lattice.terrain().bounds().clamp_point(c)
    }
}

impl fmt::Display for LocusBreakPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("locus-break placement (split the largest localization region)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_field::BeaconField;
    use abp_geom::{Lattice, Terrain};
    use abp_localize::regions::count_regions;
    use abp_localize::UnheardPolicy;
    use abp_radio::IdealDisk;
    use abp_survey::ErrorMap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    fn make_view(field: &BeaconField, model: &IdealDisk, lattice: &Lattice) -> ErrorMap {
        ErrorMap::survey(lattice, field, model, UnheardPolicy::TerrainCenter)
    }

    #[test]
    fn empty_field_targets_the_unheard_region_centroid() {
        let lattice = Lattice::new(terrain(), 10.0);
        let field = BeaconField::new(terrain());
        let model = IdealDisk::new(15.0);
        let map = make_view(&field, &model, &lattice);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        // One giant region covering everything: centroid = terrain center.
        let p = LocusBreakPlacement::new().propose(&view, &mut StdRng::seed_from_u64(0));
        assert_eq!(p, Point::new(50.0, 50.0));
    }

    #[test]
    fn breaking_increases_region_count() {
        let lattice = Lattice::new(terrain(), 5.0);
        let mut field = BeaconField::from_positions(
            terrain(),
            [Point::new(20.0, 20.0), Point::new(30.0, 20.0)],
        );
        let model = IdealDisk::new(15.0);
        let before_regions = count_regions(&lattice, &field, &model);
        let map = make_view(&field, &model, &lattice);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let p = LocusBreakPlacement::new().propose(&view, &mut StdRng::seed_from_u64(0));
        field.add_beacon(p);
        let after_regions = count_regions(&lattice, &field, &model);
        assert!(
            after_regions > before_regions,
            "placing in the largest region must split it ({before_regions} -> {after_regions})"
        );
    }

    #[test]
    fn targets_the_biggest_uncovered_area() {
        // Beacons clustered in the SW corner: the dominant region is the
        // uncovered remainder, whose centroid is pulled to the NE.
        let lattice = Lattice::new(terrain(), 5.0);
        let field = BeaconField::from_positions(
            terrain(),
            [
                Point::new(10.0, 10.0),
                Point::new(20.0, 10.0),
                Point::new(10.0, 20.0),
            ],
        );
        let model = IdealDisk::new(15.0);
        let map = make_view(&field, &model, &lattice);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let p = LocusBreakPlacement::new().propose(&view, &mut StdRng::seed_from_u64(0));
        assert!(p.x > 40.0 && p.y > 40.0, "expected NE-ish pick, got {p}");
    }

    #[test]
    fn deterministic() {
        let lattice = Lattice::new(terrain(), 5.0);
        let field = BeaconField::random_uniform(20, terrain(), &mut StdRng::seed_from_u64(11));
        let model = IdealDisk::new(15.0);
        let map = make_view(&field, &model, &lattice);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let a = LocusBreakPlacement::new().propose(&view, &mut StdRng::seed_from_u64(1));
        let b = LocusBreakPlacement::new().propose(&view, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
    }
}
