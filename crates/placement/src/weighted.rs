//! Distance-weighted Grid placement (ablation / extension).

use crate::grid::GridPlacement;
use crate::{PlacementAlgorithm, SurveyView};
use abp_geom::Point;
use abp_survey::ErrorMap;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Grid placement with a triangular distance kernel: instead of the
/// paper's unweighted cumulative error `S(i,j) = Σ e(p)`, each grid scores
///
/// ```text
/// Sw(i,j) = Σ e(p) · max(0, 1 − |p − c(i,j)| / R)
/// ```
///
/// The rationale is the paper's own observation that "adding a new beacon
/// affects its nearby area, not just the point where it is placed" — but a
/// beacon placed at the grid *center* improves points near the center more
/// than points in the grid's corners (which lie farther than `R` away and
/// gain nothing). The kernel scores exactly the improvable area.
///
/// This is an ablation of the paper's design choice (DESIGN.md): the
/// `weighted_grid` bench compares it against the plain Grid algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedGridPlacement {
    inner: GridPlacement,
    nominal_range: f64,
}

impl WeightedGridPlacement {
    /// Creates the algorithm with the same grid geometry as
    /// [`GridPlacement::new`].
    ///
    /// # Panics
    ///
    /// As [`GridPlacement::new`].
    pub fn new(terrain: abp_geom::Terrain, nominal_range: f64, num_grids: usize) -> Self {
        WeightedGridPlacement {
            inner: GridPlacement::new(terrain, nominal_range, num_grids),
            nominal_range,
        }
    }

    /// The paper's grid geometry (`NG = 400`), weighted scoring.
    pub fn paper(terrain: abp_geom::Terrain, nominal_range: f64) -> Self {
        WeightedGridPlacement {
            inner: GridPlacement::paper(terrain, nominal_range),
            nominal_range,
        }
    }

    /// The underlying (unweighted) grid geometry.
    #[inline]
    pub fn geometry(&self) -> &GridPlacement {
        &self.inner
    }

    /// The weighted cumulative error of every grid, row-major.
    pub fn weighted_errors(&self, map: &ErrorMap) -> Vec<f64> {
        let n = self.inner.grids_per_side();
        let lattice = *map.lattice();
        let r = self.nominal_range;
        let mut out = Vec::with_capacity(self.inner.num_grids());
        for j in 0..n {
            for i in 0..n {
                let center = self.inner.center(i, j);
                let rect = self.inner.grid_rect(i, j);
                let mut sum = 0.0;
                lattice.for_each_in_rect(&rect, |ix, p| {
                    if let Some(e) = map.error_at(ix) {
                        let w = 1.0 - p.distance(center) / r;
                        if w > 0.0 {
                            sum += e * w;
                        }
                    }
                });
                out.push(sum);
            }
        }
        out
    }
}

impl PlacementAlgorithm for WeightedGridPlacement {
    fn name(&self) -> &'static str {
        "weighted-grid"
    }

    fn propose(&self, view: &SurveyView<'_>, _rng: &mut dyn RngCore) -> Point {
        let _span = abp_trace::span!("placement.weighted_grid");
        crate::CANDIDATES_SCANNED.add(self.inner.num_grids() as u64);
        let scores = self.weighted_errors(view.map);
        let per_side = self.inner.grids_per_side();
        let mut best = 0usize;
        for (k, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = k;
            }
        }
        let i = (best % per_side as usize) as u32;
        let j = (best / per_side as usize) as u32;
        self.inner.center(i, j)
    }
}

impl fmt::Display for WeightedGridPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "weighted {}", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_field::BeaconField;
    use abp_geom::{Lattice, Terrain};
    use abp_localize::UnheardPolicy;
    use abp_radio::IdealDisk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    #[test]
    fn weighted_scores_never_exceed_unweighted() {
        let lattice = Lattice::new(terrain(), 5.0);
        let mut rng = StdRng::seed_from_u64(17);
        let field = BeaconField::random_uniform(30, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let w = WeightedGridPlacement::new(terrain(), 15.0, 25);
        let weighted = w.weighted_errors(&map);
        let unweighted = w.geometry().cumulative_errors(&map);
        for (a, b) in weighted.iter().zip(&unweighted) {
            assert!(a <= b, "weight kernel must only shrink scores");
            assert!(*a >= 0.0);
        }
    }

    #[test]
    fn proposal_is_a_grid_center() {
        let lattice = Lattice::new(terrain(), 5.0);
        let mut rng = StdRng::seed_from_u64(1);
        let field = BeaconField::random_uniform(25, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let w = WeightedGridPlacement::paper(terrain(), 15.0);
        let p = w.propose(&view, &mut rng);
        let is_center = w.geometry().centers().any(|c| c.distance(p) < 1e-9);
        assert!(is_center, "{p} is not a grid center");
    }

    #[test]
    fn finds_the_coverage_hole_like_grid() {
        let lattice = Lattice::new(terrain(), 2.0);
        let mut positions = Vec::new();
        for j in 0..10 {
            for i in 0..10 {
                let p = Point::new(5.0 + i as f64 * 10.0, 5.0 + j as f64 * 10.0);
                if !(p.x > 50.0 && p.y > 50.0) {
                    positions.push(p);
                }
            }
        }
        let field = BeaconField::from_positions(terrain(), positions);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let p = WeightedGridPlacement::paper(terrain(), 15.0)
            .propose(&view, &mut StdRng::seed_from_u64(0));
        assert!(p.x > 50.0 && p.y > 50.0, "expected NE quadrant, got {p}");
    }
}
