//! The Max placement algorithm (paper §3.2.2).

use crate::{PlacementAlgorithm, SurveyView};
use abp_geom::Point;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's Max algorithm:
///
/// 1. divide the terrain into `step × step` squares,
/// 2. measure the localization error at every square corner
///    (`PT = (Side/step + 1)²` points),
/// 3. **add the new beacon at the point with the highest measured
///    localization error.**
///
/// "This algorithm is predicated on the assumption that points with high
/// localization error are spatially correlated... it may be overly
/// influenced by propagation effects or random noise that may cause very
/// high localization error at one point while the localization error at
/// points very close to it remains low; i.e., it is sensitive to local
/// maxima." Complexity `O(PT)`.
///
/// Steps 1–2 are the survey (`abp-survey`); this type implements Step 3.
/// Ties break toward the first point in row-major order, making the
/// algorithm fully deterministic. If every point is excluded from
/// measurement (possible only under `UnheardPolicy::Exclude` with an
/// unheard terrain) the algorithm falls back to the terrain center.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MaxPlacement {}

impl MaxPlacement {
    /// Creates the algorithm.
    pub fn new() -> Self {
        MaxPlacement {}
    }
}

impl PlacementAlgorithm for MaxPlacement {
    fn name(&self) -> &'static str {
        "max"
    }

    fn propose(&self, view: &SurveyView<'_>, _rng: &mut dyn RngCore) -> Point {
        let _span = abp_trace::span!("placement.max");
        crate::CANDIDATES_SCANNED.add(view.map.len() as u64);
        match view.map.max_error_point() {
            Some((ix, _)) => view.map.lattice().point(ix),
            None => view.map.lattice().terrain().center(),
        }
    }
}

impl fmt::Display for MaxPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Max placement (highest measured error)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_field::BeaconField;
    use abp_geom::{Lattice, Terrain};
    use abp_localize::UnheardPolicy;
    use abp_radio::IdealDisk;
    use abp_survey::ErrorMap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    #[test]
    fn picks_the_worst_point() {
        // One beacon at the origin, Origin unheard policy: the measured
        // error grows with distance from (0,0), so Max picks the far
        // corner.
        let lattice = Lattice::new(terrain(), 10.0);
        let field = BeaconField::from_positions(terrain(), [Point::new(0.0, 0.0)]);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::Origin);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let p = MaxPlacement::new().propose(&view, &mut StdRng::seed_from_u64(0));
        assert_eq!(p, Point::new(100.0, 100.0));
    }

    #[test]
    fn proposal_is_a_lattice_point() {
        let lattice = Lattice::new(terrain(), 7.0);
        let mut rng = StdRng::seed_from_u64(2);
        let field = BeaconField::random_uniform(30, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let p = MaxPlacement::new().propose(&view, &mut rng);
        let snapped = lattice.point(lattice.nearest(p));
        assert!(p.distance(snapped) < 1e-9, "{p} is not a lattice point");
    }

    #[test]
    fn deterministic_regardless_of_rng() {
        let lattice = Lattice::new(terrain(), 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let field = BeaconField::random_uniform(40, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let a = MaxPlacement::new().propose(&view, &mut StdRng::seed_from_u64(1));
        let b = MaxPlacement::new().propose(&view, &mut StdRng::seed_from_u64(999));
        assert_eq!(a, b);
    }

    #[test]
    fn all_excluded_falls_back_to_center() {
        let lattice = Lattice::new(terrain(), 10.0);
        let field = BeaconField::new(terrain());
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::Exclude);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let p = MaxPlacement::new().propose(&view, &mut StdRng::seed_from_u64(0));
        assert_eq!(p, Point::new(50.0, 50.0));
    }

    #[test]
    fn sensitive_to_single_loud_point() {
        // The documented weakness: one isolated very-bad point attracts
        // the beacon even if a broad region is moderately bad. Construct
        // it directly: a far-away lone spot (worst error ~ distance to the
        // policy estimate) vs a moderately-bad covered region.
        let lattice = Lattice::new(terrain(), 10.0);
        // Beacons cover everything except the far corner region.
        let field = BeaconField::from_positions(
            terrain(),
            (0..9).map(|k| Point::new(10.0 + (k % 3) as f64 * 30.0, 10.0 + (k / 3) as f64 * 30.0)),
        );
        let model = IdealDisk::new(25.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::Origin);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let p = MaxPlacement::new().propose(&view, &mut StdRng::seed_from_u64(0));
        // The pick chases the single worst measurement.
        let (worst_ix, _) = map.max_error_point().unwrap();
        assert_eq!(p, lattice.point(worst_ix));
    }
}
