//! Incremental candidate scoring for greedy multi-beacon placement.
//!
//! [`greedy_batch`](crate::greedy_batch) re-runs its placement algorithm
//! after every beacon it deploys. For the score-based algorithms that is
//! wasteful: a new beacon only changes the error map inside its own
//! reach (the [`SurveyDelta`] returned by
//! [`ErrorMap::add_beacon`]), yet the Grid algorithm re-sums all `NG`
//! grids and the Max algorithm rescans every lattice point each round.
//!
//! The scorers in this module cache the previous round's audibility-
//! derived scores and, on [`IncrementalScorer::apply_delta`], re-derive
//! only the candidates whose supporting region intersects the delta.
//! Everything else is reused verbatim, and the split is reported through
//! two counters: [`CANDIDATES_SCANNED`](crate::CANDIDATES_SCANNED)
//! (candidates re-scored this update) and
//! [`CELLS_PRUNED`](crate::CELLS_PRUNED) (candidates served from cache).
//!
//! # Determinism
//!
//! The cached scores are **bit-identical** to their brute-force
//! counterparts, not merely close:
//!
//! * [`IncrementalGrid`] caches exactly the per-lattice-row subtotals
//!   that [`ErrorMap::cumulative_error_in`] documents (left-to-right
//!   within a row via [`ErrorMap::row_error_sum`], rows added
//!   bottom-to-top), so a refreshed grid score reproduces
//!   [`GridPlacement::cumulative_errors`] bit for bit;
//! * [`IncrementalMax`] keeps one `(column, error)` maximum per lattice
//!   row under the same strict-`>` comparison
//!   [`ErrorMap::max_error_point`] uses, so the argmax (and its
//!   first-in-row-major tie-break) is reproduced exactly.
//!
//! Consequently [`greedy_batch_incremental`] places beacons at the
//! **same positions** as [`greedy_batch`](crate::greedy_batch) with the
//! corresponding brute-force algorithm — a property the test suite and
//! the `bench` CLI's identical-output check both assert.
//!
//! # Examples
//!
//! ```
//! use abp_field::BeaconField;
//! use abp_geom::{Lattice, Terrain};
//! use abp_localize::UnheardPolicy;
//! use abp_placement::{greedy_batch_incremental, GridPlacement, IncrementalGrid};
//! use abp_radio::IdealDisk;
//! use abp_survey::ErrorMap;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let terrain = Terrain::square(100.0);
//! let lattice = Lattice::new(terrain, 5.0);
//! let mut field =
//!     BeaconField::random_uniform(10, terrain, &mut StdRng::seed_from_u64(7));
//! let model = IdealDisk::new(15.0);
//! let mut map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
//! let before = map.mean_error();
//!
//! let algo = GridPlacement::paper(terrain, 15.0);
//! let mut scorer = IncrementalGrid::new(algo, &map);
//! let outcome = greedy_batch_incremental(&mut scorer, &mut map, &mut field, &model, 3);
//! assert_eq!(outcome.placed.len(), 3);
//! assert!(map.mean_error() < before);
//! ```

use crate::{GreedyBatchOutcome, GridPlacement};
use abp_field::BeaconField;
use abp_geom::{LatticeIndex, Point};
use abp_radio::Propagation;
use abp_survey::{ErrorMap, SurveyDelta};

/// A placement scorer that keeps per-candidate scores cached across
/// survey updates and refreshes only the region a [`SurveyDelta`]
/// touched.
///
/// Implementations must be *bit-identical* to the brute-force algorithm
/// they accelerate: after any sequence of [`apply_delta`] calls,
/// [`ranked`] must return exactly the positions the brute algorithm
/// would propose on the same map.
///
/// [`apply_delta`]: IncrementalScorer::apply_delta
/// [`ranked`]: IncrementalScorer::ranked
pub trait IncrementalScorer {
    /// Short identifier, e.g. `"grid-incremental"`.
    fn name(&self) -> &'static str;

    /// Refreshes the cached scores after `map` absorbed an incremental
    /// survey update that reported `delta`. The map must be the same
    /// one the scorer was built over, already updated.
    fn apply_delta(&mut self, map: &ErrorMap, delta: SurveyDelta);

    /// The top `k` candidate positions, best first, replicating the
    /// brute-force algorithm's ordering and tie-breaks exactly.
    fn ranked(&self, map: &ErrorMap, k: usize) -> Vec<Point>;
}

/// Incremental version of the paper's Grid algorithm
/// ([`GridPlacement`]).
///
/// Caches, for every (grid column band `i`, lattice row `j`) pair, the
/// row subtotal [`ErrorMap::row_error_sum`]`(j, i_lo, i_hi)` over the
/// band's lattice-column span, plus the resulting per-grid score. A
/// [`SurveyDelta`] invalidates only the bands whose column span
/// intersects the changed columns, and within them only the changed
/// rows; grids outside the delta keep their cached score untouched.
///
/// Per update this costs `O(bands_hit · rows_hit · span)` instead of
/// the brute `O(NG · PG)` full re-sum; the saving is reported via
/// [`CELLS_PRUNED`](crate::CELLS_PRUNED).
///
/// # Examples
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Lattice, Point, Terrain};
/// use abp_localize::UnheardPolicy;
/// use abp_placement::{GridPlacement, IncrementalGrid, IncrementalScorer};
/// use abp_radio::IdealDisk;
/// use abp_survey::ErrorMap;
///
/// let terrain = Terrain::square(100.0);
/// let lattice = Lattice::new(terrain, 5.0);
/// let mut field = BeaconField::from_positions(terrain, [Point::new(20.0, 20.0)]);
/// let model = IdealDisk::new(15.0);
/// let mut map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
///
/// let algo = GridPlacement::paper(terrain, 15.0);
/// let mut scorer = IncrementalGrid::new(algo, &map);
/// // The cached ranking equals the brute-force one...
/// assert_eq!(scorer.ranked(&map, 1), algo.propose_top_k(&map, 1));
/// // ...and stays equal across an incremental update.
/// let id = field.add_beacon(Point::new(70.0, 70.0));
/// let beacon = *field.get(id).unwrap();
/// let delta = map.add_beacon(&beacon, &model);
/// scorer.apply_delta(&map, delta);
/// assert_eq!(scorer.ranked(&map, 1), algo.propose_top_k(&map, 1));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalGrid {
    algo: GridPlacement,
    /// Lattice rows (`per_side` of the surveyed lattice).
    lattice_rows: usize,
    /// Per grid column band `i`: the inclusive lattice-column span the
    /// band's rectangles cover, or `None` when the band misses the
    /// lattice (its grids all score 0).
    col_spans: Vec<Option<(u32, u32)>>,
    /// Per grid row `j`: the inclusive lattice-row span.
    row_spans: Vec<Option<(u32, u32)>>,
    /// `row_sums[i * lattice_rows + j]` = subtotal of row `j` over band
    /// `i`'s column span (meaningful only where `col_spans[i]` is
    /// `Some`).
    row_sums: Vec<f64>,
    /// Cached grid scores, row-major (`flat = j * per_side + i`) — the
    /// same layout as [`GridPlacement::cumulative_errors`].
    scores: Vec<f64>,
}

impl IncrementalGrid {
    /// Builds the cache with a full scan of `map` (counted once against
    /// [`CANDIDATES_SCANNED`](crate::CANDIDATES_SCANNED)).
    pub fn new(algo: GridPlacement, map: &ErrorMap) -> Self {
        let n = algo.grids_per_side() as usize;
        let lattice = map.lattice();
        let lattice_rows = lattice.per_side() as usize;
        let col_spans: Vec<_> = (0..n)
            .map(|i| {
                let r = algo.grid_rect(i as u32, 0);
                lattice.index_span(r.min().x, r.max().x)
            })
            .collect();
        let row_spans: Vec<_> = (0..n)
            .map(|j| {
                let r = algo.grid_rect(0, j as u32);
                lattice.index_span(r.min().y, r.max().y)
            })
            .collect();
        let mut row_sums = vec![0.0; n * lattice_rows];
        for (i, span) in col_spans.iter().enumerate() {
            if let Some((i_lo, i_hi)) = *span {
                for j in 0..lattice_rows {
                    row_sums[i * lattice_rows + j] = map.row_error_sum(j as u32, i_lo, i_hi);
                }
            }
        }
        let mut scorer = IncrementalGrid {
            algo,
            lattice_rows,
            col_spans,
            row_spans,
            row_sums,
            scores: vec![0.0; n * n],
        };
        for j in 0..n {
            for i in 0..n {
                scorer.scores[j * n + i] = scorer.score_of(i, j);
            }
        }
        crate::CANDIDATES_SCANNED.add(algo.num_grids() as u64);
        scorer
    }

    /// The algorithm this scorer accelerates.
    #[inline]
    pub fn algorithm(&self) -> &GridPlacement {
        &self.algo
    }

    /// The cached per-grid scores, row-major — bit-identical to
    /// [`GridPlacement::cumulative_errors`] on the current map.
    #[inline]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Grid `(i, j)`'s score from the cached row subtotals, using the
    /// exact association [`ErrorMap::cumulative_error_in`] documents:
    /// row subtotals added bottom-to-top onto a `0.0` accumulator.
    fn score_of(&self, i: usize, j: usize) -> f64 {
        if self.col_spans[i].is_none() {
            return 0.0;
        }
        let Some((j_lo, j_hi)) = self.row_spans[j] else {
            return 0.0;
        };
        let mut total = 0.0;
        for lj in j_lo..=j_hi {
            total += self.row_sums[i * self.lattice_rows + lj as usize];
        }
        total
    }
}

impl IncrementalScorer for IncrementalGrid {
    fn name(&self) -> &'static str {
        "grid-incremental"
    }

    fn apply_delta(&mut self, map: &ErrorMap, delta: SurveyDelta) {
        let _span = abp_trace::span!("placement.grid_incremental");
        let num_grids = self.algo.num_grids() as u64;
        let Some((lo, hi)) = delta.changed else {
            crate::CELLS_PRUNED.add(num_grids);
            return;
        };
        let n = self.algo.grids_per_side() as usize;
        // Refresh the row subtotals of every band whose column span
        // intersects the changed columns, changed rows only.
        let mut band_hit = vec![false; n];
        for (i, hit) in band_hit.iter_mut().enumerate() {
            if let Some((i_lo, i_hi)) = self.col_spans[i] {
                if i_lo <= hi.i && lo.i <= i_hi {
                    *hit = true;
                    for j in lo.j..=hi.j {
                        self.row_sums[i * self.lattice_rows + j as usize] =
                            map.row_error_sum(j, i_lo, i_hi);
                    }
                }
            }
        }
        // Re-score only the grids in a hit band whose row span
        // intersects the changed rows; everything else keeps its cached
        // score.
        let mut rescored = 0u64;
        for j in 0..n {
            let rows_hit =
                self.row_spans[j].is_some_and(|(j_lo, j_hi)| j_lo <= hi.j && lo.j <= j_hi);
            if !rows_hit {
                continue;
            }
            for (i, hit) in band_hit.iter().enumerate() {
                if *hit {
                    self.scores[j * n + i] = self.score_of(i, j);
                    rescored += 1;
                }
            }
        }
        crate::CANDIDATES_SCANNED.add(rescored);
        crate::CELLS_PRUNED.add(num_grids - rescored);
    }

    fn ranked(&self, _map: &ErrorMap, k: usize) -> Vec<Point> {
        let k = k.clamp(1, self.algo.num_grids());
        let n = self.algo.grids_per_side() as usize;
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        // The exact comparator of `GridPlacement::propose_top_k`:
        // (-score, index), ties toward the first row-major grid.
        order.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .expect("cumulative errors are finite")
                .then(a.cmp(&b))
        });
        order[..k]
            .iter()
            .map(|&flat| self.algo.center((flat % n) as u32, (flat / n) as u32))
            .collect()
    }
}

/// Incremental version of the paper's Max algorithm
/// ([`MaxPlacement`](crate::MaxPlacement)).
///
/// Caches one `(column, error)` maximum per lattice row, maintained
/// under the same strict-`>` comparison as
/// [`ErrorMap::max_error_point`]; a [`SurveyDelta`] re-scans only the
/// changed rows. The global argmax is then the strict-`>` maximum over
/// the per-row maxima in ascending row order, which reproduces the
/// brute scan's first-in-row-major tie-break exactly.
#[derive(Debug, Clone)]
pub struct IncrementalMax {
    /// Per lattice row `j`: the best valid point `(i, error)`, or
    /// `None` when the whole row is excluded.
    row_best: Vec<Option<(u32, f64)>>,
}

impl IncrementalMax {
    /// Builds the cache with a full scan of `map` (counted once against
    /// [`CANDIDATES_SCANNED`](crate::CANDIDATES_SCANNED)).
    pub fn new(map: &ErrorMap) -> Self {
        let rows = map.lattice().per_side();
        let mut scorer = IncrementalMax {
            row_best: vec![None; rows as usize],
        };
        for j in 0..rows {
            scorer.rescan_row(map, j);
        }
        crate::CANDIDATES_SCANNED.add(map.len() as u64);
        scorer
    }

    fn rescan_row(&mut self, map: &ErrorMap, j: u32) {
        let mut best: Option<(u32, f64)> = None;
        for i in 0..map.lattice().per_side() {
            if let Some(e) = map.error_at(LatticeIndex { i, j }) {
                if best.map_or(true, |(_, be)| e > be) {
                    best = Some((i, e));
                }
            }
        }
        self.row_best[j as usize] = best;
    }

    /// The current argmax, or `None` when every point is excluded —
    /// equals [`ErrorMap::max_error_point`] on the current map.
    pub fn max_error_point(&self) -> Option<(LatticeIndex, f64)> {
        let mut best: Option<(LatticeIndex, f64)> = None;
        for (j, row) in self.row_best.iter().enumerate() {
            if let Some((i, e)) = *row {
                if best.map_or(true, |(_, be)| e > be) {
                    best = Some((LatticeIndex { i, j: j as u32 }, e));
                }
            }
        }
        best
    }
}

impl IncrementalScorer for IncrementalMax {
    fn name(&self) -> &'static str {
        "max-incremental"
    }

    fn apply_delta(&mut self, map: &ErrorMap, delta: SurveyDelta) {
        let _span = abp_trace::span!("placement.max_incremental");
        let total = map.len() as u64;
        let Some((lo, hi)) = delta.changed else {
            crate::CELLS_PRUNED.add(total);
            return;
        };
        let per_side = map.lattice().per_side() as u64;
        let mut rescanned = 0u64;
        for j in lo.j..=hi.j {
            self.rescan_row(map, j);
            rescanned += per_side;
        }
        crate::CANDIDATES_SCANNED.add(rescanned);
        crate::CELLS_PRUNED.add(total - rescanned);
    }

    fn ranked(&self, map: &ErrorMap, _k: usize) -> Vec<Point> {
        // Like `MaxPlacement::propose_ranked`: a single proposal (the
        // argmax), terrain center when every point is excluded.
        vec![match self.max_error_point() {
            Some((ix, _)) => map.lattice().point(ix),
            None => map.lattice().terrain().center(),
        }]
    }
}

/// [`greedy_batch`](crate::greedy_batch) driven by an
/// [`IncrementalScorer`] instead of a brute-force
/// [`PlacementAlgorithm`](crate::PlacementAlgorithm): propose from the
/// cached scores → deploy → incremental re-survey → refresh only the
/// delta region → repeat.
///
/// Places beacons at exactly the same positions as
/// [`greedy_batch`](crate::greedy_batch) with the corresponding brute
/// algorithm (scorers are bit-identical by contract), including the
/// occupied-candidate skip and its explicit duplicate fallback.
pub fn greedy_batch_incremental<S: IncrementalScorer + ?Sized>(
    scorer: &mut S,
    map: &mut ErrorMap,
    field: &mut BeaconField,
    model: &dyn Propagation,
    k: usize,
) -> GreedyBatchOutcome {
    let mut placed = Vec::with_capacity(k);
    let mut positions = Vec::with_capacity(k);
    let mut mean_after_each = Vec::with_capacity(k);
    let mut forced_duplicates = Vec::new();
    for round in 0..k {
        let candidates = scorer.ranked(map, field.len() + 1);
        let (pos, forced) = crate::batch::pick_unoccupied(&candidates, field);
        if forced {
            forced_duplicates.push(round);
        }
        let id = field.add_beacon(pos);
        let beacon = *field.get(id).expect("beacon just added");
        let delta = map.add_beacon(&beacon, model);
        scorer.apply_delta(map, delta);
        placed.push(id);
        positions.push(pos);
        mean_after_each.push(map.mean_error());
    }
    GreedyBatchOutcome {
        placed,
        positions,
        mean_after_each,
        forced_duplicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_batch, MaxPlacement};
    use abp_geom::{Lattice, Terrain};
    use abp_localize::UnheardPolicy;
    use abp_radio::{IdealDisk, PerBeaconNoise};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    fn setup(seed: u64, n: usize) -> (Lattice, BeaconField, IdealDisk, ErrorMap) {
        let lattice = Lattice::new(terrain(), 4.0);
        let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        (lattice, field, model, map)
    }

    fn assert_maps_bit_identical(a: &ErrorMap, b: &ErrorMap) {
        for ix in a.lattice().indices() {
            let ea = a.error_at(ix).map(f64::to_bits);
            let eb = b.error_at(ix).map(f64::to_bits);
            assert_eq!(ea, eb, "maps diverge at {ix:?}");
        }
    }

    #[test]
    fn grid_cache_matches_cumulative_errors_bitwise() {
        let (_, _, _, map) = setup(11, 25);
        let algo = GridPlacement::paper(terrain(), 15.0);
        let scorer = IncrementalGrid::new(algo, &map);
        let brute = algo.cumulative_errors(&map);
        for (flat, (inc, b)) in scorer.scores().iter().zip(&brute).enumerate() {
            assert_eq!(inc.to_bits(), b.to_bits(), "grid {flat} score diverges");
        }
    }

    #[test]
    fn grid_cache_stays_bitwise_after_add_and_kill() {
        let (_, mut field, model, mut map) = setup(12, 20);
        let algo = GridPlacement::paper(terrain(), 15.0);
        let mut scorer = IncrementalGrid::new(algo, &map);

        let id = field.add_beacon(Point::new(73.0, 31.0));
        let beacon = *field.get(id).unwrap();
        let delta = map.add_beacon(&beacon, &model);
        assert!(!delta.is_empty());
        scorer.apply_delta(&map, delta);
        let brute = algo.cumulative_errors(&map);
        for (inc, b) in scorer.scores().iter().zip(&brute) {
            assert_eq!(inc.to_bits(), b.to_bits());
        }

        let delta = map.kill_beacon(&beacon, &model);
        scorer.apply_delta(&map, delta);
        let brute = algo.cumulative_errors(&map);
        for (inc, b) in scorer.scores().iter().zip(&brute) {
            assert_eq!(inc.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn incremental_grid_greedy_equals_brute_greedy() {
        let algo = GridPlacement::paper(terrain(), 15.0);
        for seed in [2u64, 9, 33] {
            let (_, field, model, map) = setup(seed, 15);

            let mut bf = field.clone();
            let mut bm = map.clone();
            let brute = greedy_batch(
                &algo,
                &mut bm,
                &mut bf,
                &model,
                4,
                &mut StdRng::seed_from_u64(0),
            );

            let mut inf = field.clone();
            let mut inm = map.clone();
            let mut scorer = IncrementalGrid::new(algo, &inm);
            let inc = greedy_batch_incremental(&mut scorer, &mut inm, &mut inf, &model, 4);

            assert_eq!(brute.positions, inc.positions, "seed {seed}");
            assert_eq!(brute.placed, inc.placed);
            assert_eq!(brute.forced_duplicates, inc.forced_duplicates);
            for (a, b) in brute.mean_after_each.iter().zip(&inc.mean_after_each) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_maps_bit_identical(&bm, &inm);
        }
    }

    #[test]
    fn incremental_max_greedy_equals_brute_greedy() {
        for seed in [4u64, 17] {
            let (_, field, model, map) = setup(seed, 12);

            let mut bf = field.clone();
            let mut bm = map.clone();
            let brute = greedy_batch(
                &MaxPlacement::new(),
                &mut bm,
                &mut bf,
                &model,
                5,
                &mut StdRng::seed_from_u64(0),
            );

            let mut inf = field.clone();
            let mut inm = map.clone();
            let mut scorer = IncrementalMax::new(&inm);
            let inc = greedy_batch_incremental(&mut scorer, &mut inm, &mut inf, &model, 5);

            assert_eq!(brute.positions, inc.positions, "seed {seed}");
            assert_maps_bit_identical(&bm, &inm);
        }
    }

    #[test]
    fn incremental_max_tracks_argmax_under_noise_and_exclusion() {
        let lattice = Lattice::new(terrain(), 4.0);
        let field = BeaconField::random_uniform(10, terrain(), &mut StdRng::seed_from_u64(5));
        let model = PerBeaconNoise::new(15.0, 0.4, 99);
        let mut map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::Exclude);
        let mut scorer = IncrementalMax::new(&map);
        assert_eq!(scorer.max_error_point(), map.max_error_point());

        let mut field = field;
        let id = field.add_beacon(Point::new(50.0, 50.0));
        let beacon = *field.get(id).unwrap();
        let delta = map.add_beacon(&beacon, &model);
        scorer.apply_delta(&map, delta);
        assert_eq!(scorer.max_error_point(), map.max_error_point());
    }

    #[test]
    fn counters_prove_pruning() {
        abp_trace::set_enabled(true);
        let (_, mut field, model, mut map) = setup(6, 20);
        let algo = GridPlacement::paper(terrain(), 15.0);
        let mut scorer = IncrementalGrid::new(algo, &map);

        let scanned_before = crate::CANDIDATES_SCANNED.total();
        let pruned_before = crate::CELLS_PRUNED.total();

        let id = field.add_beacon(Point::new(25.0, 25.0));
        let beacon = *field.get(id).unwrap();
        let delta = map.add_beacon(&beacon, &model);
        scorer.apply_delta(&map, delta);

        let scanned = crate::CANDIDATES_SCANNED.total() - scanned_before;
        let pruned = crate::CELLS_PRUNED.total() - pruned_before;
        assert_eq!(
            scanned + pruned,
            algo.num_grids() as u64,
            "every grid is either rescored or pruned"
        );
        assert!(pruned > 0, "a local delta must prune some grids");
        assert!(scanned > 0, "a real delta must rescore some grids");
    }

    #[test]
    fn empty_delta_prunes_everything() {
        abp_trace::set_enabled(true);
        let (_, _, _, map) = setup(7, 8);
        let algo = GridPlacement::paper(terrain(), 15.0);
        let mut scorer = IncrementalGrid::new(algo, &map);
        let scanned_before = crate::CANDIDATES_SCANNED.total();
        let pruned_before = crate::CELLS_PRUNED.total();
        scorer.apply_delta(&map, SurveyDelta::EMPTY);
        assert_eq!(crate::CANDIDATES_SCANNED.total(), scanned_before);
        assert_eq!(
            crate::CELLS_PRUNED.total() - pruned_before,
            algo.num_grids() as u64
        );
    }

    #[test]
    fn zero_k_is_a_noop() {
        let (_, mut field, model, mut map) = setup(8, 10);
        let mut scorer = IncrementalMax::new(&map);
        let before = map.clone();
        let outcome = greedy_batch_incremental(&mut scorer, &mut map, &mut field, &model, 0);
        assert!(outcome.placed.is_empty());
        assert!(outcome.forced_duplicates.is_empty());
        assert_eq!(map, before);
    }
}
