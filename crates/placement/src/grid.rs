//! The Grid placement algorithm (paper §3.2.3).

use crate::{PlacementAlgorithm, SurveyView};
use abp_geom::{Point, Rect, Terrain};
use abp_survey::ErrorMap;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's Grid algorithm — "compute the cumulative localization error
/// over each grid, for several overlapping grids in the terrain... based
/// on the observation that adding a new beacon affects its nearby area,
/// not just the point where it is placed."
///
/// Steps (following §3.2.3 exactly):
///
/// 1–2. Survey the lattice (as Max) — done by `abp-survey`.
/// 3. Divide the terrain into `NG` partially overlapping grids: each grid
///    is a square of side `gridSide = 2R` (it "encloses the radio
///    reachability region of its center"); for `1 ≤ i, j ≤ √NG` the grid
///    centers are
///    `Xc(i,j) = gridSide/2 + (i−1)·(Side − gridSide)/(√NG − 1)` and
///    symmetrically for `Yc`.
/// 4. For each grid compute the cumulative localization error `S(i,j)`
///    over all measured points inside it.
/// 5. **Add the new beacon at the center of the grid with the maximum
///    cumulative error.**
///
/// "While the Grid algorithm has the advantage that it can improve many
/// points at once, it is computationally far more expensive than the Max
/// and Random algorithms." Complexity `O(NG · PG)` where `PG` is the
/// number of measured points per grid.
///
/// Ties break toward the first grid in row-major center order, making the
/// algorithm deterministic.
///
/// # Example
///
/// ```
/// use abp_geom::Terrain;
/// use abp_placement::GridPlacement;
///
/// // The paper's configuration: NG = 400 grids of side 2R = 30 m.
/// let grid = GridPlacement::paper(Terrain::square(100.0), 15.0);
/// assert_eq!(grid.grids_per_side(), 20);
/// assert_eq!(grid.grid_side(), 30.0);
/// let centers: Vec<_> = grid.centers().collect();
/// assert_eq!(centers.len(), 400);
/// // First and last centers per the paper's formula.
/// assert_eq!(centers[0], abp_geom::Point::new(15.0, 15.0));
/// assert_eq!(centers[399], abp_geom::Point::new(85.0, 85.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridPlacement {
    terrain: Terrain,
    grid_side: f64,
    per_side: u32,
}

/// The paper's number of overlapping grids (Table 1).
pub const PAPER_NUM_GRIDS: usize = 400;

impl GridPlacement {
    /// Creates the algorithm with `num_grids` overlapping grids of side
    /// `2 · nominal_range`.
    ///
    /// # Panics
    ///
    /// Panics if `num_grids` is not a positive perfect square, or
    /// `2 · nominal_range` exceeds the terrain side (the paper assumes
    /// `R < Side/2`), or `nominal_range` is not finite/positive.
    pub fn new(terrain: Terrain, nominal_range: f64, num_grids: usize) -> Self {
        assert!(
            nominal_range.is_finite() && nominal_range > 0.0,
            "nominal range must be finite and positive, got {nominal_range}"
        );
        let grid_side = 2.0 * nominal_range;
        assert!(
            grid_side <= terrain.side(),
            "grid side 2R = {grid_side} exceeds terrain side {}",
            terrain.side()
        );
        let per_side = (num_grids as f64).sqrt().round() as u32;
        assert!(
            per_side > 0 && (per_side as usize) * (per_side as usize) == num_grids,
            "number of grids must be a positive perfect square, got {num_grids}"
        );
        GridPlacement {
            terrain,
            grid_side,
            per_side,
        }
    }

    /// The paper's configuration: `NG = 400` grids (Table 1).
    pub fn paper(terrain: Terrain, nominal_range: f64) -> Self {
        GridPlacement::new(terrain, nominal_range, PAPER_NUM_GRIDS)
    }

    /// Grid side length, `2R`.
    #[inline]
    pub fn grid_side(&self) -> f64 {
        self.grid_side
    }

    /// Number of grids per axis, `√NG`.
    #[inline]
    pub fn grids_per_side(&self) -> u32 {
        self.per_side
    }

    /// Total number of grids, `NG`.
    #[inline]
    pub fn num_grids(&self) -> usize {
        (self.per_side as usize) * (self.per_side as usize)
    }

    /// The center of grid `(i, j)` (0-based; the paper's formula uses
    /// 1-based indices).
    pub fn center(&self, i: u32, j: u32) -> Point {
        debug_assert!(i < self.per_side && j < self.per_side);
        let half = self.grid_side * 0.5;
        if self.per_side == 1 {
            return self.terrain.center();
        }
        let stride = (self.terrain.side() - self.grid_side) / (self.per_side - 1) as f64;
        Point::new(half + i as f64 * stride, half + j as f64 * stride)
    }

    /// Iterates all grid centers in row-major order.
    pub fn centers(&self) -> impl Iterator<Item = Point> + '_ {
        let n = self.per_side;
        (0..n).flat_map(move |j| (0..n).map(move |i| self.center(i, j)))
    }

    /// The rectangle of grid `(i, j)`.
    pub fn grid_rect(&self, i: u32, j: u32) -> Rect {
        Rect::square_centered(self.center(i, j), self.grid_side)
    }

    /// Step 4: the cumulative error `S(i, j)` of every grid, row-major.
    pub fn cumulative_errors(&self, map: &ErrorMap) -> Vec<f64> {
        let n = self.per_side;
        let mut out = Vec::with_capacity(self.num_grids());
        for j in 0..n {
            for i in 0..n {
                out.push(map.cumulative_error_in(&self.grid_rect(i, j)));
            }
        }
        out
    }

    /// Steps 3–5 for the top `k` distinct grids: centers of the `k` grids
    /// with the highest cumulative error, best first. Used by the one-shot
    /// multi-beacon extension.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > NG`.
    pub fn propose_top_k(&self, map: &ErrorMap, k: usize) -> Vec<Point> {
        assert!(
            k >= 1 && k <= self.num_grids(),
            "k must be in 1..={}, got {k}",
            self.num_grids()
        );
        let _span = abp_trace::span!("placement.grid");
        crate::CANDIDATES_SCANNED.add(self.num_grids() as u64);
        let scores = self.cumulative_errors(map);
        let mut order: Vec<usize> = (0..scores.len()).collect();
        // Stable by construction: sort by (-score, index).
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .expect("cumulative errors are finite")
                .then(a.cmp(&b))
        });
        order[..k]
            .iter()
            .map(|&flat| {
                let i = (flat % self.per_side as usize) as u32;
                let j = (flat / self.per_side as usize) as u32;
                self.center(i, j)
            })
            .collect()
    }
}

impl PlacementAlgorithm for GridPlacement {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn propose(&self, view: &SurveyView<'_>, _rng: &mut dyn RngCore) -> Point {
        self.propose_top_k(view.map, 1)[0]
    }

    fn propose_ranked(
        &self,
        view: &SurveyView<'_>,
        k: usize,
        _rng: &mut dyn RngCore,
    ) -> Vec<Point> {
        self.propose_top_k(view.map, k.clamp(1, self.num_grids()))
    }
}

impl fmt::Display for GridPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Grid placement ({} grids of side {} m)",
            self.num_grids(),
            self.grid_side
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_field::BeaconField;
    use abp_geom::Lattice;
    use abp_localize::UnheardPolicy;
    use abp_radio::IdealDisk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    #[test]
    fn paper_centers_match_formula() {
        let g = GridPlacement::paper(terrain(), 15.0);
        // Xc(i) = 15 + (i-1) * 70/19 for 1-based i.
        let stride = 70.0 / 19.0;
        for i in 0..20u32 {
            let c = g.center(i, 0);
            assert!((c.x - (15.0 + i as f64 * stride)).abs() < 1e-12);
            assert!((c.y - 15.0).abs() < 1e-12);
        }
        // Grids hug the terrain: first rect starts at 0, last ends at 100.
        assert_eq!(g.grid_rect(0, 0).min(), Point::new(0.0, 0.0));
        assert_eq!(g.grid_rect(19, 19).max(), Point::new(100.0, 100.0));
    }

    #[test]
    fn single_grid_sits_at_center() {
        let g = GridPlacement::new(terrain(), 15.0, 1);
        assert_eq!(g.center(0, 0), Point::new(50.0, 50.0));
    }

    #[test]
    fn picks_grid_covering_the_coverage_hole() {
        // Beacons everywhere except the north-east quadrant: Grid must
        // propose a center in that quadrant.
        let lattice = Lattice::new(terrain(), 2.0);
        let mut positions = Vec::new();
        for j in 0..10 {
            for i in 0..10 {
                let p = Point::new(5.0 + i as f64 * 10.0, 5.0 + j as f64 * 10.0);
                if !(p.x > 50.0 && p.y > 50.0) {
                    positions.push(p);
                }
            }
        }
        let field = BeaconField::from_positions(terrain(), positions);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let g = GridPlacement::paper(terrain(), 15.0);
        let p = g.propose(&view, &mut StdRng::seed_from_u64(0));
        assert!(
            p.x > 50.0 && p.y > 50.0,
            "expected a NE-quadrant proposal, got {p}"
        );
    }

    #[test]
    fn cumulative_errors_agree_with_map() {
        let lattice = Lattice::new(terrain(), 5.0);
        let mut rng = StdRng::seed_from_u64(8);
        let field = BeaconField::random_uniform(40, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let g = GridPlacement::new(terrain(), 15.0, 16);
        let scores = g.cumulative_errors(&map);
        assert_eq!(scores.len(), 16);
        // Spot-check one grid against a manual sum.
        let manual = map.cumulative_error_in(&g.grid_rect(2, 1));
        assert_eq!(scores[6], manual);
    }

    #[test]
    fn top_k_is_sorted_and_distinct() {
        let lattice = Lattice::new(terrain(), 5.0);
        let mut rng = StdRng::seed_from_u64(21);
        let field = BeaconField::random_uniform(20, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let g = GridPlacement::paper(terrain(), 15.0);
        let top = g.propose_top_k(&map, 5);
        assert_eq!(top.len(), 5);
        // Distinct centers.
        for (a, b) in top.iter().zip(top.iter().skip(1)) {
            assert!(a.distance(*b) > 1e-9);
        }
        // Scores non-increasing.
        let score_of = |p: &Point| map.cumulative_error_in(&Rect::square_centered(*p, 30.0));
        for w in top.windows(2) {
            assert!(score_of(&w[0]) >= score_of(&w[1]) - 1e-9);
        }
        // k = 1 equals propose().
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        assert_eq!(
            g.propose(&view, &mut StdRng::seed_from_u64(0)),
            g.propose_top_k(&map, 1)[0]
        );
    }

    #[test]
    fn grid_improves_many_points_at_once() {
        // The documented contrast with Max: on a field with one large
        // uncovered region, placing at the Grid pick improves the mean
        // error more than placing at the Max pick.
        let lattice = Lattice::new(terrain(), 2.0);
        let field = BeaconField::from_positions(
            terrain(),
            [
                Point::new(20.0, 20.0),
                Point::new(20.0, 50.0),
                Point::new(20.0, 80.0),
                Point::new(50.0, 20.0),
                Point::new(80.0, 20.0),
            ],
        );
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let grid_pick = GridPlacement::paper(terrain(), 15.0).propose(&view, &mut rng);
        let max_pick = crate::MaxPlacement::new().propose(&view, &mut rng);

        let try_pick = |p: Point| {
            let mut f = field.clone();
            let id = f.add_beacon(p);
            let mut m = map.clone();
            m.add_beacon(f.get(id).unwrap(), &model);
            map.mean_error() - m.mean_error()
        };
        let grid_gain = try_pick(grid_pick);
        let max_gain = try_pick(max_pick);
        assert!(
            grid_gain >= max_gain,
            "grid gain {grid_gain} < max gain {max_gain}"
        );
        assert!(grid_gain > 0.0);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn rejects_non_square_grid_count() {
        let _ = GridPlacement::new(terrain(), 15.0, 10);
    }

    #[test]
    #[should_panic(expected = "exceeds terrain side")]
    fn rejects_oversized_grids() {
        let _ = GridPlacement::new(terrain(), 60.0, 4);
    }
}
