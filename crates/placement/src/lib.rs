//! Adaptive beacon placement — the paper's contribution (§3).
//!
//! *"Given an existing field of beacons, how should additional beacons be
//! placed for best advantage?"* The paper answers with three off-line
//! algorithms that differ in the amount of global knowledge and processing
//! they use:
//!
//! | Algorithm | Knowledge used | Complexity |
//! |-----------|----------------|------------|
//! | [`RandomPlacement`] | none | `O(1)` |
//! | [`MaxPlacement`] | per-point error measurements | `O(PT)` |
//! | [`GridPlacement`] | cumulative error over `NG` overlapping grids | `O(NG · PG)` |
//!
//! plus the extensions the paper sketches as future work (§6):
//!
//! * [`WeightedGridPlacement`] — Grid with distance-weighted cumulative
//!   error (an ablation of the paper's unweighted sum),
//! * [`batch`] — placing several beacons at once: one-shot top-*k* versus
//!   greedy re-measurement,
//! * [`LocusBreakPlacement`] — break the largest localization region
//!   (locus) with a new beacon,
//! * [`selfsched`] — the beacon-based alternative: densely deployed
//!   beacons decide themselves whether to be active or passive.
//!
//! Every algorithm consumes a [`SurveyView`] — the measurements a
//! GPS-equipped exploring agent can actually gather (see `abp-survey`) —
//! and proposes a point for the next beacon.
//!
//! # Example
//!
//! ```
//! use abp_field::BeaconField;
//! use abp_geom::{Lattice, Point, Terrain};
//! use abp_localize::UnheardPolicy;
//! use abp_placement::{GridPlacement, PlacementAlgorithm, SurveyView};
//! use abp_radio::IdealDisk;
//! use abp_survey::ErrorMap;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let terrain = Terrain::square(100.0);
//! let lattice = Lattice::new(terrain, 2.0);
//! let field = BeaconField::from_positions(terrain, [Point::new(20.0, 20.0)]);
//! let model = IdealDisk::new(15.0);
//! let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
//!
//! let view = SurveyView { map: &map, field: &field, model: &model };
//! let grid = GridPlacement::paper(terrain, 15.0);
//! let mut rng = StdRng::seed_from_u64(1);
//! let spot = grid.propose(&view, &mut rng);
//! assert!(terrain.contains(spot));
//! ```
//!
//! # Batch placement and the occupied-candidate rule
//!
//! [`greedy_batch`] places `k` beacons one round at a time: propose →
//! deploy → incremental re-survey → repeat. Each round picks the first
//! ranked candidate not already occupied by a deployed beacon via
//! [`pick_unoccupied`]; when *every* ranked candidate is occupied, the
//! top candidate is re-used anyway and the round index is recorded in
//! [`GreedyBatchOutcome::forced_duplicates`](batch::GreedyBatchOutcome::forced_duplicates).
//! A non-empty `forced_duplicates` means the algorithm ran out of
//! distinct proposals (typical for score-based algorithms whose argmax
//! region is dominated by unreachable points) — the fallback is always
//! explicit in the outcome, never silent.
//!
//! [`greedy_batch_incremental`] is the same loop with the per-round full
//! re-scan replaced by an [`IncrementalScorer`] that refreshes cached
//! scores from the survey delta; both variants share [`pick_unoccupied`],
//! so their placements are bit-identical. The mirror below spells the
//! incremental loop out round for round (this is also exactly how the
//! candidate-scan bench times the scan phase in isolation):
//!
//! ```
//! use abp_field::BeaconField;
//! use abp_geom::{Lattice, Point, Terrain};
//! use abp_localize::UnheardPolicy;
//! use abp_placement::{
//!     greedy_batch, pick_unoccupied, IncrementalMax, IncrementalScorer, MaxPlacement,
//! };
//! use abp_radio::IdealDisk;
//! use abp_survey::ErrorMap;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let terrain = Terrain::square(100.0);
//! let lattice = Lattice::new(terrain, 5.0);
//! let model = IdealDisk::new(15.0);
//! let base_field = BeaconField::from_positions(terrain, [Point::new(10.0, 10.0)]);
//! let base_map = ErrorMap::survey(&lattice, &base_field, &model, UnheardPolicy::TerrainCenter);
//!
//! // Reference: the brute-force greedy loop.
//! let (mut field, mut map) = (base_field.clone(), base_map.clone());
//! let reference = greedy_batch(
//!     &MaxPlacement::new(), &mut map, &mut field, &model, 3,
//!     &mut StdRng::seed_from_u64(0),
//! );
//!
//! // The incremental mirror: same rounds, same occupied-candidate rule,
//! // scores refreshed from survey deltas instead of re-scanned.
//! let (mut field, mut map) = (base_field, base_map);
//! let mut scorer = IncrementalMax::new(&map);
//! let mut positions = Vec::new();
//! for _ in 0..3 {
//!     let candidates = scorer.ranked(&map, field.len() + 1);
//!     let (pos, forced) = pick_unoccupied(&candidates, &field);
//!     assert!(!forced, "healthy run: no forced duplicates");
//!     let id = field.add_beacon(pos);
//!     let beacon = *field.get(id).expect("beacon just added");
//!     let delta = map.add_beacon(&beacon, &model);
//!     scorer.apply_delta(&map, delta);
//!     positions.push(pos);
//! }
//! assert_eq!(positions, reference.positions);
//! assert!(reference.forced_duplicates.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod grid;
pub mod incremental;
pub mod locusbreak;
pub mod max;
pub mod random;
pub mod selfsched;
pub mod weighted;

/// Telemetry: candidate positions a placement algorithm scored while
/// choosing where the next beacon goes (lattice points for Max, grid
/// cells for Grid/Weighted).
pub static CANDIDATES_SCANNED: abp_trace::Counter = abp_trace::Counter::new("candidates_scanned");

/// Telemetry: candidate positions an [`incremental`] scorer served from
/// its cache instead of re-scoring, because the survey delta did not
/// touch their supporting region. Together with [`CANDIDATES_SCANNED`]
/// this proves (and quantifies) the incremental pruning: per update,
/// `scanned + pruned` equals the full brute-force candidate count.
pub static CELLS_PRUNED: abp_trace::Counter = abp_trace::Counter::new("cells_pruned");

pub use batch::{greedy_batch, pick_unoccupied, GreedyBatchOutcome};
pub use grid::GridPlacement;
pub use incremental::{
    greedy_batch_incremental, IncrementalGrid, IncrementalMax, IncrementalScorer,
};
pub use locusbreak::LocusBreakPlacement;
pub use max::MaxPlacement;
pub use random::RandomPlacement;
pub use weighted::WeightedGridPlacement;

use abp_field::BeaconField;
use abp_geom::Point;
use abp_radio::Propagation;
use abp_survey::ErrorMap;
use rand::RngCore;

/// Everything an exploring agent has observed about the current
/// deployment: the measured error map, the beacon field it was measured
/// against, and the propagation model in effect.
///
/// Max and Grid consume only `map` (per-point localization errors, exactly
/// what the paper's robot measures). The extension algorithms additionally
/// use connectivity structure (`field` + `model`), which the same robot
/// observes for free while measuring.
#[derive(Clone, Copy)]
pub struct SurveyView<'a> {
    /// The measured localization-error map.
    pub map: &'a ErrorMap,
    /// The beacon field the map was surveyed against.
    pub field: &'a BeaconField,
    /// The propagation model in effect.
    pub model: &'a dyn Propagation,
}

impl std::fmt::Debug for SurveyView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SurveyView")
            .field("beacons", &self.field.len())
            .field("lattice_points", &self.map.len())
            .finish()
    }
}

/// A beacon placement algorithm: proposes where the next beacon should go.
///
/// Implementations must return a point inside the survey terrain.
/// Deterministic algorithms (Max, Grid) ignore `rng`; Random draws from
/// it. The trait is object-safe so experiments can sweep algorithm sets.
pub trait PlacementAlgorithm: Send + Sync {
    /// A short stable name for reports ("random", "max", "grid", …).
    fn name(&self) -> &'static str;

    /// Proposes the candidate point for one additional beacon.
    fn propose(&self, view: &SurveyView<'_>, rng: &mut dyn RngCore) -> Point;

    /// Proposes up to `k` candidate points, best first. The first entry
    /// must equal what [`PlacementAlgorithm::propose`] would return.
    ///
    /// The default returns the single best candidate; algorithms with a
    /// natural ranking (Grid's scored grids) override this so multi-beacon
    /// deployment ([`greedy_batch`]) can skip candidates that would
    /// duplicate an existing beacon.
    fn propose_ranked(&self, view: &SurveyView<'_>, k: usize, rng: &mut dyn RngCore) -> Vec<Point> {
        let _ = k;
        vec![self.propose(view, rng)]
    }
}

impl<A: PlacementAlgorithm + ?Sized> PlacementAlgorithm for &A {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn propose(&self, view: &SurveyView<'_>, rng: &mut dyn RngCore) -> Point {
        (**self).propose(view, rng)
    }
    fn propose_ranked(&self, view: &SurveyView<'_>, k: usize, rng: &mut dyn RngCore) -> Vec<Point> {
        (**self).propose_ranked(view, k, rng)
    }
}

impl<A: PlacementAlgorithm + ?Sized> PlacementAlgorithm for Box<A> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn propose(&self, view: &SurveyView<'_>, rng: &mut dyn RngCore) -> Point {
        (**self).propose(view, rng)
    }
    fn propose_ranked(&self, view: &SurveyView<'_>, k: usize, rng: &mut dyn RngCore) -> Vec<Point> {
        (**self).propose_ranked(view, k, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::{Lattice, Terrain};
    use abp_localize::UnheardPolicy;
    use abp_radio::IdealDisk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn algorithms_are_object_safe_and_stay_in_terrain() {
        let terrain = Terrain::square(100.0);
        let lattice = Lattice::new(terrain, 5.0);
        let field = BeaconField::from_positions(terrain, [Point::new(10.0, 10.0)]);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let algorithms: Vec<Box<dyn PlacementAlgorithm>> = vec![
            Box::new(RandomPlacement::new(terrain)),
            Box::new(MaxPlacement::new()),
            Box::new(GridPlacement::paper(terrain, 15.0)),
            Box::new(WeightedGridPlacement::paper(terrain, 15.0)),
            Box::new(LocusBreakPlacement::new()),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        for algo in &algorithms {
            let p = algo.propose(&view, &mut rng);
            assert!(terrain.contains(p), "{} left the terrain: {p}", algo.name());
            assert!(!algo.name().is_empty());
        }
    }
}
