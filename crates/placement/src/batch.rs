//! Multi-beacon placement (paper §6).
//!
//! "We also plan to evaluate the algorithms with respect to the gains
//! obtained when several beacons are added at once (instead of just one
//! beacon)." Two strategies are provided:
//!
//! * **one-shot top-k** — rank candidates from a single survey
//!   ([`GridPlacement::propose_top_k`](crate::GridPlacement::propose_top_k));
//!   cheap (one survey) but the k-th beacon cannot account for the first
//!   k−1;
//! * **greedy with re-measurement** ([`greedy_batch`]) — after each
//!   placement, incrementally re-survey and re-run the algorithm; costs k
//!   incremental updates but each beacon reacts to the previous ones.
//!
//! The `multi_beacon` bench compares the two.

use crate::{PlacementAlgorithm, SurveyView};
use abp_field::{BeaconField, BeaconId};
use abp_geom::Point;
use abp_radio::Propagation;
use abp_survey::ErrorMap;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Result of a greedy multi-beacon placement run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GreedyBatchOutcome {
    /// Ids of the beacons that were added, in placement order.
    pub placed: Vec<BeaconId>,
    /// The proposed positions, in placement order.
    pub positions: Vec<Point>,
    /// Mean error after each placement (length k), starting from the first
    /// added beacon.
    pub mean_after_each: Vec<f64>,
    /// Rounds (0-based) in which **every** ranked candidate coincided with
    /// an already-deployed beacon and the top candidate was re-used
    /// anyway. Empty in healthy runs; a non-empty list means the
    /// algorithm ran out of distinct proposals and the corresponding
    /// beacons stack on occupied spots.
    pub forced_duplicates: Vec<usize>,
}

/// Candidates closer than this to a deployed beacon count as occupied.
pub(crate) const DUPLICATE_EPS: f64 = 1e-9;

/// Picks the first candidate not occupied by a deployed beacon, or —
/// explicitly, as a last resort — the top candidate when every proposal
/// is occupied. Returns `(position, forced_duplicate)`.
///
/// This is the deployment step [`greedy_batch`] and
/// [`greedy_batch_incremental`](crate::greedy_batch_incremental) share;
/// it is public so harnesses (the candidate-scan bench) can mirror the
/// greedy loop exactly while timing only the scan phase.
///
/// # Panics
///
/// Panics if `candidates` is empty: every [`PlacementAlgorithm`] is
/// required to propose at least one position.
pub fn pick_unoccupied(candidates: &[Point], field: &BeaconField) -> (Point, bool) {
    let occupied = |c: &Point| {
        field
            .nearest_distance(*c)
            .is_some_and(|d| d <= DUPLICATE_EPS)
    };
    match candidates.iter().find(|c| !occupied(c)) {
        Some(&p) => (p, false),
        None => {
            let &top = candidates
                .first()
                .expect("placement algorithm proposed no candidates");
            (top, true)
        }
    }
}

/// Greedily places `k` beacons: propose → deploy → incremental re-survey →
/// repeat. The map and field are updated in place; the model must be the
/// one the map was surveyed under.
///
/// Candidates that coincide with an already-deployed beacon are skipped
/// (via [`PlacementAlgorithm::propose_ranked`]): with score-based
/// algorithms like Grid, a region whose residual error is dominated by
/// *unreachable* points (e.g. terrain corners beyond any grid center's
/// range) can stay the argmax forever, and naive repetition would stack
/// useless duplicates on the same spot. When every ranked candidate is
/// occupied the top candidate is re-used and the round is recorded in
/// [`GreedyBatchOutcome::forced_duplicates`] — the fallback is explicit
/// in the outcome, never silent.
///
/// Returns the placement trace. With `k = 0` nothing changes.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Lattice, Point, Terrain};
/// use abp_localize::UnheardPolicy;
/// use abp_placement::{greedy_batch, GridPlacement};
/// use abp_radio::IdealDisk;
/// use abp_survey::ErrorMap;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let terrain = Terrain::square(100.0);
/// let lattice = Lattice::new(terrain, 5.0);
/// let mut field = BeaconField::from_positions(terrain, [Point::new(10.0, 10.0)]);
/// let model = IdealDisk::new(15.0);
/// let mut map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
/// let before = map.mean_error();
///
/// let algo = GridPlacement::paper(terrain, 15.0);
/// let mut rng = StdRng::seed_from_u64(3);
/// let outcome = greedy_batch(&algo, &mut map, &mut field, &model, 3, &mut rng);
/// assert_eq!(outcome.placed.len(), 3);
/// assert!(map.mean_error() < before);
/// ```
pub fn greedy_batch<A: PlacementAlgorithm + ?Sized>(
    algorithm: &A,
    map: &mut ErrorMap,
    field: &mut BeaconField,
    model: &dyn Propagation,
    k: usize,
    rng: &mut dyn RngCore,
) -> GreedyBatchOutcome {
    let mut placed = Vec::with_capacity(k);
    let mut positions = Vec::with_capacity(k);
    let mut mean_after_each = Vec::with_capacity(k);
    let mut forced_duplicates = Vec::new();
    for round in 0..k {
        let (pos, forced) = {
            let view = SurveyView { map, field, model };
            // Ask for enough alternatives to step past every occupied
            // candidate in the worst case.
            let candidates = algorithm.propose_ranked(&view, field.len() + 1, rng);
            pick_unoccupied(&candidates, field)
        };
        if forced {
            forced_duplicates.push(round);
        }
        let id = field.add_beacon(pos);
        let beacon = *field.get(id).expect("beacon just added");
        map.add_beacon(&beacon, model);
        placed.push(id);
        positions.push(pos);
        mean_after_each.push(map.mean_error());
    }
    GreedyBatchOutcome {
        placed,
        positions,
        mean_after_each,
        forced_duplicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridPlacement, MaxPlacement, RandomPlacement};
    use abp_geom::{Lattice, Terrain};
    use abp_localize::UnheardPolicy;
    use abp_radio::IdealDisk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    fn setup(seed: u64, n: usize) -> (Lattice, BeaconField, IdealDisk, ErrorMap) {
        let lattice = Lattice::new(terrain(), 4.0);
        let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        (lattice, field, model, map)
    }

    #[test]
    fn zero_k_is_a_noop() {
        let (_, mut field, model, mut map) = setup(1, 20);
        let before = map.clone();
        let n = field.len();
        let outcome = greedy_batch(
            &MaxPlacement::new(),
            &mut map,
            &mut field,
            &model,
            0,
            &mut StdRng::seed_from_u64(0),
        );
        assert!(outcome.placed.is_empty());
        assert_eq!(field.len(), n);
        assert_eq!(map, before);
    }

    #[test]
    fn places_k_beacons_and_updates_map() {
        let (lattice, mut field, model, mut map) = setup(2, 15);
        let outcome = greedy_batch(
            &GridPlacement::paper(terrain(), 15.0),
            &mut map,
            &mut field,
            &model,
            4,
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(outcome.placed.len(), 4);
        assert_eq!(field.len(), 19);
        // The in-place map equals a fresh survey of the extended field.
        let fresh = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        for ix in lattice.indices() {
            assert!((map.error_at(ix).unwrap() - fresh.error_at(ix).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn mean_error_is_monotone_under_greedy_grid() {
        let (_, mut field, model, mut map) = setup(3, 10);
        let before = map.mean_error();
        let outcome = greedy_batch(
            &GridPlacement::paper(terrain(), 15.0),
            &mut map,
            &mut field,
            &model,
            5,
            &mut StdRng::seed_from_u64(0),
        );
        // Near-monotone: each placement targets the worst region, but a
        // new beacon may slightly perturb nearby estimates.
        let mut prev = before;
        for &m in &outcome.mean_after_each {
            assert!(m <= prev + 0.25, "mean error rose: {prev} -> {m}");
            prev = m;
        }
        assert!(*outcome.mean_after_each.last().unwrap() < before);
    }

    #[test]
    fn greedy_grid_spreads_beacons_apart() {
        // With re-measurement, consecutive Grid picks avoid piling onto
        // the same spot.
        let (_, mut field, model, mut map) = setup(4, 5);
        let outcome = greedy_batch(
            &GridPlacement::paper(terrain(), 15.0),
            &mut map,
            &mut field,
            &model,
            3,
            &mut StdRng::seed_from_u64(0),
        );
        for (a, pa) in outcome.positions.iter().enumerate() {
            for pb in &outcome.positions[a + 1..] {
                assert!(
                    pa.distance(*pb) > 5.0,
                    "greedy picks {pa} and {pb} collapsed"
                );
            }
        }
    }

    #[test]
    fn greedy_beats_oneshot_topk_for_grid() {
        // The experiment the paper proposes: greedy re-measurement should
        // match or beat one-shot top-k (averaged over seeds).
        let model = IdealDisk::new(15.0);
        let lattice = Lattice::new(terrain(), 4.0);
        let algo = GridPlacement::paper(terrain(), 15.0);
        let k = 4;
        let mut greedy_total = 0.0;
        let mut oneshot_total = 0.0;
        for seed in 0..8 {
            let base = BeaconField::random_uniform(20, terrain(), &mut StdRng::seed_from_u64(seed));
            let base_map = ErrorMap::survey(&lattice, &base, &model, UnheardPolicy::TerrainCenter);
            let before = base_map.mean_error();

            let mut gf = base.clone();
            let mut gm = base_map.clone();
            greedy_batch(
                &algo,
                &mut gm,
                &mut gf,
                &model,
                k,
                &mut StdRng::seed_from_u64(0),
            );
            greedy_total += before - gm.mean_error();

            let mut of = base.clone();
            let mut om = base_map.clone();
            for p in algo.propose_top_k(&base_map, k) {
                let id = of.add_beacon(p);
                om.add_beacon(of.get(id).unwrap(), &model);
            }
            oneshot_total += before - om.mean_error();
        }
        assert!(
            greedy_total >= oneshot_total * 0.95,
            "greedy ({greedy_total}) should not lose to one-shot ({oneshot_total})"
        );
    }

    #[test]
    fn healthy_runs_record_no_forced_duplicates() {
        let (_, mut field, model, mut map) = setup(6, 15);
        let outcome = greedy_batch(
            &GridPlacement::paper(terrain(), 15.0),
            &mut map,
            &mut field,
            &model,
            4,
            &mut StdRng::seed_from_u64(0),
        );
        assert!(outcome.forced_duplicates.is_empty());
    }

    /// An adversarial algorithm that always proposes the same point, no
    /// matter how many alternatives are requested.
    struct StuckAlgorithm(Point);

    impl PlacementAlgorithm for StuckAlgorithm {
        fn name(&self) -> &'static str {
            "stuck"
        }

        fn propose(&self, _view: &SurveyView<'_>, _rng: &mut dyn RngCore) -> Point {
            self.0
        }

        fn propose_ranked(
            &self,
            _view: &SurveyView<'_>,
            _k: usize,
            _rng: &mut dyn RngCore,
        ) -> Vec<Point> {
            vec![self.0]
        }
    }

    #[test]
    fn exhausted_candidates_fall_back_explicitly() {
        // The spot is already occupied, so every round is forced onto it
        // — and each forced round is recorded, not silently swallowed.
        let spot = Point::new(50.0, 50.0);
        let lattice = Lattice::new(terrain(), 4.0);
        let mut field = BeaconField::from_positions(terrain(), [spot]);
        let model = IdealDisk::new(15.0);
        let mut map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let outcome = greedy_batch(
            &StuckAlgorithm(spot),
            &mut map,
            &mut field,
            &model,
            3,
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(outcome.positions, vec![spot; 3]);
        assert_eq!(outcome.forced_duplicates, vec![0, 1, 2]);
    }

    #[test]
    fn unoccupied_candidate_is_never_a_forced_duplicate() {
        let spot = Point::new(50.0, 50.0);
        let free = Point::new(20.0, 20.0);
        let field = BeaconField::from_positions(terrain(), [spot]);
        // First candidate occupied, second free: the pick steps past the
        // occupied one and nothing is forced.
        let (pos, forced) = pick_unoccupied(&[spot, free], &field);
        assert_eq!(pos, free);
        assert!(!forced);
        // Only occupied candidates: explicit forced fallback to the top.
        let (pos, forced) = pick_unoccupied(&[spot], &field);
        assert_eq!(pos, spot);
        assert!(forced);
    }

    #[test]
    #[should_panic(expected = "proposed no candidates")]
    fn empty_candidate_list_panics_loudly() {
        let field = BeaconField::new(terrain());
        let _ = pick_unoccupied(&[], &field);
    }

    #[test]
    fn works_with_random_algorithm_too() {
        let (_, mut field, model, mut map) = setup(5, 10);
        let outcome = greedy_batch(
            &RandomPlacement::new(terrain()),
            &mut map,
            &mut field,
            &model,
            3,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(outcome.placed.len(), 3);
        for p in &outcome.positions {
            assert!(terrain().contains(*p));
        }
    }
}
