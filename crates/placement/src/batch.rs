//! Multi-beacon placement (paper §6).
//!
//! "We also plan to evaluate the algorithms with respect to the gains
//! obtained when several beacons are added at once (instead of just one
//! beacon)." Two strategies are provided:
//!
//! * **one-shot top-k** — rank candidates from a single survey
//!   ([`GridPlacement::propose_top_k`](crate::GridPlacement::propose_top_k));
//!   cheap (one survey) but the k-th beacon cannot account for the first
//!   k−1;
//! * **greedy with re-measurement** ([`greedy_batch`]) — after each
//!   placement, incrementally re-survey and re-run the algorithm; costs k
//!   incremental updates but each beacon reacts to the previous ones.
//!
//! The `multi_beacon` bench compares the two.

use crate::{PlacementAlgorithm, SurveyView};
use abp_field::{BeaconField, BeaconId};
use abp_geom::Point;
use abp_radio::Propagation;
use abp_survey::ErrorMap;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Result of a greedy multi-beacon placement run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GreedyBatchOutcome {
    /// Ids of the beacons that were added, in placement order.
    pub placed: Vec<BeaconId>,
    /// The proposed positions, in placement order.
    pub positions: Vec<Point>,
    /// Mean error after each placement (length k), starting from the first
    /// added beacon.
    pub mean_after_each: Vec<f64>,
}

/// Greedily places `k` beacons: propose → deploy → incremental re-survey →
/// repeat. The map and field are updated in place; the model must be the
/// one the map was surveyed under.
///
/// Candidates that coincide with an already-deployed beacon are skipped
/// (via [`PlacementAlgorithm::propose_ranked`]): with score-based
/// algorithms like Grid, a region whose residual error is dominated by
/// *unreachable* points (e.g. terrain corners beyond any grid center's
/// range) can stay the argmax forever, and naive repetition would stack
/// useless duplicates on the same spot.
///
/// Returns the placement trace. With `k = 0` nothing changes.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Lattice, Point, Terrain};
/// use abp_localize::UnheardPolicy;
/// use abp_placement::{greedy_batch, GridPlacement};
/// use abp_radio::IdealDisk;
/// use abp_survey::ErrorMap;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let terrain = Terrain::square(100.0);
/// let lattice = Lattice::new(terrain, 5.0);
/// let mut field = BeaconField::from_positions(terrain, [Point::new(10.0, 10.0)]);
/// let model = IdealDisk::new(15.0);
/// let mut map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
/// let before = map.mean_error();
///
/// let algo = GridPlacement::paper(terrain, 15.0);
/// let mut rng = StdRng::seed_from_u64(3);
/// let outcome = greedy_batch(&algo, &mut map, &mut field, &model, 3, &mut rng);
/// assert_eq!(outcome.placed.len(), 3);
/// assert!(map.mean_error() < before);
/// ```
pub fn greedy_batch<A: PlacementAlgorithm + ?Sized>(
    algorithm: &A,
    map: &mut ErrorMap,
    field: &mut BeaconField,
    model: &dyn Propagation,
    k: usize,
    rng: &mut dyn RngCore,
) -> GreedyBatchOutcome {
    const DUPLICATE_EPS: f64 = 1e-9;
    let mut placed = Vec::with_capacity(k);
    let mut positions = Vec::with_capacity(k);
    let mut mean_after_each = Vec::with_capacity(k);
    for _ in 0..k {
        let pos = {
            let view = SurveyView { map, field, model };
            // Ask for enough alternatives to step past every occupied
            // candidate in the worst case.
            let candidates = algorithm.propose_ranked(&view, field.len() + 1, rng);
            candidates
                .iter()
                .copied()
                .find(|c| {
                    field
                        .nearest_distance(*c)
                        .map_or(true, |d| d > DUPLICATE_EPS)
                })
                .unwrap_or(candidates[0])
        };
        let id = field.add_beacon(pos);
        let beacon = *field.get(id).expect("beacon just added");
        map.add_beacon(&beacon, model);
        placed.push(id);
        positions.push(pos);
        mean_after_each.push(map.mean_error());
    }
    GreedyBatchOutcome {
        placed,
        positions,
        mean_after_each,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridPlacement, MaxPlacement, RandomPlacement};
    use abp_geom::{Lattice, Terrain};
    use abp_localize::UnheardPolicy;
    use abp_radio::IdealDisk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    fn setup(seed: u64, n: usize) -> (Lattice, BeaconField, IdealDisk, ErrorMap) {
        let lattice = Lattice::new(terrain(), 4.0);
        let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        (lattice, field, model, map)
    }

    #[test]
    fn zero_k_is_a_noop() {
        let (_, mut field, model, mut map) = setup(1, 20);
        let before = map.clone();
        let n = field.len();
        let outcome = greedy_batch(
            &MaxPlacement::new(),
            &mut map,
            &mut field,
            &model,
            0,
            &mut StdRng::seed_from_u64(0),
        );
        assert!(outcome.placed.is_empty());
        assert_eq!(field.len(), n);
        assert_eq!(map, before);
    }

    #[test]
    fn places_k_beacons_and_updates_map() {
        let (lattice, mut field, model, mut map) = setup(2, 15);
        let outcome = greedy_batch(
            &GridPlacement::paper(terrain(), 15.0),
            &mut map,
            &mut field,
            &model,
            4,
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(outcome.placed.len(), 4);
        assert_eq!(field.len(), 19);
        // The in-place map equals a fresh survey of the extended field.
        let fresh = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        for ix in lattice.indices() {
            assert!((map.error_at(ix).unwrap() - fresh.error_at(ix).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn mean_error_is_monotone_under_greedy_grid() {
        let (_, mut field, model, mut map) = setup(3, 10);
        let before = map.mean_error();
        let outcome = greedy_batch(
            &GridPlacement::paper(terrain(), 15.0),
            &mut map,
            &mut field,
            &model,
            5,
            &mut StdRng::seed_from_u64(0),
        );
        // Near-monotone: each placement targets the worst region, but a
        // new beacon may slightly perturb nearby estimates.
        let mut prev = before;
        for &m in &outcome.mean_after_each {
            assert!(m <= prev + 0.25, "mean error rose: {prev} -> {m}");
            prev = m;
        }
        assert!(*outcome.mean_after_each.last().unwrap() < before);
    }

    #[test]
    fn greedy_grid_spreads_beacons_apart() {
        // With re-measurement, consecutive Grid picks avoid piling onto
        // the same spot.
        let (_, mut field, model, mut map) = setup(4, 5);
        let outcome = greedy_batch(
            &GridPlacement::paper(terrain(), 15.0),
            &mut map,
            &mut field,
            &model,
            3,
            &mut StdRng::seed_from_u64(0),
        );
        for (a, pa) in outcome.positions.iter().enumerate() {
            for pb in &outcome.positions[a + 1..] {
                assert!(
                    pa.distance(*pb) > 5.0,
                    "greedy picks {pa} and {pb} collapsed"
                );
            }
        }
    }

    #[test]
    fn greedy_beats_oneshot_topk_for_grid() {
        // The experiment the paper proposes: greedy re-measurement should
        // match or beat one-shot top-k (averaged over seeds).
        let model = IdealDisk::new(15.0);
        let lattice = Lattice::new(terrain(), 4.0);
        let algo = GridPlacement::paper(terrain(), 15.0);
        let k = 4;
        let mut greedy_total = 0.0;
        let mut oneshot_total = 0.0;
        for seed in 0..8 {
            let base = BeaconField::random_uniform(20, terrain(), &mut StdRng::seed_from_u64(seed));
            let base_map = ErrorMap::survey(&lattice, &base, &model, UnheardPolicy::TerrainCenter);
            let before = base_map.mean_error();

            let mut gf = base.clone();
            let mut gm = base_map.clone();
            greedy_batch(
                &algo,
                &mut gm,
                &mut gf,
                &model,
                k,
                &mut StdRng::seed_from_u64(0),
            );
            greedy_total += before - gm.mean_error();

            let mut of = base.clone();
            let mut om = base_map.clone();
            for p in algo.propose_top_k(&base_map, k) {
                let id = of.add_beacon(p);
                om.add_beacon(of.get(id).unwrap(), &model);
            }
            oneshot_total += before - om.mean_error();
        }
        assert!(
            greedy_total >= oneshot_total * 0.95,
            "greedy ({greedy_total}) should not lose to one-shot ({oneshot_total})"
        );
    }

    #[test]
    fn works_with_random_algorithm_too() {
        let (_, mut field, model, mut map) = setup(5, 10);
        let outcome = greedy_batch(
            &RandomPlacement::new(terrain()),
            &mut map,
            &mut field,
            &model,
            3,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(outcome.placed.len(), 3);
        for p in &outcome.positions {
            assert!(terrain().contains(*p));
        }
    }
}
