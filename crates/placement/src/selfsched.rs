//! Beacon self-scheduling (paper §6).
//!
//! "An alternative approach, which we plan to explore is beacon based;
//! wherein, a reasonably dense beacon deployment is assumed, and the
//! beacon nodes themselves instrument the terrain conditions based on
//! interactions with other (beacon) nodes, and decide whether to turn
//! themselves on i.e., be active or be passive."
//!
//! [`self_schedule`] implements that idea in the spirit of AFECA (the
//! paper's reference \[19\], which "exploits node deployment density ...
//! scaling back node duty cycles when many interchangeable nodes are
//! present"): each beacon counts the *active* beacons it can hear; where
//! that count exceeds a redundancy target, beacons turn passive — greedily,
//! most-redundant first, and only when doing so strands no neighbor below
//! the target. The decision uses only beacon-to-beacon connectivity, i.e.
//! information the beacons gather themselves, with no terrain survey.

use abp_field::{BeaconField, BeaconId};
use abp_radio::Propagation;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The outcome of a self-scheduling round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Beacons that stay active, in insertion order.
    pub active: Vec<BeaconId>,
    /// Beacons that turned passive, in deactivation order.
    pub passive: Vec<BeaconId>,
}

impl Schedule {
    /// Fraction of beacons still active (1.0 for an empty field).
    pub fn duty_cycle(&self) -> f64 {
        let total = self.active.len() + self.passive.len();
        if total == 0 {
            1.0
        } else {
            self.active.len() as f64 / total as f64
        }
    }
}

/// Computes which beacons stay active so every remaining active beacon
/// hears at most `target_neighbors` other active beacons — unless turning
/// one off would strand a neighbor below `min_neighbors`.
///
/// Deterministic: candidates are processed most-redundant first, ties by
/// id. Beacons hearing `<= target_neighbors` active peers never turn off,
/// so sparse deployments are left untouched.
///
/// # Panics
///
/// Panics if `min_neighbors > target_neighbors`.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Point, Terrain};
/// use abp_placement::selfsched::self_schedule;
/// use abp_radio::IdealDisk;
///
/// // A dense clump: redundancy gets pruned.
/// let field = BeaconField::from_positions(
///     Terrain::square(100.0),
///     (0..9).map(|k| Point::new(50.0 + (k % 3) as f64, 50.0 + (k / 3) as f64)),
/// );
/// let schedule = self_schedule(&field, &IdealDisk::new(15.0), 3, 1);
/// assert!(schedule.duty_cycle() < 1.0);
/// assert!(!schedule.active.is_empty());
/// ```
pub fn self_schedule(
    field: &BeaconField,
    model: &dyn Propagation,
    target_neighbors: usize,
    min_neighbors: usize,
) -> Schedule {
    assert!(
        min_neighbors <= target_neighbors,
        "min_neighbors {min_neighbors} exceeds target_neighbors {target_neighbors}"
    );
    let beacons = field.beacons();
    let n = beacons.len();
    // Symmetric audibility graph: j hears i iff i's transmission reaches j.
    // (With per-beacon noise this is asymmetric; treat "i or j hears the
    // other" as adjacency, the conservative choice for coverage.)
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            let ij = model.connected(beacons[i].tx(), beacons[i].pos(), beacons[j].pos());
            let ji = model.connected(beacons[j].tx(), beacons[j].pos(), beacons[i].pos());
            if ij || ji {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut passive = Vec::new();
    loop {
        // Most redundant active beacon that is safely removable.
        let candidate = (0..n)
            .filter(|&i| active[i] && degree[i] > target_neighbors)
            .filter(|&i| {
                adj[i]
                    .iter()
                    .all(|&nb| !active[nb] || degree[nb] > min_neighbors)
            })
            .max_by_key(|&i| (degree[i], std::cmp::Reverse(beacons[i].id())));
        let Some(i) = candidate else { break };
        active[i] = false;
        passive.push(beacons[i].id());
        for &nb in &adj[i] {
            degree[nb] -= 1;
        }
    }
    Schedule {
        active: (0..n)
            .filter(|&i| active[i])
            .map(|i| beacons[i].id())
            .collect(),
        passive,
    }
}

/// The field restricted to a schedule's active beacons (positions and ids
/// preserved).
pub fn active_field(field: &BeaconField, schedule: &Schedule) -> BeaconField {
    let keep: HashSet<BeaconId> = schedule.active.iter().copied().collect();
    let mut out = BeaconField::new(field.terrain());
    for b in field {
        if keep.contains(&b.id()) {
            // Re-adding renumbers ids; keep positions, which is what
            // localization consumes. Propagation personalities change,
            // which is fine: a fresh schedule is a fresh deployment.
            out.add_beacon(b.pos());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::{Lattice, Point, Terrain};
    use abp_localize::UnheardPolicy;
    use abp_radio::IdealDisk;
    use abp_survey::ErrorMap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    #[test]
    fn sparse_fields_untouched() {
        // Beacons farther than 2R apart never hear each other: all active.
        let field = BeaconField::from_positions(
            terrain(),
            [
                Point::new(10.0, 10.0),
                Point::new(90.0, 90.0),
                Point::new(10.0, 90.0),
            ],
        );
        let s = self_schedule(&field, &IdealDisk::new(15.0), 2, 1);
        assert_eq!(s.active.len(), 3);
        assert!(s.passive.is_empty());
        assert_eq!(s.duty_cycle(), 1.0);
    }

    #[test]
    fn dense_clump_gets_pruned() {
        let field = BeaconField::from_positions(
            terrain(),
            (0..16).map(|k| Point::new(48.0 + (k % 4) as f64, 48.0 + (k / 4) as f64)),
        );
        let s = self_schedule(&field, &IdealDisk::new(15.0), 3, 1);
        assert!(s.passive.len() >= 8, "only pruned {}", s.passive.len());
        assert!(!s.active.is_empty());
        assert_eq!(s.active.len() + s.passive.len(), 16);
    }

    #[test]
    fn remaining_actives_keep_min_neighbors() {
        let mut rng = StdRng::seed_from_u64(5);
        let field = BeaconField::random_uniform(120, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let min = 2;
        let s = self_schedule(&field, &model, 4, min);
        let active: HashSet<BeaconId> = s.active.iter().copied().collect();
        for b in &field {
            if !active.contains(&b.id()) {
                continue;
            }
            let had_neighbors = field
                .iter()
                .filter(|o| o.id() != b.id())
                .filter(|o| model.connected(b.tx(), b.pos(), o.pos()))
                .count();
            if had_neighbors >= min {
                let still = field
                    .iter()
                    .filter(|o| o.id() != b.id() && active.contains(&o.id()))
                    .filter(|o| model.connected(b.tx(), b.pos(), o.pos()))
                    .count();
                assert!(
                    still >= min,
                    "{} dropped to {still} active neighbors",
                    b.id()
                );
            }
        }
    }

    #[test]
    fn localization_survives_pruning() {
        // Self-scheduling a saturated field must not blow up the error:
        // the paper's premise is that redundant beacons add little.
        let mut rng = StdRng::seed_from_u64(9);
        let field = BeaconField::random_uniform(200, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let lattice = Lattice::new(terrain(), 5.0);
        let before =
            ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter).mean_error();
        let s = self_schedule(&field, &model, 6, 3);
        assert!(
            s.duty_cycle() < 0.9,
            "expected real pruning, got {}",
            s.duty_cycle()
        );
        let pruned = active_field(&field, &s);
        let after =
            ErrorMap::survey(&lattice, &pruned, &model, UnheardPolicy::TerrainCenter).mean_error();
        // Error may rise, but not catastrophically (stay within 2x).
        assert!(
            after <= before * 2.0 + 1.0,
            "pruning destroyed localization: {before} -> {after}"
        );
    }

    #[test]
    fn deterministic_schedule() {
        let mut rng = StdRng::seed_from_u64(2);
        let field = BeaconField::random_uniform(80, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let a = self_schedule(&field, &model, 4, 2);
        let b = self_schedule(&field, &model, 4, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_field_trivial_schedule() {
        let field = BeaconField::new(terrain());
        let s = self_schedule(&field, &IdealDisk::new(15.0), 3, 1);
        assert!(s.active.is_empty());
        assert!(s.passive.is_empty());
        assert_eq!(s.duty_cycle(), 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds target_neighbors")]
    fn rejects_inverted_thresholds() {
        let field = BeaconField::new(terrain());
        let _ = self_schedule(&field, &IdealDisk::new(15.0), 1, 2);
    }
}
