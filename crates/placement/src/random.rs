//! The Random placement algorithm (paper §3.2.1).

use crate::{PlacementAlgorithm, SurveyView};
use abp_geom::{Point, Terrain};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's baseline: "the simplest algorithm, which pays no attention
/// to the quality of localization at different areas of the region and
/// simply selects a random point in the region as a candidate point for
/// adding an additional beacon."
///
/// Investigated "primarily for comparison with the other algorithms, but
/// also because it is similar in character to uncontrolled airdrop of
/// additional nodes." Complexity `O(1)`.
///
/// # Example
///
/// ```
/// use abp_geom::Terrain;
/// use abp_placement::RandomPlacement;
///
/// let algo = RandomPlacement::new(Terrain::square(100.0));
/// assert_eq!(algo.terrain().side(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomPlacement {
    terrain: Terrain,
}

impl RandomPlacement {
    /// Creates the algorithm for a terrain.
    pub fn new(terrain: Terrain) -> Self {
        RandomPlacement { terrain }
    }

    /// The terrain candidates are drawn from.
    #[inline]
    pub fn terrain(&self) -> Terrain {
        self.terrain
    }
}

impl PlacementAlgorithm for RandomPlacement {
    fn name(&self) -> &'static str {
        "random"
    }

    /// Step 1: select a random point `(Xr, Yr)` in the terrain.
    /// Step 2 (adding the beacon there) is the caller's.
    fn propose(&self, _view: &SurveyView<'_>, rng: &mut dyn RngCore) -> Point {
        crate::CANDIDATES_SCANNED.add(1);
        self.terrain
            .point_at(rng.random::<f64>(), rng.random::<f64>())
    }
}

impl fmt::Display for RandomPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Random placement over {}", self.terrain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_field::BeaconField;
    use abp_geom::Lattice;
    use abp_localize::UnheardPolicy;
    use abp_radio::IdealDisk;
    use abp_survey::ErrorMap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn view_fixture(terrain: Terrain) -> (BeaconField, IdealDisk, ErrorMap) {
        let lattice = Lattice::new(terrain, 10.0);
        let field = BeaconField::new(terrain);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        (field, model, map)
    }

    #[test]
    fn proposals_inside_terrain_and_spread() {
        let terrain = Terrain::square(100.0);
        let (field, model, map) = view_fixture(terrain);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let algo = RandomPlacement::new(terrain);
        let mut rng = StdRng::seed_from_u64(1);
        let mut q1 = 0;
        let n = 2000;
        for _ in 0..n {
            let p = algo.propose(&view, &mut rng);
            assert!(terrain.contains(p));
            if p.x < 50.0 && p.y < 50.0 {
                q1 += 1;
            }
        }
        assert!((400..600).contains(&q1), "quadrant share {q1}/{n}");
    }

    #[test]
    fn seeded_rng_makes_it_reproducible() {
        let terrain = Terrain::square(100.0);
        let (field, model, map) = view_fixture(terrain);
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        let algo = RandomPlacement::new(terrain);
        let a = algo.propose(&view, &mut StdRng::seed_from_u64(9));
        let b = algo.propose(&view, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn ignores_the_error_map() {
        // Same RNG stream, wildly different maps: identical proposals.
        let terrain = Terrain::square(100.0);
        let lattice = Lattice::new(terrain, 10.0);
        let model = IdealDisk::new(15.0);
        let empty = BeaconField::new(terrain);
        let dense = BeaconField::from_positions(
            terrain,
            (0..50).map(|k| Point::new((k % 10) as f64 * 10.0, (k / 10) as f64 * 20.0)),
        );
        let map1 = ErrorMap::survey(&lattice, &empty, &model, UnheardPolicy::TerrainCenter);
        let map2 = ErrorMap::survey(&lattice, &dense, &model, UnheardPolicy::TerrainCenter);
        let algo = RandomPlacement::new(terrain);
        let p1 = algo.propose(
            &SurveyView {
                map: &map1,
                field: &empty,
                model: &model,
            },
            &mut StdRng::seed_from_u64(4),
        );
        let p2 = algo.propose(
            &SurveyView {
                map: &map2,
                field: &dense,
                model: &model,
            },
            &mut StdRng::seed_from_u64(4),
        );
        assert_eq!(p1, p2);
    }
}
