//! Property-based tests for the placement algorithms.

use abp_field::BeaconField;
use abp_geom::{Lattice, Point, Terrain};
use abp_localize::UnheardPolicy;
use abp_placement::{
    greedy_batch, GridPlacement, LocusBreakPlacement, MaxPlacement, PlacementAlgorithm,
    RandomPlacement, SurveyView, WeightedGridPlacement,
};
use abp_radio::{IdealDisk, PerBeaconNoise};
use abp_survey::ErrorMap;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIDE: f64 = 100.0;

fn terrain() -> Terrain {
    Terrain::square(SIDE)
}

fn survey(n: usize, seed: u64, noise: f64) -> (BeaconField, PerBeaconNoise, ErrorMap) {
    let lattice = Lattice::new(terrain(), 5.0);
    let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
    let model = PerBeaconNoise::new(15.0, noise, seed ^ 0xF00D);
    let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
    (field, model, map)
}

fn all_algorithms() -> Vec<Box<dyn PlacementAlgorithm>> {
    vec![
        Box::new(RandomPlacement::new(terrain())),
        Box::new(MaxPlacement::new()),
        Box::new(GridPlacement::paper(terrain(), 15.0)),
        Box::new(WeightedGridPlacement::paper(terrain(), 15.0)),
        Box::new(LocusBreakPlacement::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn proposals_always_inside_terrain(
        n in 0usize..120, seed in any::<u64>(), noise in 0.0..0.6f64
    ) {
        let (field, model, map) = survey(n, seed, noise);
        let view = SurveyView { map: &map, field: &field, model: &model };
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        for algo in all_algorithms() {
            let p = algo.propose(&view, &mut rng);
            prop_assert!(terrain().contains(p), "{} proposed {p}", algo.name());
            prop_assert!(p.is_finite());
        }
    }

    #[test]
    fn deterministic_algorithms_ignore_rng(
        n in 0usize..80, seed in any::<u64>(), noise in 0.0..0.6f64,
        s1 in any::<u64>(), s2 in any::<u64>()
    ) {
        let (field, model, map) = survey(n, seed, noise);
        let view = SurveyView { map: &map, field: &field, model: &model };
        for algo in [
            Box::new(MaxPlacement::new()) as Box<dyn PlacementAlgorithm>,
            Box::new(GridPlacement::paper(terrain(), 15.0)),
            Box::new(WeightedGridPlacement::paper(terrain(), 15.0)),
            Box::new(LocusBreakPlacement::new()),
        ] {
            let a = algo.propose(&view, &mut StdRng::seed_from_u64(s1));
            let b = algo.propose(&view, &mut StdRng::seed_from_u64(s2));
            prop_assert_eq!(a, b, "{} is not rng-independent", algo.name());
        }
    }

    #[test]
    fn max_proposal_has_the_worst_error(n in 1usize..80, seed in any::<u64>()) {
        let (field, model, map) = survey(n, seed, 0.0);
        let view = SurveyView { map: &map, field: &field, model: &model };
        let p = MaxPlacement::new().propose(&view, &mut StdRng::seed_from_u64(0));
        let lattice = map.lattice();
        let picked = map.error_at(lattice.nearest(p)).unwrap();
        for ix in lattice.indices() {
            prop_assert!(map.error_at(ix).unwrap() <= picked + 1e-9);
        }
    }

    #[test]
    fn grid_proposal_has_the_highest_cumulative_score(
        n in 0usize..80, seed in any::<u64>(), noise in 0.0..0.6f64
    ) {
        let (field, model, map) = survey(n, seed, noise);
        let view = SurveyView { map: &map, field: &field, model: &model };
        let g = GridPlacement::paper(terrain(), 15.0);
        let p = g.propose(&view, &mut StdRng::seed_from_u64(0));
        let scores = g.cumulative_errors(&map);
        let best = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let picked = map.cumulative_error_in(
            &abp_geom::Rect::square_centered(p, g.grid_side()),
        );
        prop_assert!((picked - best).abs() < 1e-9);
    }

    #[test]
    fn grid_never_proposes_into_saturated_regions_over_holes(
        seed in any::<u64>()
    ) {
        // One half of the terrain fully covered, the other empty: Grid
        // must propose in the empty half.
        let mut positions = Vec::new();
        for j in 0..10 {
            for i in 0..5 {
                positions.push(Point::new(5.0 + i as f64 * 10.0, 5.0 + j as f64 * 10.0));
            }
        }
        let field = BeaconField::from_positions(terrain(), positions);
        let model = IdealDisk::new(15.0);
        let lattice = Lattice::new(terrain(), 5.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let view = SurveyView { map: &map, field: &field, model: &model };
        let p = GridPlacement::paper(terrain(), 15.0)
            .propose(&view, &mut StdRng::seed_from_u64(seed));
        prop_assert!(p.x > 50.0, "grid proposed into the covered half: {p}");
    }

    #[test]
    fn greedy_batch_monotone_and_consistent(
        n in 1usize..40, seed in any::<u64>(), k in 0usize..5
    ) {
        let lattice = Lattice::new(terrain(), 5.0);
        let mut field =
            BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let model = IdealDisk::new(15.0);
        let mut map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let before = map.mean_error();
        let outcome = greedy_batch(
            &GridPlacement::paper(terrain(), 15.0),
            &mut map,
            &mut field,
            &model,
            k,
            &mut StdRng::seed_from_u64(seed ^ 2),
        );
        prop_assert_eq!(outcome.placed.len(), k);
        prop_assert_eq!(field.len(), n + k);
        // Near-monotone: a new beacon can slightly worsen individual
        // points (it pulls nearby centroids toward itself), so allow a
        // small per-step regression.
        let mut prev = before;
        for &m in &outcome.mean_after_each {
            prop_assert!(m <= prev + 0.25, "mean rose {prev} -> {m}");
            prev = m;
        }
        // In-place map equals fresh survey.
        let fresh = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        prop_assert!((map.mean_error() - fresh.mean_error()).abs() < 1e-9);
    }

    #[test]
    fn adding_any_algorithms_pick_never_hurts_mean_error_ideal(
        n in 1usize..60, seed in any::<u64>()
    ) {
        // Under the ideal model with TerrainCenter policy, a new beacon
        // can locally perturb individual points, but the Grid pick must
        // not *increase* the mean error (it targets the worst region).
        let (mut field, _, _) = survey(n, seed, 0.0);
        let model = IdealDisk::new(15.0);
        let lattice = Lattice::new(terrain(), 5.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let view = SurveyView { map: &map, field: &field, model: &model };
        let p = GridPlacement::paper(terrain(), 15.0)
            .propose(&view, &mut StdRng::seed_from_u64(0));
        let before = map.mean_error();
        let id = field.add_beacon(p);
        let mut after = map.clone();
        after.add_beacon(field.get(id).unwrap(), &model);
        prop_assert!(after.mean_error() <= before + 0.25,
            "grid pick raised mean error {} -> {}", before, after.mean_error());
    }
}
