//! Property-based tests for the propagation models.
//!
//! The central invariant: for every model, `connected` implies the receiver
//! is within `max_range` of the transmitter — the survey's pruning bound.

use abp_geom::Point;
use abp_radio::{
    IdealDisk, LogDistance, MessageLink, Obstructed, PerBeaconNoise, Propagation, TimeVarying,
    TxId, Wall,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pt() -> impl Strategy<Value = Point> {
    (-200.0..200.0f64, -200.0..200.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn check_range_bound<M: Propagation>(model: &M, tx: TxId, tx_pos: Point, rx: Point) -> bool {
    !model.connected(tx, tx_pos, rx) || tx_pos.distance(rx) <= model.max_range(tx, tx_pos) + 1e-9
}

proptest! {
    #[test]
    fn ideal_connectivity_iff_within_range(
        r in 0.5..100.0f64, tx_pos in pt(), rx in pt(), id in any::<u64>()
    ) {
        let m = IdealDisk::new(r);
        let connected = m.connected(TxId(id), tx_pos, rx);
        prop_assert_eq!(connected, tx_pos.distance(rx) <= r);
        prop_assert!(check_range_bound(&m, TxId(id), tx_pos, rx));
    }

    #[test]
    fn noise_model_respects_max_range(
        r in 1.0..50.0f64, noise in 0.0..0.9f64, seed in any::<u64>(),
        id in 0u64..1000, tx_pos in pt(), rx in pt()
    ) {
        let m = PerBeaconNoise::new(r, noise, seed);
        prop_assert!(check_range_bound(&m, TxId(id), tx_pos, rx));
        // Noise factor always within [0, noise].
        let nf = m.noise_factor(TxId(id));
        prop_assert!((0.0..=noise.max(f64::MIN_POSITIVE)).contains(&nf));
    }

    #[test]
    fn noise_model_guaranteed_core(
        r in 1.0..50.0f64, noise in 0.0..0.9f64, seed in any::<u64>(),
        id in 0u64..1000, tx_pos in pt(), frac in 0.0..0.999f64, theta in 0.0..6.2f64
    ) {
        let m = PerBeaconNoise::new(r, noise, seed);
        let nf = m.noise_factor(TxId(id));
        let d = r * (1.0 - nf) * frac;
        let rx = Point::new(tx_pos.x + d * theta.cos(), tx_pos.y + d * theta.sin());
        prop_assert!(m.connected(TxId(id), tx_pos, rx));
    }

    #[test]
    fn noise_model_deterministic(
        r in 1.0..50.0f64, noise in 0.0..0.9f64, seed in any::<u64>(),
        id in any::<u64>(), tx_pos in pt(), rx in pt()
    ) {
        let m1 = PerBeaconNoise::new(r, noise, seed);
        let m2 = PerBeaconNoise::new(r, noise, seed);
        prop_assert_eq!(
            m1.connected(TxId(id), tx_pos, rx),
            m2.connected(TxId(id), tx_pos, rx)
        );
    }

    #[test]
    fn log_distance_respects_max_range(
        r in 2.0..50.0f64, n in 1.5..5.0f64, sigma in 0.0..8.0f64,
        seed in any::<u64>(), id in any::<u64>(), tx_pos in pt(), rx in pt()
    ) {
        let m = LogDistance::new(r, n, sigma, 1.0, seed);
        prop_assert!(check_range_bound(&m, TxId(id), tx_pos, rx));
    }

    #[test]
    fn obstruction_only_removes_links(
        r in 1.0..50.0f64, tx_pos in pt(), rx in pt(),
        wx in -50.0..50.0f64, att in 0.1..1.0f64
    ) {
        let base = IdealDisk::new(r);
        let wall = Wall::new(Point::new(wx, -300.0), Point::new(wx, 300.0), att);
        let m = Obstructed::new(base, vec![wall]);
        // A link the obstructed model makes, the base model must also make.
        if m.connected(TxId(0), tx_pos, rx) {
            prop_assert!(base.connected(TxId(0), tx_pos, rx));
        }
        prop_assert!(check_range_bound(&m, TxId(0), tx_pos, rx));
    }

    #[test]
    fn time_varying_respects_max_range(
        r in 1.0..50.0f64, jitter in 0.0..0.9f64, seed in any::<u64>(),
        epoch in any::<u64>(), id in any::<u64>(), tx_pos in pt(), rx in pt()
    ) {
        let m = TimeVarying::new(IdealDisk::new(r), jitter, seed).at_epoch(epoch);
        prop_assert!(check_range_bound(&m, TxId(id), tx_pos, rx));
    }

    #[test]
    fn lossfree_message_link_equals_geometry(
        r in 1.0..50.0f64, tx_pos in pt(), rx in pt(),
        period in 0.5..5.0f64, windows in 2u32..50, thresh in 0.01..1.0f64,
        seed in any::<u64>()
    ) {
        let model = IdealDisk::new(r);
        let link = MessageLink::new(period, period * windows as f64, thresh, 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(
            link.connected(&model, TxId(0), tx_pos, rx, &mut rng),
            model.connected(TxId(0), tx_pos, rx)
        );
    }

    #[test]
    fn message_counts_never_exceed_sent(
        loss in 0.0..0.99f64, windows in 2u32..100, seed in any::<u64>()
    ) {
        let link = MessageLink::new(1.0, windows as f64, 0.5, loss);
        let mut rng = StdRng::seed_from_u64(seed);
        let obs = link.observe(
            &IdealDisk::new(10.0), TxId(0), Point::ORIGIN, Point::new(1.0, 0.0), &mut rng,
        );
        prop_assert!(obs.received <= obs.sent);
        prop_assert_eq!(obs.sent, windows);
        prop_assert!((0.0..=1.0).contains(&obs.fraction()));
    }
}
