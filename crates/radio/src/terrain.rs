//! Elevation-based propagation (paper §6: "a more sophisticated terrain
//! map").
//!
//! The paper motivates adaptation with terrain effects — hilltops that
//! scatter air-dropped beacons, ridges that shadow radios — and plans
//! simulations with "a more sophisticated terrain map and propagation
//! model". This module provides that map: a [`HeightField`] of elevations
//! with bilinear interpolation, and [`TerrainShadowed`], a wrapper that
//! blocks any base model's links whose line of sight (antenna to antenna)
//! dips below the interpolated ground.

use crate::{Propagation, TxId};
use abp_geom::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A square grid of ground elevations with bilinear interpolation.
///
/// Cell `(i, j)` holds the elevation at `(i·cell, j·cell)`; queries
/// between grid nodes interpolate, and queries outside the grid clamp to
/// the boundary (the terrain continues flat beyond the mapped area).
///
/// # Example
///
/// ```
/// use abp_radio::terrain::HeightField;
///
/// // A 3x3 map with a 10 m knoll in the middle, 50 m cells.
/// let hf = HeightField::from_rows(50.0, &[
///     vec![0.0, 0.0, 0.0],
///     vec![0.0, 10.0, 0.0],
///     vec![0.0, 0.0, 0.0],
/// ]);
/// assert_eq!(hf.elevation(abp_geom::Point::new(50.0, 50.0)), 10.0);
/// assert_eq!(hf.elevation(abp_geom::Point::new(0.0, 0.0)), 0.0);
/// // Halfway up the slope:
/// assert_eq!(hf.elevation(abp_geom::Point::new(50.0, 25.0)), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeightField {
    cell: f64,
    per_side: usize,
    heights: Vec<f64>, // row-major, heights[j * per_side + i]
}

impl HeightField {
    /// Builds a height field from row-major elevation rows (row 0 = south,
    /// `y = 0`), with grid spacing `cell` meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not finite/positive, the rows are empty or
    /// ragged, fewer than 2×2 nodes are given, or any elevation is not
    /// finite.
    pub fn from_rows(cell: f64, rows: &[Vec<f64>]) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell size must be finite and positive, got {cell}"
        );
        assert!(rows.len() >= 2, "need at least 2 rows of elevations");
        let per_side = rows[0].len();
        assert!(per_side >= 2, "need at least 2 columns of elevations");
        let mut heights = Vec::with_capacity(rows.len() * per_side);
        for row in rows {
            assert_eq!(row.len(), per_side, "ragged elevation rows");
            for &h in row {
                assert!(h.is_finite(), "elevation must be finite, got {h}");
                heights.push(h);
            }
        }
        assert_eq!(
            rows.len(),
            per_side,
            "height field must be square ({} rows x {per_side} cols)",
            rows.len()
        );
        HeightField {
            cell,
            per_side,
            heights,
        }
    }

    /// A flat field at elevation zero covering `per_side × per_side`
    /// nodes.
    pub fn flat(cell: f64, per_side: usize) -> Self {
        assert!(per_side >= 2, "need at least 2 nodes per side");
        HeightField::from_rows(cell, &vec![vec![0.0; per_side]; per_side])
    }

    /// A procedural single hill: a cosine bump of `peak` meters centered
    /// at the field's middle, radius `radius` meters — the paper's
    /// hilltop scenario.
    pub fn hill(cell: f64, per_side: usize, peak: f64, radius: f64) -> Self {
        assert!(per_side >= 2);
        assert!(peak.is_finite() && radius.is_finite() && radius > 0.0);
        let center = (per_side - 1) as f64 * cell * 0.5;
        let rows: Vec<Vec<f64>> = (0..per_side)
            .map(|j| {
                (0..per_side)
                    .map(|i| {
                        let d = Point::new(i as f64 * cell, j as f64 * cell)
                            .distance(Point::new(center, center));
                        if d >= radius {
                            0.0
                        } else {
                            peak * 0.5 * (1.0 + (std::f64::consts::PI * d / radius).cos())
                        }
                    })
                    .collect()
            })
            .collect();
        HeightField::from_rows(cell, &rows)
    }

    /// Grid spacing in meters.
    #[inline]
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// Extent of the mapped square in meters.
    #[inline]
    pub fn side(&self) -> f64 {
        (self.per_side - 1) as f64 * self.cell
    }

    /// Ground elevation at `p` (bilinear; clamped outside the map).
    pub fn elevation(&self, p: Point) -> f64 {
        let max = (self.per_side - 1) as f64;
        let x = (p.x / self.cell).clamp(0.0, max);
        let y = (p.y / self.cell).clamp(0.0, max);
        let i0 = (x.floor() as usize).min(self.per_side - 2);
        let j0 = (y.floor() as usize).min(self.per_side - 2);
        let fx = x - i0 as f64;
        let fy = y - j0 as f64;
        let h = |i: usize, j: usize| self.heights[j * self.per_side + i];
        let bottom = h(i0, j0) * (1.0 - fx) + h(i0 + 1, j0) * fx;
        let top = h(i0, j0 + 1) * (1.0 - fx) + h(i0 + 1, j0 + 1) * fx;
        bottom * (1.0 - fy) + top * fy
    }

    /// Returns `true` if the straight line between two antennas —
    /// `antenna` meters above the ground at each end — clears the terrain
    /// along the whole path, sampled every `self.cell() / 2` meters.
    pub fn line_of_sight(&self, a: Point, b: Point, antenna: f64) -> bool {
        let ha = self.elevation(a) + antenna;
        let hb = self.elevation(b) + antenna;
        let dist = a.distance(b);
        if dist == 0.0 {
            return true;
        }
        let steps = ((dist / (self.cell * 0.5)).ceil() as usize).max(1);
        for k in 1..steps {
            let t = k as f64 / steps as f64;
            let p = a.lerp(b, t);
            let los_height = ha + (hb - ha) * t;
            if self.elevation(p) > los_height {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for HeightField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self
            .heights
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &h| {
                (lo.min(h), hi.max(h))
            });
        write!(
            f,
            "height field {}x{} ({} m cells, {lo:.1}..{hi:.1} m)",
            self.per_side, self.per_side, self.cell
        )
    }
}

/// A base propagation model gated by terrain line of sight: a link exists
/// iff the base model connects the pair **and** the terrain does not
/// block the straight antenna-to-antenna path.
///
/// This is intentionally binary (knife-edge); diffraction and partial
/// Fresnel-zone losses would refine it but do not change the adaptation
/// story the placement algorithms respond to.
///
/// # Example
///
/// ```
/// use abp_geom::Point;
/// use abp_radio::terrain::{HeightField, TerrainShadowed};
/// use abp_radio::{IdealDisk, Propagation, TxId};
///
/// // A 20 m hill centered at (50, 50) on a 100 m map.
/// let hf = HeightField::hill(10.0, 11, 20.0, 30.0);
/// let m = TerrainShadowed::new(IdealDisk::new(40.0), hf, 1.0);
/// // Across the hill: blocked. Beside it: fine.
/// assert!(!m.connected(TxId(0), Point::new(30.0, 50.0), Point::new(70.0, 50.0)));
/// assert!(m.connected(TxId(0), Point::new(30.0, 5.0), Point::new(70.0, 5.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TerrainShadowed<M> {
    base: M,
    heights: HeightField,
    antenna: f64,
}

impl<M: Propagation> TerrainShadowed<M> {
    /// Wraps `base` with a height field; antennas sit `antenna` meters
    /// above ground.
    ///
    /// # Panics
    ///
    /// Panics if `antenna` is negative or not finite.
    pub fn new(base: M, heights: HeightField, antenna: f64) -> Self {
        assert!(
            antenna.is_finite() && antenna >= 0.0,
            "antenna height must be finite and non-negative, got {antenna}"
        );
        TerrainShadowed {
            base,
            heights,
            antenna,
        }
    }

    /// The wrapped model.
    pub fn base(&self) -> &M {
        &self.base
    }

    /// The terrain map.
    pub fn heights(&self) -> &HeightField {
        &self.heights
    }
}

impl<M: Propagation> Propagation for TerrainShadowed<M> {
    fn connected(&self, tx: TxId, tx_pos: Point, rx: Point) -> bool {
        self.base.connected(tx, tx_pos, rx) && self.heights.line_of_sight(tx_pos, rx, self.antenna)
    }

    fn max_range(&self, tx: TxId, tx_pos: Point) -> f64 {
        // Shadowing only removes links.
        self.base.max_range(tx, tx_pos)
    }

    fn nominal_range(&self) -> f64 {
        self.base.nominal_range()
    }
}

impl<M: fmt::Display> fmt::Display for TerrainShadowed<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} shadowed by {}", self.base, self.heights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdealDisk;

    #[test]
    fn flat_field_is_transparent() {
        let hf = HeightField::flat(10.0, 11);
        let base = IdealDisk::new(30.0);
        let m = TerrainShadowed::new(base, hf, 1.0);
        for k in 0..100 {
            let rx = Point::new(k as f64, (k % 7) as f64 * 3.0);
            assert_eq!(
                m.connected(TxId(0), Point::new(50.0, 50.0), rx),
                base.connected(TxId(0), Point::new(50.0, 50.0), rx)
            );
        }
    }

    #[test]
    fn bilinear_interpolation_values() {
        let hf = HeightField::from_rows(10.0, &[vec![0.0, 10.0], vec![20.0, 30.0]]);
        assert_eq!(hf.elevation(Point::new(0.0, 0.0)), 0.0);
        assert_eq!(hf.elevation(Point::new(10.0, 0.0)), 10.0);
        assert_eq!(hf.elevation(Point::new(0.0, 10.0)), 20.0);
        assert_eq!(hf.elevation(Point::new(5.0, 5.0)), 15.0); // center mean
                                                              // Clamped outside.
        assert_eq!(hf.elevation(Point::new(-5.0, 0.0)), 0.0);
        assert_eq!(hf.elevation(Point::new(50.0, 50.0)), 30.0);
    }

    #[test]
    fn hill_blocks_across_but_not_around() {
        let hf = HeightField::hill(10.0, 11, 25.0, 30.0);
        assert!((hf.elevation(Point::new(50.0, 50.0)) - 25.0).abs() < 1e-9);
        let m = TerrainShadowed::new(IdealDisk::new(60.0), hf, 1.5);
        let west = Point::new(25.0, 50.0);
        let east = Point::new(75.0, 50.0);
        assert!(!m.connected(TxId(0), west, east), "hill must block");
        // Skirting the hill along the southern edge stays clear.
        assert!(m.connected(TxId(0), Point::new(25.0, 5.0), Point::new(75.0, 5.0)));
        // Short link up the slope is fine (LoS above terrain).
        assert!(m.connected(TxId(0), west, Point::new(40.0, 50.0)));
    }

    #[test]
    fn hilltop_sees_everything_in_range() {
        // From the peak, LoS goes downhill: nothing blocks.
        let hf = HeightField::hill(10.0, 11, 25.0, 30.0);
        let m = TerrainShadowed::new(IdealDisk::new(60.0), hf, 1.5);
        let peak = Point::new(50.0, 50.0);
        for k in 0..36 {
            let theta = std::f64::consts::TAU * k as f64 / 36.0;
            let rx = Point::new(50.0 + 45.0 * theta.cos(), 50.0 + 45.0 * theta.sin());
            assert!(m.connected(TxId(0), peak, rx), "peak blocked toward {rx}");
        }
    }

    #[test]
    fn taller_antennas_restore_links() {
        let hf = HeightField::hill(10.0, 11, 10.0, 30.0);
        let west = Point::new(25.0, 50.0);
        let east = Point::new(75.0, 50.0);
        let low = TerrainShadowed::new(IdealDisk::new(60.0), hf.clone(), 0.5);
        let high = TerrainShadowed::new(IdealDisk::new(60.0), hf, 12.0);
        assert!(!low.connected(TxId(0), west, east));
        assert!(high.connected(TxId(0), west, east));
    }

    #[test]
    fn line_of_sight_is_symmetric() {
        let hf = HeightField::hill(10.0, 11, 15.0, 25.0);
        for k in 0..50 {
            let a = Point::new((k % 10) as f64 * 10.0, (k / 10) as f64 * 20.0);
            let b = Point::new(90.0 - (k % 7) as f64 * 12.0, (k % 5) as f64 * 22.0);
            assert_eq!(
                hf.line_of_sight(a, b, 1.0),
                hf.line_of_sight(b, a, 1.0),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn max_range_still_bounds_connectivity() {
        let hf = HeightField::hill(10.0, 11, 25.0, 30.0);
        let m = TerrainShadowed::new(IdealDisk::new(20.0), hf, 1.0);
        assert_eq!(m.max_range(TxId(0), Point::new(10.0, 10.0)), 20.0);
        assert!(!m.connected(TxId(0), Point::new(10.0, 10.0), Point::new(31.0, 10.0)));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let _ = HeightField::from_rows(10.0, &[vec![0.0, 1.0], vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let _ = HeightField::from_rows(10.0, &[vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0]]);
    }
}
