//! Workspace-wide radio telemetry counters (`abp-trace`).
//!
//! The counters live here — next to the [`Propagation`](crate::Propagation)
//! trait whose queries they count — so every layer that tests links
//! (connectivity oracles, beacon-major surveys, incremental re-surveys)
//! charges the same `links_tested` total. Call sites batch: they count
//! queries locally in the loop and issue one [`Counter::add`] per batch,
//! keeping the per-query cost at zero even with tracing enabled.
//!
//! [`Counter::add`]: abp_trace::Counter::add

use abp_trace::Counter;

/// Propagation-model connectivity queries (`Propagation::connected` calls
/// issued by surveys and oracles). The dominant unit of radio work.
pub static LINKS_TESTED: Counter = Counter::new("links_tested");

/// Beacon messages simulated by the packet-level link procedure
/// ([`MessageLink::observe`](crate::MessageLink::observe)).
pub static PACKETS_OBSERVED: Counter = Counter::new("packets_observed");
