//! Packet-level connectivity (§2.2).
//!
//! The paper's localization procedure is defined operationally: "Beacons
//! ... transmit periodically with a time period `T`. Clients listen for a
//! period `t >> T` ... If the percentage of messages received from a beacon
//! in a time interval `t` exceeds a threshold `CMthresh`, that beacon is
//! considered connected." The rest of the paper then reasons with the
//! geometric predicate this procedure induces. [`MessageLink`] implements
//! the operational version so the reduction can be validated: with
//! loss-free in-range reception the sampled connectivity equals the
//! geometric one.

use crate::{Propagation, TxId};
use abp_geom::Point;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of one listening window: how many beacon messages were sent and
/// how many were received.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkObservation {
    /// Messages the beacon transmitted during the window (`t / T`).
    pub sent: u32,
    /// Messages the client received.
    pub received: u32,
}

impl LinkObservation {
    /// Fraction of messages received, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.received as f64 / self.sent as f64
        }
    }
}

impl fmt::Display for LinkObservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} messages", self.received, self.sent)
    }
}

/// The periodic-beaconing link procedure of §2.2.
///
/// A beacon transmits every `period` seconds; a client listens for
/// `listen` seconds (so observes `floor(listen / period)` messages) and
/// declares the beacon connected when the received fraction strictly
/// exceeds... — the paper says "exceeds a threshold `CMthresh`", which we
/// implement as `fraction >= cmthresh` so that `cmthresh = 1.0` (receive
/// everything) remains satisfiable.
///
/// Reception: a message is received iff the propagation model connects the
/// pair at transmission time *and* an independent per-message loss coin
/// (probability `loss`) comes up clear — modelling collisions and fading
/// bursts on top of the geometric model.
///
/// # Example
///
/// ```
/// use abp_geom::Point;
/// use abp_radio::{IdealDisk, MessageLink, TxId};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let link = MessageLink::new(1.0, 20.0, 0.9, 0.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let obs = link.observe(&IdealDisk::new(10.0), TxId(0),
///                        Point::new(0.0, 0.0), Point::new(5.0, 0.0), &mut rng);
/// assert_eq!(obs.sent, 20);
/// assert_eq!(obs.received, 20); // in range, loss-free
/// assert!(link.is_connected(obs));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageLink {
    period: f64,
    listen: f64,
    cmthresh: f64,
    loss: f64,
}

impl MessageLink {
    /// Creates the link procedure.
    ///
    /// * `period` — beacon transmission period `T` (seconds),
    /// * `listen` — client listening window `t`; must be at least `2·T`
    ///   (the paper requires `t >> T`),
    /// * `cmthresh` — connection threshold on the received fraction, in
    ///   `(0, 1]`,
    /// * `loss` — independent per-message loss probability in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is out of range.
    pub fn new(period: f64, listen: f64, cmthresh: f64, loss: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "period must be positive, got {period}"
        );
        assert!(
            listen.is_finite() && listen >= 2.0 * period,
            "listen window {listen} must be at least 2x the period {period}"
        );
        assert!(
            cmthresh > 0.0 && cmthresh <= 1.0,
            "CMthresh must be in (0, 1], got {cmthresh}"
        );
        assert!(
            (0.0..1.0).contains(&loss),
            "loss probability must be in [0, 1), got {loss}"
        );
        MessageLink {
            period,
            listen,
            cmthresh,
            loss,
        }
    }

    /// Beacon transmission period `T`.
    #[inline]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Listening window `t`.
    #[inline]
    pub fn listen(&self) -> f64 {
        self.listen
    }

    /// The connection threshold `CMthresh`.
    #[inline]
    pub fn cmthresh(&self) -> f64 {
        self.cmthresh
    }

    /// Number of messages observed per window, `floor(t / T)`.
    #[inline]
    pub fn messages_per_window(&self) -> u32 {
        (self.listen / self.period) as u32
    }

    /// Simulates one listening window for beacon `tx` at `tx_pos` heard
    /// from `rx`, under propagation `model`.
    pub fn observe<M: Propagation + ?Sized, R: Rng + ?Sized>(
        &self,
        model: &M,
        tx: TxId,
        tx_pos: Point,
        rx: Point,
        rng: &mut R,
    ) -> LinkObservation {
        let sent = self.messages_per_window();
        crate::metrics::PACKETS_OBSERVED.add(u64::from(sent));
        if !model.connected(tx, tx_pos, rx) {
            return LinkObservation { sent, received: 0 };
        }
        let received = if self.loss == 0.0 {
            sent
        } else {
            (0..sent)
                .filter(|_| rng.random::<f64>() >= self.loss)
                .count() as u32
        };
        LinkObservation { sent, received }
    }

    /// Applies the `CMthresh` rule to an observation.
    #[inline]
    pub fn is_connected(&self, obs: LinkObservation) -> bool {
        obs.fraction() >= self.cmthresh
    }

    /// Convenience: observe and threshold in one call.
    pub fn connected<M: Propagation + ?Sized, R: Rng + ?Sized>(
        &self,
        model: &M,
        tx: TxId,
        tx_pos: Point,
        rx: Point,
        rng: &mut R,
    ) -> bool {
        self.is_connected(self.observe(model, tx, tx_pos, rx, rng))
    }
}

impl fmt::Display for MessageLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "link(T = {} s, t = {} s, CMthresh = {}, loss = {})",
            self.period, self.listen, self.cmthresh, self.loss
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdealDisk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn lossfree_link_equals_geometric_predicate() {
        let link = MessageLink::new(1.0, 10.0, 0.8, 0.0);
        let model = IdealDisk::new(10.0);
        let mut r = rng();
        for k in 0..300 {
            let rx = Point::new(k as f64 * 0.05, 0.0);
            let geometric = model.connected(TxId(0), Point::ORIGIN, rx);
            let sampled = link.connected(&model, TxId(0), Point::ORIGIN, rx, &mut r);
            assert_eq!(sampled, geometric, "rx {rx}");
        }
    }

    #[test]
    fn out_of_range_receives_nothing() {
        let link = MessageLink::new(1.0, 10.0, 0.5, 0.3);
        let obs = link.observe(
            &IdealDisk::new(5.0),
            TxId(0),
            Point::ORIGIN,
            Point::new(50.0, 0.0),
            &mut rng(),
        );
        assert_eq!(obs.received, 0);
        assert_eq!(obs.sent, 10);
        assert!(!link.is_connected(obs));
    }

    #[test]
    fn loss_thins_reception_to_expected_rate() {
        let link = MessageLink::new(1.0, 1000.0, 0.5, 0.25);
        let obs = link.observe(
            &IdealDisk::new(10.0),
            TxId(0),
            Point::ORIGIN,
            Point::new(1.0, 0.0),
            &mut rng(),
        );
        assert_eq!(obs.sent, 1000);
        let frac = obs.fraction();
        assert!((frac - 0.75).abs() < 0.05, "fraction {frac}");
        assert!(link.is_connected(obs));
    }

    #[test]
    fn threshold_rejects_marginal_links() {
        // 25% loss, 90% threshold: in-range links should usually fail.
        let link = MessageLink::new(1.0, 100.0, 0.9, 0.25);
        let mut r = rng();
        let connected = (0..100)
            .filter(|_| {
                link.connected(
                    &IdealDisk::new(10.0),
                    TxId(0),
                    Point::ORIGIN,
                    Point::new(1.0, 0.0),
                    &mut r,
                )
            })
            .count();
        assert!(connected < 10, "only {connected} should sneak past 90%");
    }

    #[test]
    fn messages_per_window_floor() {
        assert_eq!(
            MessageLink::new(1.0, 10.0, 0.5, 0.0).messages_per_window(),
            10
        );
        assert_eq!(
            MessageLink::new(3.0, 10.0, 0.5, 0.0).messages_per_window(),
            3
        );
    }

    #[test]
    fn observation_fraction_edge_cases() {
        assert_eq!(
            LinkObservation {
                sent: 0,
                received: 0
            }
            .fraction(),
            0.0
        );
        assert_eq!(
            LinkObservation {
                sent: 4,
                received: 2
            }
            .fraction(),
            0.5
        );
    }

    #[test]
    #[should_panic(expected = "at least 2x")]
    fn rejects_short_listen_window() {
        let _ = MessageLink::new(5.0, 8.0, 0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "CMthresh")]
    fn rejects_zero_threshold() {
        let _ = MessageLink::new(1.0, 10.0, 0.0, 0.0);
    }
}
