//! The paper's static per-beacon propagation-noise model (§4.2.1).

use crate::{Propagation, TxId};
use abp_geom::{DeterministicField, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the paper's per-(beacon, point) draw `u` is realized.
///
/// The paper states `u` is "chosen uniformly at random between −1 and 1"
/// without saying whether one draw is shared per beacon or redrawn per
/// query point; both readings satisfy the printed formula. They differ
/// observably:
///
/// * [`NoiseStyle::Speckled`] (default, the literal reading) — `u` per
///   (beacon, point): each beacon's coverage boundary is a speckled
///   annulus between `R(1−nf)` and `R(1+nf)`. Independent per-point
///   speckle largely averages out of the centroid, so the error increase
///   under noise is mild.
/// * [`NoiseStyle::CoherentRadius`] — `u` per beacon: each beacon's disk
///   is coherently grown or shrunk to radius `R(1 + u(B)·nf(B))`. The
///   whole disk shifts together, biasing centroids coherently; this
///   reading reproduces the paper's reported error increase (≈ 33 % at
///   `Noise = 0.5`) much more closely. See EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NoiseStyle {
    /// `u` redrawn per (beacon, point): speckled annulus boundary.
    #[default]
    Speckled,
    /// `u` drawn once per beacon: coherently perturbed disk radius.
    CoherentRadius,
    /// `u` redrawn per (beacon, point) but clamped to `[-1, 0]` — noise
    /// only ever *shortens* reach, as physical losses (multi-path, fading,
    /// shadowing, obstacles) do. Not the printed formula, but the reading
    /// that reproduces the paper's reported magnitudes (error up ≈ 33 %,
    /// saturation density up ≈ 50 % at `Noise = 0.5`); the symmetric
    /// readings grow coverage as often as they shrink it and yield much
    /// milder effects. Compared in EXPERIMENTS.md.
    Lossy,
}

impl fmt::Display for NoiseStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NoiseStyle::Speckled => "speckled",
            NoiseStyle::CoherentRadius => "coherent-radius",
            NoiseStyle::Lossy => "lossy",
        })
    }
}

/// The ICDCS 2001 noise model: connectivity to beacon `B` exists at point
/// `P` iff
///
/// ```text
/// distance(P, B) <= R · (1 + u · nf(B))
/// ```
///
/// where `nf(B)` — the *noise factor* of beacon `B` — is drawn uniformly
/// from `[0, Noise]` once per beacon, and `u` is drawn uniformly from
/// `[-1, 1]` (see [`NoiseStyle`] for the readings of `u`'s scope).
/// The intent (quoting the paper) is "to
/// create non-uniform propagation noise for the beacons, and to create
/// random regions with higher propagation noise than the rest of the
/// location field". The model is **location based and static with respect
/// to time**.
///
/// Both draws are realized through a seeded
/// [`DeterministicField`], so the model needs
/// no storage, answers identically for repeated queries (before/after
/// surveys see the same world), and distinct seeds give independent noise
/// fields for independent Monte-Carlo trials.
///
/// Geometry of one beacon's coverage: points closer than `R(1 - nf(B))`
/// are always connected, points beyond `R(1 + nf(B))` never, and the
/// annulus in between is speckled (connected with probability falling
/// linearly from 1 to 0 with distance).
///
/// # Example
///
/// ```
/// use abp_geom::Point;
/// use abp_radio::{PerBeaconNoise, Propagation, TxId};
///
/// let m = PerBeaconNoise::new(15.0, 0.5, 7);
/// let b = Point::new(50.0, 50.0);
/// // Inside the guaranteed core R(1 - Noise):
/// assert!(m.connected(TxId(2), b, Point::new(50.0, 57.0)));
/// // Beyond the maximal reach R(1 + Noise):
/// assert!(!m.connected(TxId(2), b, Point::new(50.0, 73.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerBeaconNoise {
    nominal: f64,
    max_noise: f64,
    style: NoiseStyle,
    field: DeterministicField,
}

impl PerBeaconNoise {
    /// Creates the model with the default [`NoiseStyle::Speckled`].
    ///
    /// * `nominal` — the nominal range `R` (15 m in the paper),
    /// * `max_noise` — the field's maximum noise factor `Noise`
    ///   (0, 0.1, 0.3 or 0.5 in the paper; 0 degenerates to
    ///   [`IdealDisk`](crate::IdealDisk) behaviour),
    /// * `seed` — realizes this field's noise; independent trials use
    ///   different seeds.
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not finite/positive, or `max_noise` is not in
    /// `[0, 1)` (a noise factor of 1 would let effective ranges reach 0,
    /// and the paper never exceeds 0.5).
    pub fn new(nominal: f64, max_noise: f64, seed: u64) -> Self {
        Self::with_style(nominal, max_noise, seed, NoiseStyle::default())
    }

    /// Creates the model with an explicit [`NoiseStyle`].
    ///
    /// # Panics
    ///
    /// As [`PerBeaconNoise::new`].
    pub fn with_style(nominal: f64, max_noise: f64, seed: u64, style: NoiseStyle) -> Self {
        assert!(
            nominal.is_finite() && nominal > 0.0,
            "nominal range must be finite and positive, got {nominal}"
        );
        assert!(
            (0.0..1.0).contains(&max_noise),
            "max noise factor must be in [0, 1), got {max_noise}"
        );
        PerBeaconNoise {
            nominal,
            max_noise,
            style,
            field: DeterministicField::new(seed),
        }
    }

    /// The configured [`NoiseStyle`].
    #[inline]
    pub fn style(&self) -> NoiseStyle {
        self.style
    }

    /// The nominal range `R`.
    #[inline]
    pub fn nominal(&self) -> f64 {
        self.nominal
    }

    /// The field-wide maximum noise factor `Noise`.
    #[inline]
    pub fn max_noise(&self) -> f64 {
        self.max_noise
    }

    /// The noise factor `nf(B)` of a specific beacon, in
    /// `[0, max_noise]`.
    #[inline]
    pub fn noise_factor(&self, tx: TxId) -> f64 {
        self.field.unit_keyed(tx.0) * self.max_noise
    }

    /// The perturbation `u` in `[-1, 1)`: per (beacon, point) under
    /// [`NoiseStyle::Speckled`], per beacon under
    /// [`NoiseStyle::CoherentRadius`] (then `rx` is ignored).
    #[inline]
    pub fn u(&self, tx: TxId, rx: Point) -> f64 {
        match self.style {
            NoiseStyle::Speckled => self.field.symmetric(tx.0, rx),
            NoiseStyle::CoherentRadius => self.field.unit_keyed(tx.0 ^ 0xC0_4E_7A) * 2.0 - 1.0,
            NoiseStyle::Lossy => -self.field.unit(tx.0, rx),
        }
    }

    /// The effective connectivity radius for `tx` *at query point* `rx`:
    /// `R (1 + u·nf)`.
    #[inline]
    pub fn effective_range(&self, tx: TxId, rx: Point) -> f64 {
        self.nominal * (1.0 + self.u(tx, rx) * self.noise_factor(tx))
    }
}

impl Propagation for PerBeaconNoise {
    #[inline]
    fn connected(&self, tx: TxId, tx_pos: Point, rx: Point) -> bool {
        let r = self.effective_range(tx, rx);
        tx_pos.distance_squared(rx) <= r * r
    }

    #[inline]
    fn max_range(&self, tx: TxId, tx_pos: Point) -> f64 {
        match self.style {
            NoiseStyle::Speckled => self.nominal * (1.0 + self.noise_factor(tx)),
            NoiseStyle::CoherentRadius => self.effective_range(tx, tx_pos).max(0.0),
            NoiseStyle::Lossy => self.nominal,
        }
    }

    #[inline]
    fn nominal_range(&self) -> f64 {
        self.nominal
    }
}

impl fmt::Display for PerBeaconNoise {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "per-beacon noise (R = {} m, Noise = {}, seed = {})",
            self.nominal,
            self.max_noise,
            self.field.seed()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: f64 = 15.0;

    #[test]
    fn zero_noise_equals_ideal_disk() {
        let m = PerBeaconNoise::new(R, 0.0, 123);
        let b = Point::new(10.0, 10.0);
        for k in 0..200 {
            let rx = Point::new((k % 20) as f64 * 2.0, (k / 20) as f64 * 2.5);
            let ideal = b.distance(rx) <= R;
            assert_eq!(m.connected(TxId(5), b, rx), ideal, "rx {rx}");
        }
        assert_eq!(m.max_range(TxId(5), b), R);
    }

    #[test]
    fn connectivity_is_static_in_time() {
        let m = PerBeaconNoise::new(R, 0.5, 99);
        let b = Point::new(30.0, 40.0);
        let rx = Point::new(35.0, 52.0);
        let first = m.connected(TxId(1), b, rx);
        for _ in 0..10 {
            assert_eq!(m.connected(TxId(1), b, rx), first);
        }
    }

    #[test]
    fn guaranteed_core_and_max_reach() {
        let m = PerBeaconNoise::new(R, 0.5, 7);
        let b = Point::new(50.0, 50.0);
        for tx in (0..50).map(TxId) {
            let nf = m.noise_factor(tx);
            assert!((0.0..=0.5).contains(&nf));
            // Points strictly inside R(1 - nf) are always connected.
            let core = R * (1.0 - nf) * 0.999;
            assert!(m.connected(tx, b, Point::new(50.0 + core, 50.0)));
            // Points beyond R(1 + nf) never are.
            let beyond = R * (1.0 + nf) * 1.001;
            assert!(!m.connected(tx, b, Point::new(50.0 + beyond, 50.0)));
            // max_range bounds connectivity.
            assert!(m.max_range(tx, b) >= core && m.max_range(tx, b) <= R * 1.5);
        }
    }

    #[test]
    fn noise_factors_vary_across_beacons() {
        let m = PerBeaconNoise::new(R, 0.5, 11);
        let factors: Vec<f64> = (0..20).map(|k| m.noise_factor(TxId(k))).collect();
        let distinct = factors
            .windows(2)
            .filter(|w| (w[0] - w[1]).abs() > 1e-12)
            .count();
        assert!(distinct > 10, "noise factors should differ across beacons");
    }

    #[test]
    fn noise_factor_roughly_uniform_over_population() {
        let m = PerBeaconNoise::new(R, 0.5, 3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|k| m.noise_factor(TxId(k))).sum::<f64>() / n as f64;
        // U[0, 0.5] has mean 0.25.
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn annulus_connectivity_rate_matches_linear_falloff() {
        // At distance d = R(1 + x·nf) for x in (-1, 1), the connection
        // probability over random points is (1 - x) / 2.
        let m = PerBeaconNoise::new(R, 0.5, 42);
        let tx = TxId(0);
        let nf = m.noise_factor(tx);
        assert!(nf > 0.05, "test needs a beacon with real noise");
        let b = Point::new(0.0, 0.0);
        let x = 0.0; // mid-annulus: expect ~50% connected
        let d = R * (1.0 + x * nf);
        let n = 20_000;
        let connected = (0..n)
            .filter(|k| {
                let theta = std::f64::consts::TAU * *k as f64 / n as f64;
                m.connected(tx, b, Point::new(d * theta.cos(), d * theta.sin()))
            })
            .count();
        let rate = connected as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn different_seeds_different_worlds() {
        let m1 = PerBeaconNoise::new(R, 0.5, 1);
        let m2 = PerBeaconNoise::new(R, 0.5, 2);
        let b = Point::ORIGIN;
        let diffs = (0..2000)
            .filter(|k| {
                let rx = Point::new(14.0 + (k % 40) as f64 * 0.05, (k / 40) as f64 * 0.3);
                m1.connected(TxId(3), b, rx) != m2.connected(TxId(3), b, rx)
            })
            .count();
        assert!(diffs > 0, "independent seeds must disagree somewhere");
    }

    #[test]
    #[should_panic(expected = "max noise factor")]
    fn rejects_noise_of_one() {
        let _ = PerBeaconNoise::new(R, 1.0, 0);
    }

    #[test]
    fn coherent_radius_is_a_clean_disk() {
        let m = PerBeaconNoise::with_style(R, 0.5, 7, NoiseStyle::CoherentRadius);
        let b = Point::new(50.0, 50.0);
        for tx in (0..20).map(TxId) {
            let r_eff = m.effective_range(tx, b);
            assert!((R * 0.5..=R * 1.5).contains(&r_eff));
            // Coherent: connectivity is exactly the disk of radius r_eff.
            for k in 0..100 {
                let theta = std::f64::consts::TAU * k as f64 / 100.0;
                let inside = Point::new(
                    50.0 + 0.99 * r_eff * theta.cos(),
                    50.0 + 0.99 * r_eff * theta.sin(),
                );
                let outside = Point::new(
                    50.0 + 1.01 * r_eff * theta.cos(),
                    50.0 + 1.01 * r_eff * theta.sin(),
                );
                assert!(m.connected(tx, b, inside));
                assert!(!m.connected(tx, b, outside));
            }
        }
    }

    #[test]
    fn coherent_radii_vary_across_beacons() {
        let m = PerBeaconNoise::with_style(R, 0.5, 3, NoiseStyle::CoherentRadius);
        let radii: Vec<f64> = (0..20)
            .map(|k| m.effective_range(TxId(k), Point::ORIGIN))
            .collect();
        let grown = radii.iter().filter(|&&r| r > R).count();
        let shrunk = radii.iter().filter(|&&r| r < R).count();
        assert!(grown > 2 && shrunk > 2, "u should be two-sided: {radii:?}");
    }

    #[test]
    fn lossy_never_reaches_beyond_nominal() {
        let m = PerBeaconNoise::with_style(R, 0.5, 11, NoiseStyle::Lossy);
        let b = Point::new(50.0, 50.0);
        for tx in (0..20).map(TxId) {
            assert_eq!(m.max_range(tx, b), R);
            // Nothing beyond R, ever.
            assert!(!m.connected(tx, b, Point::new(50.0 + R * 1.001, 50.0)));
            // The guaranteed core R(1 - nf) still connects.
            let core = R * (1.0 - m.noise_factor(tx)) * 0.999;
            assert!(m.connected(tx, b, Point::new(50.0 + core, 50.0)));
        }
    }

    #[test]
    fn lossy_shrinks_coverage_on_average() {
        let spec = PerBeaconNoise::with_style(R, 0.5, 5, NoiseStyle::Speckled);
        let lossy = PerBeaconNoise::with_style(R, 0.5, 5, NoiseStyle::Lossy);
        let b = Point::ORIGIN;
        let count = |m: &PerBeaconNoise| {
            (0..10_000)
                .filter(|k| {
                    let p = Point::new(
                        ((k % 100) as f64 - 50.0) * 0.5,
                        ((k / 100) as f64 - 50.0) * 0.5,
                    );
                    m.connected(TxId(0), b, p)
                })
                .count()
        };
        assert!(count(&lossy) < count(&spec));
    }

    #[test]
    fn styles_display() {
        assert_eq!(NoiseStyle::Speckled.to_string(), "speckled");
        assert_eq!(NoiseStyle::CoherentRadius.to_string(), "coherent-radius");
        assert_eq!(NoiseStyle::Lossy.to_string(), "lossy");
    }
}
