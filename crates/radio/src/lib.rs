//! Radio propagation models for the `beaconplace` workspace.
//!
//! Localization quality in the paper is governed entirely by *which beacons
//! a client can hear*, so the propagation model is the heart of the
//! simulation. This crate provides:
//!
//! * [`Propagation`] — the connectivity predicate every model implements,
//! * [`IdealDisk`] — the paper's idealized radio model (§2.1): perfect
//!   spherical propagation, identical range `R` for all radios,
//! * [`PerBeaconNoise`] — the paper's noise model (§4.2.1): beacon `B`
//!   reaches point `P` iff `dist(P, B) <= R(1 + u·nf(B))` with a per-beacon
//!   noise factor `nf(B) ~ U[0, Noise]` and `u ~ U[-1, 1]` per
//!   (beacon, point), *static in time*,
//! * [`LogDistance`] — a log-distance path-loss model with deterministic
//!   log-normal shadowing (the "more sophisticated propagation model" of
//!   the paper's future work, §6),
//! * [`Obstructed`] — line-segment obstacles that attenuate any base model
//!   (terrain-commonality effects, §1 and §6),
//! * [`TimeVarying`] — epoch-indexed noise on top of any model (the
//!   time-varying propagation loss of §6),
//! * [`link`] — the packet-level connectivity procedure of §2.2 (beacons
//!   transmit every `T`, clients listen for `t >> T` and threshold the
//!   received fraction against `CMthresh`).
//!
//! All models are *deterministic*: randomness is derived from seeds via
//! hash fields ([`abp_geom::DeterministicField`]), so connectivity never
//! flickers between the before- and after-placement surveys — exactly the
//! paper's "location based and static with respect to time" property.
//!
//! # Example
//!
//! ```
//! use abp_geom::Point;
//! use abp_radio::{IdealDisk, PerBeaconNoise, Propagation, TxId};
//!
//! let ideal = IdealDisk::new(15.0);
//! let b = Point::new(0.0, 0.0);
//! assert!(ideal.connected(TxId(0), b, Point::new(15.0, 0.0)));
//! assert!(!ideal.connected(TxId(0), b, Point::new(15.1, 0.0)));
//!
//! // Noise 0.5, seeded: reachability beyond R(1 + nf) is impossible.
//! let noisy = PerBeaconNoise::new(15.0, 0.5, 42);
//! assert!(!noisy.connected(TxId(0), b, Point::new(23.0, 0.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ideal;
pub mod link;
pub mod metrics;
pub mod noise;
pub mod obstacles;
pub mod shadowing;
pub mod terrain;
pub mod timevarying;

pub use ideal::IdealDisk;
pub use link::{LinkObservation, MessageLink};
pub use noise::{NoiseStyle, PerBeaconNoise};
pub use obstacles::{Obstructed, Wall};
pub use shadowing::LogDistance;
pub use terrain::{HeightField, TerrainShadowed};
pub use timevarying::TimeVarying;

use abp_geom::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a transmitter (beacon) as seen by propagation models.
///
/// Propagation models key their per-beacon randomness (noise factors,
/// shadowing) on this id, so the same id always experiences the same
/// propagation conditions — the paper's static noise field. The id is
/// assigned by the beacon field (`abp-field`) and is stable for the life of
/// a beacon.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct TxId(pub u64);

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

impl From<u64> for TxId {
    fn from(v: u64) -> Self {
        TxId(v)
    }
}

/// A radio propagation model: decides whether a transmitter reaches a
/// receiver position.
///
/// Implementations must be:
///
/// * **deterministic** — repeated queries with the same arguments return
///   the same answer (the paper's noise is static in time); and
/// * **range-bounded** — [`Propagation::max_range`] must upper-bound the
///   distance at which [`Propagation::connected`] can return `true`, which
///   the beacon-major survey uses to prune its inner loop.
///
/// The trait is object-safe; the experiment engine stores models as
/// `&dyn Propagation`.
pub trait Propagation: Send + Sync {
    /// Returns `true` if a transmission from `tx` located at `tx_pos`
    /// is received at `rx`.
    fn connected(&self, tx: TxId, tx_pos: Point, rx: Point) -> bool;

    /// An upper bound on the distance at which `tx` (at `tx_pos`) can be
    /// received. `connected` must be `false` for every `rx` farther away.
    fn max_range(&self, tx: TxId, tx_pos: Point) -> f64;

    /// The nominal transmission range `R` of the paper — the design range
    /// ignoring noise. Placement algorithms size their grids from this.
    fn nominal_range(&self) -> f64;

    /// Whether connectivity is *exactly* the closed disk of
    /// [`Propagation::max_range`]: `connected(tx, p, rx)` holds if and
    /// only if `p.distance_squared(rx) <= max_range(tx, p) * max_range(tx, p)`
    /// — that squared form verbatim, so the boundary bit-semantics are
    /// pinned down.
    ///
    /// Index-accelerated sweeps use this to replace the per-candidate
    /// virtual `connected` call with the inline comparison (same heard
    /// sets, bit-identical accumulation, no dynamic dispatch in the hot
    /// loop). Defaults to `false`, which is always sound; only models
    /// whose connectivity truly is the sharp `max_range` disk — no
    /// noise, shadowing, obstruction, or time variation — may override
    /// it to `true`.
    fn disk_exact(&self) -> bool {
        false
    }
}

// Allow `&M` and boxed models wherever a model is expected.
impl<M: Propagation + ?Sized> Propagation for &M {
    fn connected(&self, tx: TxId, tx_pos: Point, rx: Point) -> bool {
        (**self).connected(tx, tx_pos, rx)
    }
    fn max_range(&self, tx: TxId, tx_pos: Point) -> f64 {
        (**self).max_range(tx, tx_pos)
    }
    fn nominal_range(&self) -> f64 {
        (**self).nominal_range()
    }
}

impl<M: Propagation + ?Sized> Propagation for Box<M> {
    fn connected(&self, tx: TxId, tx_pos: Point, rx: Point) -> bool {
        (**self).connected(tx, tx_pos, rx)
    }
    fn max_range(&self, tx: TxId, tx_pos: Point) -> f64 {
        (**self).max_range(tx, tx_pos)
    }
    fn nominal_range(&self) -> f64 {
        (**self).nominal_range()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txid_display_and_from() {
        let id: TxId = 7u64.into();
        assert_eq!(id.to_string(), "tx7");
        assert_eq!(id, TxId(7));
    }

    #[test]
    fn trait_is_object_safe() {
        let model: Box<dyn Propagation> = Box::new(IdealDisk::new(10.0));
        assert!(model.connected(TxId(0), Point::ORIGIN, Point::new(5.0, 0.0)));
        assert_eq!(model.nominal_range(), 10.0);
        // And references delegate.
        let by_ref: &dyn Propagation = &*model;
        assert_eq!(by_ref.max_range(TxId(0), Point::ORIGIN), 10.0);
    }
}
