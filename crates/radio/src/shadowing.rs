//! Log-distance path loss with deterministic log-normal shadowing.
//!
//! The paper's future work (§6) calls for "a more sophisticated terrain map
//! and propagation model". This module provides the textbook log-distance /
//! log-normal shadowing model (Rappaport, *Wireless Communications*, the
//! paper's reference \[15\]): received power falls off as
//! `10·n·log10(d/d0)` dB plus a Gaussian shadowing term `X_sigma` that we
//! realize deterministically per (beacon, point) so the field remains
//! static in time.

use crate::{Propagation, TxId};
use abp_geom::{DeterministicField, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How many shadowing standard deviations bound the effective range.
///
/// `max_range` must upper-bound connectivity; we clamp the shadowing draw
/// to ±4σ (P(|X| > 4σ) < 7e-5 for a true Gaussian; our draw is exactly
/// clamped) so the bound is hard.
const SIGMA_CLAMP: f64 = 4.0;

/// Log-distance path-loss model with deterministic log-normal shadowing.
///
/// A receiver at distance `d` from beacon `B` hears it iff
///
/// ```text
/// PL(d) = 10 · n · log10(d / d0) + X_sigma(B, P)   <=   budget_db
/// ```
///
/// where `n` is the path-loss exponent, `X_sigma` is a zero-mean Gaussian
/// with standard deviation `sigma_db` (clamped to ±4σ), and `budget_db` is
/// the link budget beyond the reference distance `d0`. The *nominal range*
/// `R` is the shadowing-free solution `R = d0 · 10^(budget/(10 n))`; the
/// constructor takes `R` directly and derives the budget, so the model
/// drops in wherever [`IdealDisk`](crate::IdealDisk) is used.
///
/// With `sigma_db = 0` the model is exactly an ideal disk of radius `R`.
///
/// # Example
///
/// ```
/// use abp_geom::Point;
/// use abp_radio::{LogDistance, Propagation, TxId};
///
/// let m = LogDistance::new(15.0, 3.0, 4.0, 1.0, 99);
/// // Deep inside the clamp-guaranteed core, always connected:
/// assert!(m.connected(TxId(0), Point::ORIGIN, Point::new(1.0, 0.0)));
/// // Far beyond the +4-sigma reach, never connected:
/// assert!(!m.connected(TxId(0), Point::ORIGIN, Point::new(300.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogDistance {
    nominal: f64,
    exponent: f64,
    sigma_db: f64,
    d0: f64,
    budget_db: f64,
    field: DeterministicField,
}

impl LogDistance {
    /// Creates the model.
    ///
    /// * `nominal` — the shadowing-free range `R`,
    /// * `exponent` — path-loss exponent `n` (2 free space, 2.7–5 urban),
    /// * `sigma_db` — shadowing standard deviation in dB (0 disables),
    /// * `d0` — reference distance (must be `< nominal`),
    /// * `seed` — realizes the shadowing field.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not finite, `nominal <= d0`, `d0 <= 0`,
    /// `exponent <= 0`, or `sigma_db < 0`.
    pub fn new(nominal: f64, exponent: f64, sigma_db: f64, d0: f64, seed: u64) -> Self {
        assert!(
            d0.is_finite() && d0 > 0.0,
            "reference distance must be positive, got {d0}"
        );
        assert!(
            nominal.is_finite() && nominal > d0,
            "nominal range must exceed the reference distance d0 = {d0}, got {nominal}"
        );
        assert!(
            exponent.is_finite() && exponent > 0.0,
            "path-loss exponent must be positive, got {exponent}"
        );
        assert!(
            sigma_db.is_finite() && sigma_db >= 0.0,
            "shadowing sigma must be non-negative, got {sigma_db}"
        );
        let budget_db = 10.0 * exponent * (nominal / d0).log10();
        LogDistance {
            nominal,
            exponent,
            sigma_db,
            d0,
            budget_db,
            field: DeterministicField::new(seed),
        }
    }

    /// The shadowing-free range `R`.
    #[inline]
    pub fn nominal(&self) -> f64 {
        self.nominal
    }

    /// Path-loss exponent `n`.
    #[inline]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Shadowing standard deviation in dB.
    #[inline]
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// The deterministic shadowing draw for `(tx, rx)`, in dB, clamped to
    /// ±4σ.
    pub fn shadowing_db(&self, tx: TxId, rx: Point) -> f64 {
        if self.sigma_db == 0.0 {
            return 0.0;
        }
        // Two independent uniforms -> one standard normal via Box-Muller.
        let u1 = self.field.unit(tx.0 ^ 0xA5A5_A5A5, rx).max(1e-12);
        let u2 = self.field.unit(tx.0 ^ 0x5A5A_5A5A, rx);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (z * self.sigma_db).clamp(-SIGMA_CLAMP * self.sigma_db, SIGMA_CLAMP * self.sigma_db)
    }

    /// Path loss in dB at distance `d` (excluding shadowing).
    ///
    /// Distances below `d0` are treated as `d0` (free-space near field).
    #[inline]
    pub fn path_loss_db(&self, d: f64) -> f64 {
        10.0 * self.exponent * (d.max(self.d0) / self.d0).log10()
    }
}

impl Propagation for LogDistance {
    fn connected(&self, tx: TxId, tx_pos: Point, rx: Point) -> bool {
        let d = tx_pos.distance(rx);
        self.path_loss_db(d) + self.shadowing_db(tx, rx) <= self.budget_db
    }

    fn max_range(&self, _tx: TxId, _tx_pos: Point) -> f64 {
        // Worst case: shadowing at its clamp favoring reception (-4σ),
        // i.e. budget effectively enlarged by 4σ.
        self.d0
            * 10f64.powf((self.budget_db + SIGMA_CLAMP * self.sigma_db) / (10.0 * self.exponent))
    }

    #[inline]
    fn nominal_range(&self) -> f64 {
        self.nominal
    }
}

impl fmt::Display for LogDistance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "log-distance (R = {} m, n = {}, sigma = {} dB)",
            self.nominal, self.exponent, self.sigma_db
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_ideal_disk() {
        let m = LogDistance::new(15.0, 3.0, 0.0, 1.0, 5);
        let b = Point::new(20.0, 20.0);
        for k in 0..400 {
            let rx = Point::new((k % 20) as f64 * 2.0, (k / 20) as f64 * 2.0);
            let ideal = b.distance(rx) <= 15.0 + 1e-9;
            assert_eq!(m.connected(TxId(2), b, rx), ideal, "rx {rx}");
        }
        assert!((m.max_range(TxId(2), b) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn path_loss_monotone_in_distance() {
        let m = LogDistance::new(15.0, 3.0, 4.0, 1.0, 5);
        let mut prev = f64::NEG_INFINITY;
        for k in 1..100 {
            let pl = m.path_loss_db(k as f64 * 0.5);
            assert!(pl >= prev);
            prev = pl;
        }
    }

    #[test]
    fn near_field_clamped_to_d0() {
        let m = LogDistance::new(15.0, 3.0, 0.0, 1.0, 5);
        assert_eq!(m.path_loss_db(0.0), 0.0);
        assert_eq!(m.path_loss_db(0.5), 0.0);
    }

    #[test]
    fn max_range_bounds_connectivity() {
        let m = LogDistance::new(15.0, 3.0, 6.0, 1.0, 17);
        let b = Point::ORIGIN;
        let bound = m.max_range(TxId(9), b);
        // Sample many angles right beyond the bound: never connected.
        for k in 0..1000 {
            let theta = std::f64::consts::TAU * k as f64 / 1000.0;
            let rx = Point::new((bound + 0.01) * theta.cos(), (bound + 0.01) * theta.sin());
            assert!(!m.connected(TxId(9), b, rx));
        }
    }

    #[test]
    fn shadowing_deterministic_and_bounded() {
        let m = LogDistance::new(15.0, 3.0, 4.0, 1.0, 7);
        let rx = Point::new(10.0, 3.0);
        let s1 = m.shadowing_db(TxId(4), rx);
        let s2 = m.shadowing_db(TxId(4), rx);
        assert_eq!(s1, s2);
        assert!(s1.abs() <= 16.0 + 1e-9); // 4 sigma
    }

    #[test]
    fn shadowing_roughly_zero_mean() {
        let m = LogDistance::new(15.0, 3.0, 4.0, 1.0, 23);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|k| m.shadowing_db(TxId(1), Point::new((k % 100) as f64, (k / 100) as f64)))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn shadowing_makes_coverage_irregular() {
        let m = LogDistance::new(15.0, 3.0, 6.0, 1.0, 31);
        let b = Point::ORIGIN;
        // At exactly the nominal range the coverage boundary should be
        // mixed: some angles connected, some not.
        let n = 2000;
        let connected = (0..n)
            .filter(|k| {
                let theta = std::f64::consts::TAU * *k as f64 / n as f64;
                m.connected(
                    TxId(0),
                    b,
                    Point::new(15.0 * theta.cos(), 15.0 * theta.sin()),
                )
            })
            .count();
        assert!(
            connected > n / 10 && connected < n * 9 / 10,
            "{connected}/{n}"
        );
    }

    #[test]
    #[should_panic(expected = "nominal range must exceed")]
    fn rejects_nominal_below_d0() {
        let _ = LogDistance::new(0.5, 3.0, 4.0, 1.0, 0);
    }
}
