//! Epoch-indexed (time-varying) propagation.
//!
//! The paper's noise model is static in time; its future work (§6) plans
//! simulations "incorporating time varying propagation loss".
//! [`TimeVarying`] adds that: on top of any base model it applies a
//! per-epoch multiplicative range jitter, deterministic per
//! `(beacon, point, epoch)`. Within one epoch the world is static (so the
//! survey/placement pipeline still works); across epochs links flicker.

use crate::{Propagation, TxId};
use abp_geom::{DeterministicField, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A base model whose effective range jitters per epoch.
///
/// At epoch `e`, a link that the base model would make at distance `d` is
/// instead evaluated at apparent distance `d / (1 + u·j)` where
/// `u ~ U[-1, 1]` deterministic per `(tx, rx, e)` and `j` is the jitter
/// amplitude. Equivalent to scaling the base model's decision radius by
/// `(1 + u·j)`.
///
/// # Example
///
/// ```
/// use abp_geom::Point;
/// use abp_radio::{IdealDisk, Propagation, TimeVarying, TxId};
///
/// let m = TimeVarying::new(IdealDisk::new(10.0), 0.2, 7);
/// let rx = Point::new(9.9, 0.0); // right at the jittery boundary
/// let now = m.at_epoch(0).connected(TxId(0), Point::ORIGIN, rx);
/// let later = m.at_epoch(1).connected(TxId(0), Point::ORIGIN, rx);
/// // Deterministic per epoch:
/// assert_eq!(now, m.at_epoch(0).connected(TxId(0), Point::ORIGIN, rx));
/// let _ = later;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeVarying<M> {
    base: M,
    jitter: f64,
    epoch: u64,
    field: DeterministicField,
}

impl<M: Propagation> TimeVarying<M> {
    /// Wraps `base` with temporal jitter amplitude `jitter` (fraction of
    /// range, in `[0, 1)`), realized from `seed`. Starts at epoch 0.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is not in `[0, 1)`.
    pub fn new(base: M, jitter: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&jitter),
            "temporal jitter must be in [0, 1), got {jitter}"
        );
        TimeVarying {
            base,
            jitter,
            epoch: 0,
            field: DeterministicField::new(seed),
        }
    }

    /// A copy of the model fixed at `epoch`.
    pub fn at_epoch(&self, epoch: u64) -> TimeVarying<M>
    where
        M: Clone,
    {
        TimeVarying {
            base: self.base.clone(),
            jitter: self.jitter,
            epoch,
            field: self.field,
        }
    }

    /// The current epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The jitter amplitude.
    #[inline]
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// The wrapped model.
    pub fn base(&self) -> &M {
        &self.base
    }

    /// The jitter factor `1 + u·j` for a link at the current epoch.
    fn factor(&self, tx: TxId, rx: Point) -> f64 {
        if self.jitter == 0.0 {
            return 1.0;
        }
        // Mix the epoch into the key so each epoch redraws u.
        let key = tx.0 ^ self.epoch.rotate_left(17) ^ 0x7E_AC_3D;
        1.0 + self.field.symmetric(key, rx) * self.jitter
    }
}

impl<M: Propagation + Clone + Send + Sync> Propagation for TimeVarying<M> {
    fn connected(&self, tx: TxId, tx_pos: Point, rx: Point) -> bool {
        let factor = self.factor(tx, rx);
        let d = tx_pos.distance(rx);
        if d == 0.0 {
            return self.base.connected(tx, tx_pos, rx);
        }
        // Apparent receiver at distance d / factor along the same ray.
        let virtual_rx = tx_pos + (rx - tx_pos) * (1.0 / factor);
        self.base.connected(tx, tx_pos, virtual_rx)
    }

    fn max_range(&self, tx: TxId, tx_pos: Point) -> f64 {
        self.base.max_range(tx, tx_pos) * (1.0 + self.jitter)
    }

    fn nominal_range(&self) -> f64 {
        self.base.nominal_range()
    }
}

impl<M: fmt::Display> fmt::Display for TimeVarying<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} + temporal jitter {} (epoch {})",
            self.base, self.jitter, self.epoch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdealDisk;

    #[test]
    fn zero_jitter_matches_base() {
        let base = IdealDisk::new(10.0);
        let m = TimeVarying::new(base, 0.0, 3);
        for k in 0..200 {
            let rx = Point::new(k as f64 * 0.1, (k % 5) as f64);
            assert_eq!(
                m.connected(TxId(1), Point::ORIGIN, rx),
                base.connected(TxId(1), Point::ORIGIN, rx)
            );
        }
    }

    #[test]
    fn static_within_epoch() {
        let m = TimeVarying::new(IdealDisk::new(10.0), 0.3, 3).at_epoch(5);
        let rx = Point::new(9.5, 2.0);
        let first = m.connected(TxId(0), Point::ORIGIN, rx);
        for _ in 0..10 {
            assert_eq!(m.connected(TxId(0), Point::ORIGIN, rx), first);
        }
    }

    #[test]
    fn links_flicker_across_epochs() {
        let m = TimeVarying::new(IdealDisk::new(10.0), 0.3, 3);
        // Boundary-region receivers should change connectivity for some epoch.
        let rx = Point::new(9.8, 0.0);
        let base = m.at_epoch(0).connected(TxId(0), Point::ORIGIN, rx);
        let flipped = (1..50).any(|e| m.at_epoch(e).connected(TxId(0), Point::ORIGIN, rx) != base);
        assert!(flipped, "temporal jitter should flip a boundary link");
    }

    #[test]
    fn deep_core_links_stable() {
        // Links far inside range survive any jitter draw.
        let m = TimeVarying::new(IdealDisk::new(10.0), 0.2, 9);
        for e in 0..50 {
            assert!(m
                .at_epoch(e)
                .connected(TxId(0), Point::ORIGIN, Point::new(5.0, 0.0)));
        }
    }

    #[test]
    fn max_range_accounts_for_jitter() {
        let m = TimeVarying::new(IdealDisk::new(10.0), 0.25, 1);
        assert_eq!(m.max_range(TxId(0), Point::ORIGIN), 12.5);
        // Beyond the inflated bound, never connected at any epoch.
        for e in 0..50 {
            assert!(!m
                .at_epoch(e)
                .connected(TxId(0), Point::ORIGIN, Point::new(12.6, 0.0)));
        }
    }

    #[test]
    #[should_panic(expected = "temporal jitter")]
    fn rejects_jitter_of_one() {
        let _ = TimeVarying::new(IdealDisk::new(10.0), 1.0, 0);
    }
}
