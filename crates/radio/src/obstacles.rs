//! Line-segment obstacles (terrain features).
//!
//! The paper motivates adaptive placement with *terrain commonality*:
//! "uneven terrains and obstacles bring in an additional dimension of
//! uncertainty" (§1), and its future work plans "a more sophisticated
//! terrain map" (§6). [`Obstructed`] wraps any base propagation model with
//! a set of [`Wall`]s; each wall crossed by the line of sight shortens the
//! link's effective range by a multiplicative attenuation factor, creating
//! *spatially correlated* (not merely random) coverage holes that the
//! placement algorithms must adapt to.

use crate::{Propagation, TxId};
use abp_geom::{segments_intersect, Point, Segment};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A radio-opaque(ish) wall: a line segment with an attenuation factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// The wall's geometry.
    pub segment: Segment,
    /// Multiplicative range attenuation per crossing, in `(0, 1]`.
    ///
    /// `1.0` is transparent; `0.5` halves the effective range; values near
    /// `0` are effectively radio-opaque.
    pub attenuation: f64,
}

impl Wall {
    /// Creates a wall.
    ///
    /// # Panics
    ///
    /// Panics if `attenuation` is not in `(0, 1]` or the endpoints
    /// coincide.
    pub fn new(a: Point, b: Point, attenuation: f64) -> Self {
        assert!(
            attenuation > 0.0 && attenuation <= 1.0,
            "wall attenuation must be in (0, 1], got {attenuation}"
        );
        Wall {
            segment: Segment::new(a, b),
            attenuation,
        }
    }

    /// Returns `true` if the segment `p..q` crosses this wall.
    ///
    /// Touching an endpoint exactly counts as a crossing (conservative).
    pub fn blocks(&self, p: Point, q: Point) -> bool {
        segments_intersect(p, q, self.segment.a, self.segment.b)
    }
}

impl fmt::Display for Wall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wall {} (x{})", self.segment, self.attenuation)
    }
}

/// A base propagation model attenuated by walls.
///
/// A link from `tx_pos` to `rx` that crosses `k` walls with attenuations
/// `a_1..a_k` is connected iff the base model would connect a receiver at
/// distance `d / (a_1 · … · a_k)` — i.e. the obstruction inflates the
/// apparent distance.
///
/// # Example
///
/// ```
/// use abp_geom::Point;
/// use abp_radio::{IdealDisk, Obstructed, Propagation, TxId, Wall};
///
/// let wall = Wall::new(Point::new(5.0, -10.0), Point::new(5.0, 10.0), 0.5);
/// let m = Obstructed::new(IdealDisk::new(10.0), vec![wall]);
/// // 8 m away but through the wall: apparent distance 16 m > 10 m.
/// assert!(!m.connected(TxId(0), Point::new(0.0, 0.0), Point::new(8.0, 0.0)));
/// // Same distance, no wall in between:
/// assert!(m.connected(TxId(0), Point::new(0.0, 0.0), Point::new(0.0, 8.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Obstructed<M> {
    base: M,
    walls: Vec<Wall>,
}

impl<M: Propagation> Obstructed<M> {
    /// Wraps `base` with a set of walls.
    pub fn new(base: M, walls: Vec<Wall>) -> Self {
        Obstructed { base, walls }
    }

    /// The wrapped model.
    pub fn base(&self) -> &M {
        &self.base
    }

    /// The walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// Combined attenuation of all walls crossed by the segment `p..q`.
    pub fn attenuation_along(&self, p: Point, q: Point) -> f64 {
        self.walls
            .iter()
            .filter(|w| w.blocks(p, q))
            .map(|w| w.attenuation)
            .product()
    }
}

impl<M: Propagation> Propagation for Obstructed<M> {
    fn connected(&self, tx: TxId, tx_pos: Point, rx: Point) -> bool {
        let att = self.attenuation_along(tx_pos, rx);
        if att >= 1.0 {
            return self.base.connected(tx, tx_pos, rx);
        }
        // Inflate apparent distance: place a virtual receiver along the
        // same ray at d/att and ask the base model.
        let d = tx_pos.distance(rx);
        if d == 0.0 {
            return self.base.connected(tx, tx_pos, rx);
        }
        let virtual_rx = tx_pos + (rx - tx_pos) * (1.0 / att);
        self.base.connected(tx, tx_pos, virtual_rx)
    }

    fn max_range(&self, tx: TxId, tx_pos: Point) -> f64 {
        // Walls only ever shorten links.
        self.base.max_range(tx, tx_pos)
    }

    fn nominal_range(&self) -> f64 {
        self.base.nominal_range()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdealDisk;

    fn vertical_wall(x: f64, att: f64) -> Wall {
        Wall::new(Point::new(x, -100.0), Point::new(x, 100.0), att)
    }

    #[test]
    fn segment_intersection_basics() {
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0)
        ));
        assert!(!segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0)
        ));
        // Touching endpoint counts.
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0)
        ));
    }

    #[test]
    fn wall_blocks_crossing_links() {
        let w = vertical_wall(5.0, 0.5);
        assert!(w.blocks(Point::new(0.0, 0.0), Point::new(10.0, 0.0)));
        assert!(!w.blocks(Point::new(0.0, 0.0), Point::new(4.0, 0.0)));
    }

    #[test]
    fn attenuation_compounds_across_walls() {
        let m = Obstructed::new(
            IdealDisk::new(10.0),
            vec![vertical_wall(2.0, 0.5), vertical_wall(4.0, 0.5)],
        );
        assert_eq!(
            m.attenuation_along(Point::new(0.0, 0.0), Point::new(6.0, 0.0)),
            0.25
        );
        // 3 m away through both walls: apparent 12 m > 10 m.
        assert!(!m.connected(TxId(0), Point::new(0.0, 0.0), Point::new(6.0, 0.0)));
        // 2.4 m apparent distance 9.6 <= 10: connected.
        assert!(m.connected(TxId(0), Point::new(0.0, 0.0), Point::new(2.4, 0.0)));
    }

    #[test]
    fn transparent_world_matches_base() {
        let base = IdealDisk::new(12.0);
        let m = Obstructed::new(base, vec![]);
        for k in 0..100 {
            let rx = Point::new(k as f64 * 0.3, (k % 7) as f64);
            assert_eq!(
                m.connected(TxId(0), Point::ORIGIN, rx),
                base.connected(TxId(0), Point::ORIGIN, rx)
            );
        }
    }

    #[test]
    fn max_range_still_bounds() {
        let m = Obstructed::new(IdealDisk::new(10.0), vec![vertical_wall(1.0, 0.1)]);
        assert_eq!(m.max_range(TxId(0), Point::ORIGIN), 10.0);
        // Everything beyond base range must be disconnected, wall or not.
        assert!(!m.connected(TxId(0), Point::ORIGIN, Point::new(10.5, 0.0)));
    }

    #[test]
    fn coincident_points_connected() {
        let m = Obstructed::new(IdealDisk::new(10.0), vec![vertical_wall(1.0, 0.5)]);
        assert!(m.connected(TxId(0), Point::new(3.0, 3.0), Point::new(3.0, 3.0)));
    }

    #[test]
    #[should_panic(expected = "wall attenuation")]
    fn rejects_zero_attenuation() {
        let _ = Wall::new(Point::ORIGIN, Point::new(1.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn rejects_degenerate_wall() {
        let _ = Wall::new(Point::ORIGIN, Point::ORIGIN, 0.5);
    }
}
