//! The paper's idealized radio model (§2.1).

use crate::{Propagation, TxId};
use abp_geom::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Idealized radio: perfect circular propagation with identical range `R`
/// for every transmitter — connectivity for distances `<= R`, none beyond.
///
/// The paper uses this model to derive bounds on localization quality and
/// as the `Noise = 0` case of every experiment.
///
/// # Example
///
/// ```
/// use abp_geom::Point;
/// use abp_radio::{IdealDisk, Propagation, TxId};
///
/// let m = IdealDisk::new(15.0);
/// assert!(m.connected(TxId(3), Point::ORIGIN, Point::new(9.0, 12.0))); // d = 15
/// assert!(!m.connected(TxId(3), Point::ORIGIN, Point::new(9.1, 12.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdealDisk {
    range: f64,
}

impl IdealDisk {
    /// Creates the model with nominal range `range` (the paper's `R`).
    ///
    /// # Panics
    ///
    /// Panics if `range` is not finite and strictly positive.
    pub fn new(range: f64) -> Self {
        assert!(
            range.is_finite() && range > 0.0,
            "radio range must be finite and positive, got {range}"
        );
        IdealDisk { range }
    }

    /// The configured range `R`.
    #[inline]
    pub fn range(&self) -> f64 {
        self.range
    }
}

impl Propagation for IdealDisk {
    #[inline]
    fn connected(&self, _tx: TxId, tx_pos: Point, rx: Point) -> bool {
        tx_pos.distance_squared(rx) <= self.range * self.range
    }

    #[inline]
    fn max_range(&self, _tx: TxId, _tx_pos: Point) -> f64 {
        self.range
    }

    #[inline]
    fn nominal_range(&self) -> f64 {
        self.range
    }

    /// Connectivity *is* the sharp range-`R` disk: `connected` is
    /// implemented as `distance_squared(rx) <= range * range`, exactly
    /// the comparison the `disk_exact` contract requires.
    #[inline]
    fn disk_exact(&self) -> bool {
        true
    }
}

impl fmt::Display for IdealDisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ideal disk (R = {} m)", self.range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_is_connected() {
        let m = IdealDisk::new(10.0);
        assert!(m.connected(TxId(0), Point::ORIGIN, Point::new(10.0, 0.0)));
        assert!(m.connected(TxId(0), Point::ORIGIN, Point::ORIGIN));
        assert!(!m.connected(TxId(0), Point::ORIGIN, Point::new(10.0001, 0.0)));
    }

    #[test]
    fn independent_of_txid() {
        let m = IdealDisk::new(5.0);
        let rx = Point::new(3.0, 0.0);
        assert_eq!(
            m.connected(TxId(0), Point::ORIGIN, rx),
            m.connected(TxId(99), Point::ORIGIN, rx)
        );
    }

    #[test]
    fn symmetric_links() {
        // With identical ranges the link is symmetric: a hears b iff b hears a.
        let m = IdealDisk::new(7.0);
        let a = Point::new(1.0, 2.0);
        let b = Point::new(6.0, 5.0);
        assert_eq!(m.connected(TxId(0), a, b), m.connected(TxId(1), b, a));
    }

    #[test]
    fn max_range_bounds_connectivity() {
        let m = IdealDisk::new(12.5);
        assert_eq!(m.max_range(TxId(0), Point::ORIGIN), 12.5);
        assert_eq!(m.nominal_range(), 12.5);
    }

    #[test]
    fn disk_exact_matches_connected_everywhere() {
        let m = IdealDisk::new(9.0);
        assert!(m.disk_exact());
        // The contract: connected <=> distance_squared <= max_range^2,
        // including at the boundary.
        for &(x, y) in &[(9.0, 0.0), (8.999, 0.0), (9.001, 0.0), (6.3, 6.4)] {
            let rx = Point::new(x, y);
            let r = m.max_range(TxId(1), Point::ORIGIN);
            assert_eq!(
                m.connected(TxId(1), Point::ORIGIN, rx),
                Point::ORIGIN.distance_squared(rx) <= r * r,
                "at ({x}, {y})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "radio range")]
    fn rejects_nonpositive_range() {
        let _ = IdealDisk::new(0.0);
    }
}
