//! Property-based tests for the survey substrate.

use abp_field::BeaconField;
use abp_geom::{Lattice, Point, Terrain};
use abp_localize::{CentroidLocalizer, Localizer, UnheardPolicy};
use abp_radio::{IdealDisk, PerBeaconNoise, Propagation, TxId};
use abp_survey::snapshot::{decode, encode};
use abp_survey::{ErrorMap, Robot, SurveyPlan, SurveyScratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIDE: f64 = 60.0;

fn terrain() -> Terrain {
    Terrain::square(SIDE)
}

fn setup(n: usize, seed: u64, noise: f64, step: f64) -> (Lattice, BeaconField, PerBeaconNoise) {
    let lattice = Lattice::new(terrain(), step);
    let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
    let model = PerBeaconNoise::new(12.0, noise, seed ^ 0xABCD);
    (lattice, field, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn survey_agrees_with_point_localizer(
        n in 0usize..40, seed in any::<u64>(), noise in 0.0..0.6f64
    ) {
        let (lattice, field, model) = setup(n, seed, noise, 6.0);
        let fast = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let loc = CentroidLocalizer::new(UnheardPolicy::TerrainCenter);
        for ix in lattice.indices() {
            let p = lattice.point(ix);
            let fix = loc.localize(&field, &model, p);
            let expected = fix.error(p).unwrap();
            let got = fast.error_at(ix).unwrap();
            prop_assert!((got - expected).abs() < 1e-9, "{ix}: {got} vs {expected}");
            prop_assert_eq!(fast.heard_at(ix) as usize, fix.heard);
        }
    }

    #[test]
    fn incremental_add_equals_full_survey(
        n in 0usize..40, seed in any::<u64>(), noise in 0.0..0.6f64,
        bx in 0.0..SIDE, by in 0.0..SIDE
    ) {
        let (lattice, mut field, model) = setup(n, seed, noise, 4.0);
        let mut incremental =
            ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let id = field.add_beacon(Point::new(bx, by));
        incremental.add_beacon(field.get(id).unwrap(), &model);
        let full = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        for ix in lattice.indices() {
            prop_assert_eq!(incremental.heard_at(ix), full.heard_at(ix));
            let (a, b) = (incremental.error_at(ix).unwrap(), full.error_at(ix).unwrap());
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn add_then_remove_is_identity(
        n in 0usize..30, seed in any::<u64>(), bx in 0.0..SIDE, by in 0.0..SIDE
    ) {
        let (lattice, mut field, model) = setup(n, seed, 0.3, 5.0);
        let baseline = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let id = field.add_beacon(Point::new(bx, by));
        let beacon = *field.get(id).unwrap();
        let mut map = baseline.clone();
        map.add_beacon(&beacon, &model);
        map.remove_beacon(&beacon, &model);
        for ix in lattice.indices() {
            prop_assert_eq!(map.heard_at(ix), baseline.heard_at(ix));
            let (a, b) = (map.error_at(ix).unwrap(), baseline.error_at(ix).unwrap());
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn error_bounds_under_ideal_model(n in 1usize..50, seed in any::<u64>()) {
        let (lattice, field, _) = setup(n, seed, 0.0, 3.0);
        let model = IdealDisk::new(12.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::Exclude);
        for ix in lattice.indices() {
            if map.heard_at(ix) == 1 {
                // Exactly one heard beacon: the error is that beacon's
                // distance, bounded by R.
                prop_assert!(map.error_at(ix).unwrap() <= 12.0 + 1e-9);
            }
        }
    }

    #[test]
    fn statistics_are_consistent(n in 1usize..60, seed in any::<u64>(), noise in 0.0..0.6f64) {
        let (lattice, field, model) = setup(n.max(1), seed, noise, 4.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let s = map.summary();
        prop_assert!((map.mean_error() - s.mean()).abs() < 1e-9);
        prop_assert!((map.median_error() - s.median()).abs() < 1e-9);
        prop_assert!(s.min() >= 0.0);
        let (_, max_e) = map.max_error_point().unwrap();
        prop_assert!((max_e - s.max()).abs() < 1e-12);
    }

    #[test]
    fn snapshot_roundtrip(n in 0usize..40, seed in any::<u64>(), noise in 0.0..0.6f64) {
        let (lattice, field, model) = setup(n, seed, noise, 5.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let restored = decode(&encode(&map)).unwrap();
        prop_assert_eq!(&restored, &map);
    }

    #[test]
    fn robot_with_perfect_gps_matches_survey(n in 0usize..30, seed in any::<u64>()) {
        let (lattice, field, model) = setup(n, seed, 0.2, 6.0);
        let plan = SurveyPlan::from_lattice(lattice);
        let (robot_map, report) = Robot::new(0.0, 0, seed)
            .survey(&plan, &field, &model, UnheardPolicy::TerrainCenter);
        let fast = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        prop_assert_eq!(report.waypoints, lattice.len());
        for ix in lattice.indices() {
            let (a, b) = (robot_map.error_at(ix).unwrap(), fast.error_at(ix).unwrap());
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn adding_beacons_weakly_improves_coverage(
        n in 0usize..30, seed in any::<u64>(), bx in 0.0..SIDE, by in 0.0..SIDE
    ) {
        let (lattice, mut field, _) = setup(n, seed, 0.0, 4.0);
        let model = IdealDisk::new(12.0);
        let before = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let id = field.add_beacon(Point::new(bx, by));
        let mut after = before.clone();
        after.add_beacon(field.get(id).unwrap(), &model);
        prop_assert!(after.unheard_count() <= before.unheard_count());
    }
}

/// A sharp-disk model whose reach varies per beacon — even tx ids are
/// mute (reach 0), odd ids hear out to `range`. `disk_exact` so the
/// tiled SoA sweep takes over, with reach² = 0 lanes in the kernel.
#[derive(Debug, Clone, Copy)]
struct VariableDisk {
    range: f64,
}

impl Propagation for VariableDisk {
    fn connected(&self, tx: TxId, tx_pos: Point, rx: Point) -> bool {
        let r = self.max_range(tx, tx_pos);
        // The disk_exact contract's squared form, verbatim.
        tx_pos.distance_squared(rx) <= r * r
    }
    fn max_range(&self, tx: TxId, _tx_pos: Point) -> f64 {
        if tx.0 % 2 == 0 {
            0.0
        } else {
            self.range
        }
    }
    fn nominal_range(&self) -> f64 {
        self.range
    }
    fn disk_exact(&self) -> bool {
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tiled structure-of-arrays disk sweep (the `disk_exact` path
    /// inside `survey_indexed_with`) hears exactly the same beacon sets
    /// as the scalar per-point walk, bit for bit — on random fields,
    /// with mute (reach = 0) beacons in the SoA lanes, and with
    /// beacons snapped onto lattice points and exactly `range` away
    /// from one so distance² == reach² lands on the `<=` boundary.
    #[test]
    fn tiled_soa_sweep_matches_scalar_disk_path(
        n in 0usize..40, seed in any::<u64>(),
        range in 0.5..20.0f64, step_ix in 0usize..3,
        bx in 0.0..SIDE, by in 0.0..SIDE
    ) {
        let step = [1.5, 3.0, 6.0][step_ix];
        let lattice = Lattice::new(terrain(), step);
        let mut field =
            BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let snapped = Point::new((bx / step).floor() * step, (by / step).floor() * step);
        field.add_beacon(snapped);
        if snapped.x + range <= SIDE {
            field.add_beacon(Point::new(snapped.x + range, snapped.y));
        }
        let ideal = IdealDisk::new(range);
        let variable = VariableDisk { range };
        for model in [&ideal as &dyn Propagation, &variable] {
            for policy in [UnheardPolicy::TerrainCenter, UnheardPolicy::Exclude] {
                let scalar = ErrorMap::survey(&lattice, &field, &model, policy);
                let mut scratch = SurveyScratch::new();
                let tiled =
                    ErrorMap::survey_indexed_with(&lattice, &field, &model, policy, &mut scratch);
                for ix in lattice.indices() {
                    prop_assert_eq!(tiled.heard_at(ix), scalar.heard_at(ix));
                    prop_assert_eq!(
                        tiled.error_at(ix).map(f64::to_bits),
                        scalar.error_at(ix).map(f64::to_bits)
                    );
                }
            }
        }
    }

    /// The explicit-width SIMD kernel (`sweep_lanes`) folds accepted
    /// lanes in ascending index order, so it must match the scalar walk
    /// bit for bit on any candidate list: lengths not divisible by the
    /// lane width (the scalar tail), the empty list, mute lanes with
    /// reach² = 0, and a candidate exactly `range` away so distance²
    /// == reach² lands on the `<=` acceptance boundary.
    #[test]
    fn wide_kernel_matches_scalar_for_any_candidate_count(
        n in 0usize..35, seed in any::<u64>(), range in 0.5..12.0f64,
        px in 0.0..SIDE, py in 0.0..SIDE,
        with_boundary in any::<bool>(), with_mute in any::<bool>()
    ) {
        use abp_survey::lanes::{sweep_lanes, sweep_scalar};
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n + 1);
        let mut ys = Vec::with_capacity(n + 1);
        let mut r2 = Vec::with_capacity(n + 1);
        for i in 0..n {
            xs.push(rng.random::<f64>() * SIDE);
            ys.push(rng.random::<f64>() * SIDE);
            r2.push(if with_mute && i % 3 == 0 { 0.0 } else { range * range });
        }
        if with_boundary {
            // A lane whose reach² equals its distance² bit for bit
            // (dy = 0, so the kernel computes exactly dx*dx),
            // exercising the `<=` rather than `<` contract.
            let bx = px + range;
            let dx = bx - px;
            xs.push(bx);
            ys.push(py);
            r2.push(dx * dx);
        }
        let wide = sweep_lanes(px, py, &xs, &ys, &r2);
        let scalar = sweep_scalar(px, py, &xs, &ys, &r2);
        prop_assert_eq!(wide.0.to_bits(), scalar.0.to_bits(), "sum_x");
        prop_assert_eq!(wide.1.to_bits(), scalar.1.to_bits(), "sum_y");
        prop_assert_eq!(wide.2, scalar.2, "heard count");
        if with_boundary {
            prop_assert!(wide.2 >= 1, "the boundary candidate must be heard");
        }
    }

    /// The tile scheduler's row-band decomposition keeps every
    /// per-point accumulation self-contained, so the surveyed map is
    /// bit-identical at any worker count — on both the SoA disk path
    /// (IdealDisk) and the oracle path (PerBeaconNoise).
    #[test]
    fn threaded_survey_bit_identical_at_any_thread_count(
        n in 0usize..30, seed in any::<u64>(), noise in 0.0..0.5f64,
        threads in 2usize..6
    ) {
        let (lattice, field, noisy) = setup(n, seed, noise, 4.0);
        let ideal = IdealDisk::new(12.0);
        for model in [&ideal as &dyn Propagation, &noisy] {
            let mut seq_scratch = SurveyScratch::new();
            let mut par_scratch = SurveyScratch::new();
            let seq = ErrorMap::survey_indexed_with(
                &lattice, &field, &model, UnheardPolicy::TerrainCenter, &mut seq_scratch,
            );
            let par = ErrorMap::survey_indexed_with_threads(
                &lattice, &field, &model, UnheardPolicy::TerrainCenter,
                &mut par_scratch, threads,
            );
            for ix in lattice.indices() {
                prop_assert_eq!(par.heard_at(ix), seq.heard_at(ix));
                prop_assert_eq!(
                    par.error_at(ix).map(f64::to_bits),
                    seq.error_at(ix).map(f64::to_bits)
                );
            }
        }
    }

    #[test]
    fn partial_survey_subset_of_full(
        n in 0usize..30, seed in any::<u64>(), fraction in 0.05..1.0f64
    ) {
        use abp_survey::sampling::{survey_partial, SubsampleStrategy};
        let (lattice, field, model) = setup(n, seed, 0.2, 6.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let partial = survey_partial(
            &lattice, &field, &model, UnheardPolicy::TerrainCenter,
            SubsampleStrategy::Random { fraction }, &mut rng,
        );
        let full = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let expected = ((lattice.len() as f64 * fraction).round() as usize).clamp(1, lattice.len());
        prop_assert_eq!(partial.valid_count(), expected);
        for ix in lattice.indices() {
            if let Some(e) = partial.error_at(ix) {
                prop_assert_eq!(e, full.error_at(ix).unwrap());
            }
        }
    }

    #[test]
    fn adaptive_survey_accounting_consistent(
        n in 0usize..30, seed in any::<u64>(), stride in 2u32..6, refine in 0.0..=1.0f64
    ) {
        use abp_survey::sampling::survey_adaptive;
        let (lattice, field, model) = setup(n, seed, 0.0, 4.0);
        let (map, report) = survey_adaptive(
            &lattice, &field, &model, UnheardPolicy::TerrainCenter, stride, refine,
        );
        prop_assert_eq!(
            map.valid_count(),
            report.coarse_measured + report.refined_measured
        );
        prop_assert!(report.measured_fraction > 0.0 && report.measured_fraction <= 1.0);
        // More refinement never measures less.
        let (_, fuller) = survey_adaptive(
            &lattice, &field, &model, UnheardPolicy::TerrainCenter, stride,
            (refine + 0.3).min(1.0),
        );
        prop_assert!(fuller.refined_measured >= report.refined_measured);
    }

    #[test]
    fn heatmap_renders_for_any_map(
        n in 0usize..30, seed in any::<u64>(), width in 2usize..100
    ) {
        use abp_survey::render::{render_heatmap, HeatmapOptions};
        let (lattice, field, model) = setup(n, seed, 0.3, 6.0);
        let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let art = render_heatmap(&map, Some(&field), HeatmapOptions {
            width,
            scale_max: None,
            show_beacons: true,
        });
        let lines: Vec<&str> = art.lines().collect();
        prop_assert_eq!(lines.len(), (width / 2).max(1) + 1);
        for l in &lines[..lines.len() - 1] {
            prop_assert_eq!(l.len(), width);
            prop_assert!(l.is_ascii());
        }
    }
}
