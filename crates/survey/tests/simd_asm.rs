//! Golden-assembly gate for the disk-sweep SIMD kernel.
//!
//! `crates/survey/src/lanes.rs` is written so the autovectorizer
//! provably lifts its `[f64; LANES]` blocks into packed SIMD — no
//! intrinsics, no `std::simd`, no target features beyond baseline
//! x86-64 (SSE2 guarantees `mulpd`/`cmplepd`). This test compiles the
//! module standalone (it is deliberately dependency-free for exactly
//! this reason) at `-O` and fails if the emitted assembly has no
//! packed double multiply or no packed double compare: the moment a
//! refactor breaks vectorization, CI says so instead of the kernel
//! silently degrading to scalar.
//!
//! Gated to x86_64 hosts — the instruction mnemonics are ISA-specific.

#![cfg(target_arch = "x86_64")]

use std::path::PathBuf;
use std::process::Command;

#[test]
fn disk_sweep_kernel_emits_packed_simd() {
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src/lanes.rs");
    let out_dir = std::env::temp_dir().join(format!("abp-lanes-asm-{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).expect("create asm scratch dir");
    let asm_path = out_dir.join("lanes.s");
    // Edition 2021 matters: rustc's standalone default is 2015, under
    // which the module does not parse the same way Cargo builds it.
    let output = Command::new("rustc")
        .args([
            "--edition",
            "2021",
            "-O",
            "--crate-type",
            "lib",
            "--emit",
            "asm",
            "-o",
        ])
        .arg(&asm_path)
        .arg(&src)
        .output()
        .expect("rustc must be invocable from the test environment");
    assert!(
        output.status.success(),
        "standalone compile of lanes.rs failed — the module must stay \
         dependency-free so this gate can build it:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let asm = std::fs::read_to_string(&asm_path).expect("read emitted assembly");
    let _ = std::fs::remove_dir_all(&out_dir);
    let packed_mul = asm.contains("mulpd") || asm.contains("vmulpd");
    // `cmppd` with an immediate covers the AVX spelling `vcmppd` and
    // the SSE forms `cmplepd`/`cmpnltpd` the predicate can lower to.
    let packed_cmp = ["cmplepd", "cmpnltpd", "vcmppd", "cmppd"]
        .iter()
        .any(|m| asm.contains(m));
    assert!(
        packed_mul,
        "no packed f64 multiply in the optimized kernel — the \
         autovectorizer no longer lifts the [f64; LANES] blocks"
    );
    assert!(
        packed_cmp,
        "no packed f64 compare in the optimized kernel — the membership \
         mask is being computed lane by lane"
    );
}
