//! Partial terrain exploration.
//!
//! The paper's algorithms assume "an off-line algorithm with **complete
//! terrain exploration** and no measurement noise" and note they are
//! "currently working on ways to generalize these solutions" (§3.1). This
//! module provides the generalization on the survey side: error maps built
//! from a *subset* of the lattice, so the placement algorithms can be
//! driven by cheaper, incomplete exploration:
//!
//! * [`SubsampleStrategy::Random`] — measure a random fraction of the
//!   lattice (a robot with limited time wandering the terrain),
//! * [`SubsampleStrategy::Stride`] — measure every `k`-th row and column
//!   (a coarser boustrophedon sweep),
//!
//! Unmeasured points are simply *excluded* from the resulting map — the
//! honest representation of "we did not go there". The
//! `abp_sim::experiments::robustness` experiment quantifies how much
//! placement quality degrades with exploration fraction.

use crate::errormap::ErrorMap;
use abp_field::BeaconField;
use abp_geom::Lattice;
use abp_localize::UnheardPolicy;
use abp_radio::Propagation;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which lattice points a partial survey measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SubsampleStrategy {
    /// Measure a uniformly random fraction of the lattice, in `(0, 1]`.
    Random {
        /// Fraction of lattice points measured.
        fraction: f64,
    },
    /// Measure every `stride`-th column of every `stride`-th row.
    Stride {
        /// Step multiplier; `1` measures everything.
        stride: u32,
    },
}

impl SubsampleStrategy {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `(0, 1]` or the stride is zero.
    fn validate(self) {
        match self {
            SubsampleStrategy::Random { fraction } => assert!(
                fraction > 0.0 && fraction <= 1.0,
                "survey fraction must be in (0, 1], got {fraction}"
            ),
            SubsampleStrategy::Stride { stride } => {
                assert!(stride >= 1, "stride must be at least 1")
            }
        }
    }
}

/// Surveys only the lattice points selected by `strategy`; everything
/// else is excluded from the map (as under [`UnheardPolicy::Exclude`]).
///
/// Measured points follow `policy` as usual. The sweep is still
/// beacon-major; masking happens at error-derivation time, so the cost
/// saving models *measurement* effort (the robot's walk), not simulation
/// time.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Lattice, Point, Terrain};
/// use abp_localize::UnheardPolicy;
/// use abp_radio::IdealDisk;
/// use abp_survey::sampling::{survey_partial, SubsampleStrategy};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let terrain = Terrain::square(100.0);
/// let lattice = Lattice::new(terrain, 5.0);
/// let field = BeaconField::from_positions(terrain, [Point::new(50.0, 50.0)]);
/// let mut rng = StdRng::seed_from_u64(1);
/// let map = survey_partial(
///     &lattice, &field, &IdealDisk::new(15.0), UnheardPolicy::TerrainCenter,
///     SubsampleStrategy::Random { fraction: 0.25 }, &mut rng,
/// );
/// let quarter = lattice.len() / 4;
/// assert!(map.valid_count().abs_diff(quarter) <= 1);
/// ```
pub fn survey_partial<R: Rng + ?Sized>(
    lattice: &Lattice,
    field: &BeaconField,
    model: &dyn Propagation,
    policy: UnheardPolicy,
    strategy: SubsampleStrategy,
    rng: &mut R,
) -> ErrorMap {
    strategy.validate();
    let full = ErrorMap::survey(lattice, field, model, policy);
    let mask = measurement_mask(lattice, strategy, rng);
    mask_map(&full, &mask)
}

/// The boolean measurement mask a strategy induces on a lattice
/// (row-major; `true` = measured).
pub fn measurement_mask<R: Rng + ?Sized>(
    lattice: &Lattice,
    strategy: SubsampleStrategy,
    rng: &mut R,
) -> Vec<bool> {
    strategy.validate();
    let n = lattice.len();
    match strategy {
        SubsampleStrategy::Random { fraction } => {
            let k = ((n as f64 * fraction).round() as usize).clamp(1, n);
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(rng);
            let mut mask = vec![false; n];
            for &i in &order[..k] {
                mask[i] = true;
            }
            mask
        }
        SubsampleStrategy::Stride { stride } => lattice
            .indices()
            .map(|ix| ix.i % stride == 0 && ix.j % stride == 0)
            .collect(),
    }
}

/// Applies a measurement mask to a fully surveyed map: unmeasured points
/// become excluded (their accumulators are kept so incremental updates on
/// the *measured* points remain exact).
pub fn mask_map(map: &ErrorMap, mask: &[bool]) -> ErrorMap {
    assert_eq!(
        mask.len(),
        map.len(),
        "mask length {} does not match map size {}",
        mask.len(),
        map.len()
    );
    let (sum_x, sum_y, count, errors) = map.parts();
    let masked_errors: Vec<f64> = errors
        .iter()
        .zip(mask)
        .map(|(&e, &measured)| if measured { e } else { f64::NAN })
        .collect();
    ErrorMap::from_parts(
        *map.lattice(),
        map.policy(),
        sum_x.to_vec(),
        sum_y.to_vec(),
        count.to_vec(),
        masked_errors,
    )
}

/// Report of an adaptive coarse-to-fine survey.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSurveyReport {
    /// Lattice points measured in the coarse pass.
    pub coarse_measured: usize,
    /// Additional points measured during refinement.
    pub refined_measured: usize,
    /// Fraction of the lattice measured in total.
    pub measured_fraction: f64,
}

/// Adaptive coarse-to-fine exploration: measure every `stride`-th point
/// first, then fully refine the `refine_fraction` of coarse cells with
/// the worst measured error.
///
/// This is the survey a time-limited robot would actually run: one cheap
/// sweep to find the bad regions, then detailed measurement only where
/// the placement decision will be made. Returns the resulting (partial)
/// map and a measurement accounting.
///
/// # Panics
///
/// Panics if `stride < 2` (nothing to refine) or `refine_fraction` is
/// outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Lattice, Point, Terrain};
/// use abp_localize::UnheardPolicy;
/// use abp_radio::IdealDisk;
/// use abp_survey::sampling::survey_adaptive;
///
/// let terrain = Terrain::square(100.0);
/// let lattice = Lattice::new(terrain, 2.0);
/// let field = BeaconField::from_positions(terrain, [Point::new(20.0, 20.0)]);
/// let (map, report) = survey_adaptive(
///     &lattice, &field, &IdealDisk::new(15.0), UnheardPolicy::TerrainCenter,
///     4, 0.25,
/// );
/// assert!(report.measured_fraction < 0.5); // far less than a full sweep
/// assert!(map.valid_count() > 0);
/// ```
pub fn survey_adaptive(
    lattice: &Lattice,
    field: &BeaconField,
    model: &dyn Propagation,
    policy: UnheardPolicy,
    stride: u32,
    refine_fraction: f64,
) -> (ErrorMap, AdaptiveSurveyReport) {
    assert!(
        stride >= 2,
        "adaptive survey needs stride >= 2, got {stride}"
    );
    assert!(
        (0.0..=1.0).contains(&refine_fraction),
        "refine fraction must be in [0, 1], got {refine_fraction}"
    );
    let full = ErrorMap::survey(lattice, field, model, policy);
    let n = lattice.len();
    let mut mask = vec![false; n];
    // Coarse pass.
    let mut coarse_measured = 0usize;
    for ix in lattice.indices() {
        if ix.i % stride == 0 && ix.j % stride == 0 {
            mask[lattice.flat(ix)] = true;
            coarse_measured += 1;
        }
    }
    // Score each stride x stride cell by its measured corner's error and
    // refine the worst ones. Cells are anchored at the coarse points.
    let mut cells: Vec<(f64, u32, u32)> = Vec::new();
    let per_side = lattice.per_side();
    let mut j = 0;
    while j < per_side {
        let mut i = 0;
        while i < per_side {
            let ix = abp_geom::LatticeIndex::new(i, j);
            if let Some(e) = full.error_at(ix) {
                cells.push((e, i, j));
            }
            i += stride;
        }
        j += stride;
    }
    cells.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite errors"));
    let refine_count = ((cells.len() as f64) * refine_fraction).round() as usize;
    let mut refined_measured = 0usize;
    for &(_, ci, cj) in cells.iter().take(refine_count) {
        for dj in 0..stride {
            for di in 0..stride {
                let (i, j) = (ci + di, cj + dj);
                if i < per_side && j < per_side {
                    let flat = lattice.flat(abp_geom::LatticeIndex::new(i, j));
                    if !mask[flat] {
                        mask[flat] = true;
                        refined_measured += 1;
                    }
                }
            }
        }
    }
    let map = mask_map(&full, &mask);
    let report = AdaptiveSurveyReport {
        coarse_measured,
        refined_measured,
        measured_fraction: (coarse_measured + refined_measured) as f64 / n as f64,
    };
    (map, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::{Point, Terrain};
    use abp_radio::IdealDisk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Lattice, BeaconField, IdealDisk) {
        let terrain = Terrain::square(100.0);
        let lattice = Lattice::new(terrain, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let field = BeaconField::random_uniform(30, terrain, &mut rng);
        (lattice, field, IdealDisk::new(15.0))
    }

    #[test]
    fn full_fraction_equals_complete_survey() {
        let (lattice, field, model) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let partial = survey_partial(
            &lattice,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            SubsampleStrategy::Random { fraction: 1.0 },
            &mut rng,
        );
        let full = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        assert_eq!(partial.valid_count(), full.valid_count());
        assert!((partial.mean_error() - full.mean_error()).abs() < 1e-12);
    }

    #[test]
    fn random_fraction_measures_expected_count() {
        let (lattice, field, model) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        for fraction in [0.1, 0.5, 0.9] {
            let map = survey_partial(
                &lattice,
                &field,
                &model,
                UnheardPolicy::TerrainCenter,
                SubsampleStrategy::Random { fraction },
                &mut rng,
            );
            let expected = (lattice.len() as f64 * fraction).round() as usize;
            assert_eq!(map.valid_count(), expected);
        }
    }

    #[test]
    fn stride_keeps_coarser_lattice() {
        let (lattice, field, model) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let map = survey_partial(
            &lattice,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            SubsampleStrategy::Stride { stride: 3 },
            &mut rng,
        );
        // 21 points per side at step 5; every 3rd -> indices 0,3,..,18 = 7.
        assert_eq!(map.valid_count(), 49);
        // Measured values agree with the full survey at the same points.
        let full = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        for ix in lattice.indices() {
            match map.error_at(ix) {
                Some(e) => assert_eq!(e, full.error_at(ix).unwrap()),
                None => assert!(ix.i % 3 != 0 || ix.j % 3 != 0),
            }
        }
    }

    #[test]
    fn sampled_mean_approximates_full_mean() {
        let (lattice, field, model) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let full = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let map = survey_partial(
            &lattice,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            SubsampleStrategy::Random { fraction: 0.5 },
            &mut rng,
        );
        assert!((map.mean_error() - full.mean_error()).abs() < 1.0);
    }

    #[test]
    fn masked_map_still_supports_incremental_update() {
        let (lattice, mut field, model) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let mut map = survey_partial(
            &lattice,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            SubsampleStrategy::Stride { stride: 2 },
            &mut rng,
        );
        let id = field.add_beacon(Point::new(50.0, 50.0));
        map.add_beacon(field.get(id).unwrap(), &model);
        // Measured points now match a full survey of the extended field.
        let full = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        for ix in lattice.indices() {
            if ix.i % 2 == 0 && ix.j % 2 == 0 {
                let (a, b) = (map.error_at(ix).unwrap(), full.error_at(ix).unwrap());
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn adaptive_survey_measures_where_it_hurts() {
        let terrain = Terrain::square(100.0);
        let lattice = Lattice::new(terrain, 2.0);
        // Beacons only in the west: the east half is the bad region.
        let field = BeaconField::from_positions(
            terrain,
            (0..8).map(|k| Point::new(10.0 + (k % 2) as f64 * 15.0, 10.0 + (k / 2) as f64 * 25.0)),
        );
        let model = IdealDisk::new(15.0);
        let (map, report) = survey_adaptive(
            &lattice,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            5,
            0.3,
        );
        assert_eq!(
            map.valid_count(),
            report.coarse_measured + report.refined_measured
        );
        assert!(report.measured_fraction < 0.5);
        // Refined (fully measured) points concentrate in the worse half:
        // count non-coarse measured points east vs west.
        let mut east = 0;
        let mut west = 0;
        for ix in lattice.indices() {
            let coarse = ix.i % 5 == 0 && ix.j % 5 == 0;
            if !coarse && map.error_at(ix).is_some() {
                if lattice.point(ix).x > 50.0 {
                    east += 1;
                } else {
                    west += 1;
                }
            }
        }
        assert!(
            east > west,
            "refinement went west ({west}) not east ({east})"
        );
    }

    #[test]
    fn adaptive_survey_extremes() {
        let (lattice, field, model) = setup();
        // refine_fraction = 0: coarse only.
        let (map0, r0) = survey_adaptive(
            &lattice,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            3,
            0.0,
        );
        assert_eq!(r0.refined_measured, 0);
        assert_eq!(map0.valid_count(), r0.coarse_measured);
        // refine_fraction = 1: everything measured.
        let (map1, r1) = survey_adaptive(
            &lattice,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            3,
            1.0,
        );
        assert_eq!(map1.valid_count(), lattice.len());
        assert!((r1.measured_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "stride >= 2")]
    fn adaptive_rejects_stride_one() {
        let (lattice, field, model) = setup();
        let _ = survey_adaptive(
            &lattice,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            1,
            0.5,
        );
    }

    #[test]
    #[should_panic(expected = "survey fraction")]
    fn rejects_zero_fraction() {
        let (lattice, field, model) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let _ = survey_partial(
            &lattice,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            SubsampleStrategy::Random { fraction: 0.0 },
            &mut rng,
        );
    }
}
