//! ASCII rendering of error maps and beacon fields.
//!
//! The paper's figures visualize localization quality over the terrain;
//! this module provides the terminal equivalent: an error map as an ASCII
//! heatmap with beacons overlaid. Used by the CLI's `heatmap` command and
//! handy when debugging placement decisions.

use crate::errormap::ErrorMap;
use abp_field::BeaconField;
use abp_geom::{LatticeIndex, Point};

/// Intensity ramp, light to dark.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Options for [`render_heatmap`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatmapOptions {
    /// Character-grid width (height follows the terrain aspect ratio,
    /// halved to compensate for character cells being ~2x taller than
    /// wide).
    pub width: usize,
    /// Fixed intensity scale maximum in meters; `None` auto-scales to the
    /// map's largest error.
    pub scale_max: Option<f64>,
    /// Overlay `o` at beacon positions.
    pub show_beacons: bool,
}

impl Default for HeatmapOptions {
    fn default() -> Self {
        HeatmapOptions {
            width: 60,
            scale_max: None,
            show_beacons: true,
        }
    }
}

/// Renders an error map as an ASCII heatmap (darker = worse error),
/// optionally overlaying the beacon field, with a legend line.
///
/// Excluded (unmeasured) points render as `?`.
///
/// # Panics
///
/// Panics if `options.width < 2`.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Lattice, Point, Terrain};
/// use abp_localize::UnheardPolicy;
/// use abp_radio::IdealDisk;
/// use abp_survey::render::{render_heatmap, HeatmapOptions};
/// use abp_survey::ErrorMap;
///
/// let terrain = Terrain::square(100.0);
/// let lattice = Lattice::new(terrain, 5.0);
/// let field = BeaconField::from_positions(terrain, [Point::new(50.0, 50.0)]);
/// let map = ErrorMap::survey(&lattice, &field, &IdealDisk::new(15.0),
///                            UnheardPolicy::TerrainCenter);
/// let art = render_heatmap(&map, Some(&field), HeatmapOptions::default());
/// assert!(art.contains('o')); // the beacon
/// assert!(art.contains("error scale"));
/// ```
pub fn render_heatmap(
    map: &ErrorMap,
    field: Option<&BeaconField>,
    options: HeatmapOptions,
) -> String {
    assert!(options.width >= 2, "heatmap width must be at least 2");
    let lattice = map.lattice();
    let side = lattice.terrain().side();
    let width = options.width;
    let height = (width / 2).max(1);
    let max_e = options.scale_max.unwrap_or_else(|| {
        map.valid_errors()
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE)
    });

    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(height);
    // Render top row = max y, like a map.
    for r in 0..height {
        let y = side * (height - 1 - r) as f64 / (height - 1).max(1) as f64;
        let mut row = Vec::with_capacity(width);
        for c in 0..width {
            let x = side * c as f64 / (width - 1) as f64;
            let ix: LatticeIndex = lattice.nearest(Point::new(x, y));
            let ch = match map.error_at(ix) {
                None => b'?',
                Some(e) => {
                    let t = (e / max_e).clamp(0.0, 1.0);
                    RAMP[((t * (RAMP.len() - 1) as f64).round()) as usize]
                }
            };
            row.push(ch);
        }
        rows.push(row);
    }

    if options.show_beacons {
        if let Some(field) = field {
            for b in field {
                let c = ((b.pos().x / side) * (width - 1) as f64).round() as usize;
                let r_from_bottom =
                    ((b.pos().y / side) * (height - 1).max(1) as f64).round() as usize;
                let r = height - 1 - r_from_bottom.min(height - 1);
                rows[r][c.min(width - 1)] = b'o';
            }
        }
    }

    let mut out = String::with_capacity((width + 1) * height + 80);
    for row in rows {
        out.push_str(std::str::from_utf8(&row).expect("ASCII ramp"));
        out.push('\n');
    }
    out.push_str(&format!(
        "error scale: ' ' = 0 m .. '@' = {max_e:.2} m{}\n",
        if options.show_beacons && field.is_some() {
            ", 'o' = beacon"
        } else {
            ""
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::{Lattice, Terrain};
    use abp_localize::UnheardPolicy;
    use abp_radio::IdealDisk;

    fn sample() -> (ErrorMap, BeaconField) {
        let terrain = Terrain::square(100.0);
        let lattice = Lattice::new(terrain, 5.0);
        let field =
            BeaconField::from_positions(terrain, [Point::new(20.0, 20.0), Point::new(80.0, 80.0)]);
        let map = ErrorMap::survey(
            &lattice,
            &field,
            &IdealDisk::new(15.0),
            UnheardPolicy::TerrainCenter,
        );
        (map, field)
    }

    #[test]
    fn dimensions_match_options() {
        let (map, field) = sample();
        let art = render_heatmap(&map, Some(&field), HeatmapOptions::default());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 31); // 30 rows + legend
        assert!(lines[..30].iter().all(|l| l.len() == 60));
        assert!(lines[30].starts_with("error scale"));
    }

    /// The art rows only, legend dropped.
    fn art_rows(s: &str) -> String {
        s.lines()
            .filter(|l| !l.starts_with("error scale"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn beacons_render_as_o() {
        let (map, field) = sample();
        let art = render_heatmap(&map, Some(&field), HeatmapOptions::default());
        assert!(art_rows(&art).matches('o').count() >= 2);
        let without = render_heatmap(
            &map,
            Some(&field),
            HeatmapOptions {
                show_beacons: false,
                ..Default::default()
            },
        );
        assert!(!art_rows(&without).contains('o'));
    }

    #[test]
    fn good_areas_light_bad_areas_dark() {
        let (map, field) = sample();
        let art = render_heatmap(
            &map,
            None,
            HeatmapOptions {
                width: 20,
                scale_max: None,
                show_beacons: false,
            },
        );
        let lines: Vec<&str> = art.lines().collect();
        // Near the beacon at (20, 20): bottom-left area should be lighter
        // than the uncovered bottom-right corner.
        let bottom = lines[9]; // last art row (10 rows for width 20)
        let near_beacon = bottom.as_bytes()[4];
        let far_corner = bottom.as_bytes()[19];
        let rank = |c: u8| RAMP.iter().position(|&r| r == c).unwrap();
        assert!(rank(near_beacon) < rank(far_corner), "{art}");
        let _ = field;
    }

    #[test]
    fn excluded_points_render_questionmark() {
        let terrain = Terrain::square(100.0);
        let lattice = Lattice::new(terrain, 10.0);
        let field = BeaconField::from_positions(terrain, [Point::new(50.0, 50.0)]);
        let map = ErrorMap::survey(
            &lattice,
            &field,
            &IdealDisk::new(15.0),
            UnheardPolicy::Exclude,
        );
        let art = render_heatmap(&map, None, HeatmapOptions::default());
        assert!(art.contains('?'));
    }

    #[test]
    fn fixed_scale_is_respected() {
        let (map, _) = sample();
        let art = render_heatmap(
            &map,
            None,
            HeatmapOptions {
                width: 30,
                scale_max: Some(1000.0),
                show_beacons: false,
            },
        );
        // Everything is far below 1000 m: the map renders almost blank.
        assert!(art.contains("1000.00 m"));
        assert!(!art_rows(&art).contains('@'));
    }

    #[test]
    #[should_panic(expected = "width must be at least 2")]
    fn rejects_degenerate_width() {
        let (map, _) = sample();
        let _ = render_heatmap(
            &map,
            None,
            HeatmapOptions {
                width: 1,
                scale_max: None,
                show_beacons: false,
            },
        );
    }
}
