//! Worker pool for intra-survey tile execution.
//!
//! The trial-level runner (`abp-sim`'s `parallel_try_map`) parallelizes
//! *across* surveys; this pool parallelizes *inside* one survey by
//! executing disjoint row-band tiles of the lattice concurrently. It is
//! a deliberate mirror of `crates/sim/src/runner.rs`'s discipline —
//! atomic-cursor work claiming, per-task `catch_unwind`, all workers
//! drain before the first failure is re-panicked in task order — kept
//! local because the dependency arrow points the other way (`abp-sim`
//! depends on `abp-survey`).
//!
//! Determinism note: tiles own disjoint output slices and every tile's
//! work is self-contained per lattice point, so the *schedule* (which
//! worker runs which tile, in what order) cannot affect any output bit.
//! Claiming order only matters for load balance.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a survey tile thread-count request: `0` means "all
/// available cores", anything else is taken literally. Mirrors
/// `abp-sim`'s `resolve_threads` so `--threads` behaves the same for
/// trial-level and tile-level parallelism.
pub fn resolve_survey_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Extracts a human-readable message from a panic payload, exactly as
/// the sim runner does.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `run(tile_index, task)` for every task across `workers` scoped
/// threads.
///
/// Tasks are claimed through an atomic cursor, so an idle worker always
/// picks up the next unstarted tile. A panicking tile does not poison
/// its siblings: the payload is caught, every remaining tile still
/// runs, and only after all workers drain is the failure with the
/// lowest tile index re-panicked (deterministic regardless of
/// scheduling) with the tile number attached.
///
/// With `workers <= 1` or a single task the pool degrades to a plain
/// in-thread loop — no threads are spawned and panics propagate
/// directly, which keeps the single-thread survey path byte-identical
/// in behavior to the pre-scheduler code.
pub(crate) fn run_pool<T, F>(tasks: Vec<T>, workers: usize, run: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let n = tasks.len();
    let workers = workers.min(n.max(1));
    if workers <= 1 || n <= 1 {
        for (i, task) in tasks.into_iter().enumerate() {
            run(i, task);
        }
        return;
    }

    let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let failures: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = slots[i]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .take();
                let Some(task) = task else { continue };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(i, task))) {
                    let msg = panic_message(payload.as_ref());
                    failures
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .push((i, msg));
                }
            });
        }
    });

    let mut failures = failures.into_inner().unwrap_or_else(|p| p.into_inner());
    if !failures.is_empty() {
        failures.sort_unstable_by_key(|(i, _)| *i);
        let (tile, msg) = failures.remove(0);
        panic!("survey tile {tile} panicked: {msg}");
    }
}

/// Splits `rows` lattice rows into at most `tiles` contiguous,
/// near-equal bands, returned as `(first_row, row_count)` pairs in
/// ascending row order. Bands differ in size by at most one row; empty
/// inputs yield no bands.
pub fn row_bands(rows: usize, tiles: usize) -> Vec<(usize, usize)> {
    if rows == 0 || tiles == 0 {
        return Vec::new();
    }
    let tiles = tiles.min(rows);
    let base = rows / tiles;
    let extra = rows % tiles;
    let mut bands = Vec::with_capacity(tiles);
    let mut start = 0;
    for t in 0..tiles {
        let len = base + usize::from(t < extra);
        bands.push((start, len));
        start += len;
    }
    debug_assert_eq!(start, rows);
    bands
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn bands_cover_rows_exactly_once_in_order() {
        for rows in [0usize, 1, 2, 7, 100, 101] {
            for tiles in [0usize, 1, 2, 3, 8, 200] {
                let bands = row_bands(rows, tiles);
                let mut next = 0;
                for &(start, len) in &bands {
                    assert_eq!(start, next, "rows={rows} tiles={tiles}");
                    assert!(len > 0, "empty band rows={rows} tiles={tiles}");
                    next = start + len;
                }
                assert_eq!(next, if tiles == 0 { 0 } else { rows });
                if rows > 0 && tiles > 0 {
                    assert_eq!(bands.len(), tiles.min(rows));
                    let (min, max) = bands
                        .iter()
                        .fold((usize::MAX, 0), |(lo, hi), &(_, l)| (lo.min(l), hi.max(l)));
                    assert!(max - min <= 1, "unbalanced rows={rows} tiles={tiles}");
                }
            }
        }
    }

    #[test]
    fn pool_runs_every_task_exactly_once() {
        for workers in [1usize, 2, 4, 9] {
            let hits: Vec<AtomicU32> = (0..23).map(|_| AtomicU32::new(0)).collect();
            let tasks: Vec<usize> = (0..hits.len()).collect();
            run_pool(tasks, workers, |i, task| {
                assert_eq!(i, task);
                hits[task].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} workers {workers}");
            }
        }
    }

    #[test]
    fn pool_reports_the_lowest_failing_tile_after_draining() {
        let done: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        let tasks: Vec<usize> = (0..done.len()).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_pool(tasks, 3, |_, task| {
                done[task].fetch_add(1, Ordering::Relaxed);
                if task == 2 || task == 5 {
                    panic!("tile {task} boom");
                }
            });
        }));
        let payload = result.expect_err("pool must re-panic");
        let msg = panic_message(payload.as_ref());
        assert!(
            msg.contains("survey tile 2 panicked") && msg.contains("tile 2 boom"),
            "got: {msg}"
        );
        // Every sibling tile still ran despite the failures.
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    /// The single-worker degenerate path is a plain loop: panics
    /// propagate directly, unwrapped — exactly the pre-scheduler
    /// behavior the sequential survey path relies on.
    #[test]
    fn single_worker_pool_propagates_panics_directly() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_pool(vec![0usize, 1, 2], 1, |_, task| {
                if task == 1 {
                    panic!("raw boom");
                }
            });
        }));
        let payload = result.expect_err("must panic");
        assert_eq!(panic_message(payload.as_ref()), "raw boom");
    }

    #[test]
    fn resolve_zero_means_all_cores() {
        assert!(resolve_survey_threads(0) >= 1);
        assert_eq!(resolve_survey_threads(3), 3);
    }

    #[test]
    fn pool_handles_mutable_disjoint_slices() {
        let mut data = vec![0u64; 64];
        let tasks: Vec<(usize, &mut [u64])> = {
            let mut rest: &mut [u64] = &mut data;
            let mut out = Vec::new();
            let mut start = 0;
            for (band_start, len) in row_bands(64, 4) {
                assert_eq!(band_start, start);
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(len);
                out.push((start, head));
                rest = tail;
                start += len;
            }
            out
        };
        run_pool(tasks, 4, |_, (start, slice)| {
            for (off, v) in slice.iter_mut().enumerate() {
                *v = (start + off) as u64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }
}
