//! Terrain exploration and measurement (paper §3).
//!
//! The paper's approach to adaptive placement is *empirical*: "a
//! GPS-equipped mobile robot or human ... can determine its geographic
//! position ... compute its localization estimate using the connectivity
//! based localization algorithm ... thus it has a means of computing the
//! localization error at any point on the terrain." This crate is that
//! instrumentation substrate:
//!
//! * [`SurveyPlan`] — the measurement lattice plus the order it is walked
//!   (boustrophedon, the natural sweep for a ground robot),
//! * [`Robot`] — the exploring agent: walks the plan, measures
//!   localization error (optionally through imperfect GPS), carries and
//!   deploys beacons, accounts for distance travelled,
//! * [`ErrorMap`] — the measured localization-error field the placement
//!   algorithms consume; built either by a [`Robot`] or directly by the
//!   fast beacon-major sweep ([`ErrorMap::survey`]), with an
//!   incremental-update path for re-surveying after a beacon is added.
//!
//! # Example
//!
//! ```
//! use abp_field::BeaconField;
//! use abp_geom::{Lattice, Point, Terrain};
//! use abp_localize::UnheardPolicy;
//! use abp_radio::IdealDisk;
//! use abp_survey::ErrorMap;
//!
//! let terrain = Terrain::square(100.0);
//! let lattice = Lattice::new(terrain, 5.0);
//! let field = BeaconField::from_positions(terrain, [Point::new(50.0, 50.0)]);
//! let map = ErrorMap::survey(&lattice, &field, &IdealDisk::new(15.0),
//!                            UnheardPolicy::TerrainCenter);
//! assert_eq!(map.len(), lattice.len());
//! assert!(map.mean_error() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod errormap;
pub mod lanes;
pub mod plan;
pub mod render;
pub mod robot;
pub mod sampling;
pub mod scratch;
pub mod snapshot;
pub mod tiles;

pub use errormap::{ErrorMap, SurveyAccounting, SurveyDelta};
pub use lanes::{SweepLane, LANES};
pub use plan::SurveyPlan;
pub use robot::{Robot, RobotReport};
pub use sampling::SubsampleStrategy;
pub use scratch::SurveyScratch;
pub use tiles::{resolve_survey_threads, row_bands};
