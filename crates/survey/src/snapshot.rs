//! Compact binary snapshots of error maps.
//!
//! A paper-scale error map is ~10 201 points × 28 bytes ≈ 280 KiB of
//! accumulator state. Long-running sweeps checkpoint the before-placement
//! map once per trial and restore it per algorithm instead of re-surveying
//! three times. The format is a simple little-endian layout built with
//! `bytes` (magic, version, lattice geometry, policy, then the four
//! columns), with an integrity check on decode.

use crate::errormap::ErrorMap;
use abp_geom::{Lattice, Terrain};
use abp_localize::UnheardPolicy;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic prefix of the snapshot format (`"ABPM"`).
const MAGIC: u32 = 0x4142_504D;
/// Current format version.
const VERSION: u16 = 1;

/// Error returned when decoding an invalid snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeSnapshotError(String);

impl fmt::Display for DecodeSnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid error-map snapshot: {}", self.0)
    }
}

impl std::error::Error for DecodeSnapshotError {}

fn policy_tag(policy: UnheardPolicy) -> u8 {
    match policy {
        UnheardPolicy::TerrainCenter => 0,
        UnheardPolicy::Origin => 1,
        UnheardPolicy::Exclude => 2,
    }
}

fn policy_from_tag(tag: u8) -> Result<UnheardPolicy, DecodeSnapshotError> {
    match tag {
        0 => Ok(UnheardPolicy::TerrainCenter),
        1 => Ok(UnheardPolicy::Origin),
        2 => Ok(UnheardPolicy::Exclude),
        other => Err(DecodeSnapshotError(format!("unknown policy tag {other}"))),
    }
}

/// Serializes an error map to its binary snapshot.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Lattice, Point, Terrain};
/// use abp_localize::UnheardPolicy;
/// use abp_radio::IdealDisk;
/// use abp_survey::ErrorMap;
/// use abp_survey::snapshot::{encode, decode};
///
/// let terrain = Terrain::square(50.0);
/// let lattice = Lattice::new(terrain, 5.0);
/// let field = BeaconField::from_positions(terrain, [Point::new(25.0, 25.0)]);
/// let map = ErrorMap::survey(&lattice, &field, &IdealDisk::new(15.0),
///                            UnheardPolicy::TerrainCenter);
/// let bytes = encode(&map);
/// assert_eq!(decode(&bytes).unwrap(), map);
/// ```
pub fn encode(map: &ErrorMap) -> Bytes {
    let (sum_x, sum_y, count, errors) = map.parts();
    let n = map.len();
    let mut buf = BytesMut::with_capacity(4 + 2 + 1 + 16 + 8 + n * 28);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u8(policy_tag(map.policy()));
    buf.put_f64(map.lattice().terrain().side());
    buf.put_f64(map.lattice().step());
    buf.put_u64(n as u64);
    for v in sum_x {
        buf.put_f64(*v);
    }
    for v in sum_y {
        buf.put_f64(*v);
    }
    for v in count {
        buf.put_u32(*v);
    }
    for v in errors {
        buf.put_f64(*v);
    }
    buf.freeze()
}

/// Deserializes a snapshot produced by [`encode`].
///
/// # Errors
///
/// Returns [`DecodeSnapshotError`] on truncated input, wrong magic or
/// version, or geometry that does not reproduce the recorded point count.
pub fn decode(mut data: &[u8]) -> Result<ErrorMap, DecodeSnapshotError> {
    let header = 4 + 2 + 1 + 8 + 8 + 8;
    if data.len() < header {
        return Err(DecodeSnapshotError("truncated header".into()));
    }
    if data.get_u32() != MAGIC {
        return Err(DecodeSnapshotError("bad magic".into()));
    }
    let version = data.get_u16();
    if version != VERSION {
        return Err(DecodeSnapshotError(format!(
            "unsupported version {version}"
        )));
    }
    let policy = policy_from_tag(data.get_u8())?;
    let side = data.get_f64();
    let step = data.get_f64();
    let n = data.get_u64() as usize;
    if !(side.is_finite() && side > 0.0 && step.is_finite() && step > 0.0 && step <= side) {
        return Err(DecodeSnapshotError(format!(
            "invalid geometry side={side} step={step}"
        )));
    }
    let lattice = Lattice::new(Terrain::square(side), step);
    if lattice.len() != n {
        return Err(DecodeSnapshotError(format!(
            "geometry yields {} points but snapshot records {n}",
            lattice.len()
        )));
    }
    if data.remaining() != n * (8 + 8 + 4 + 8) {
        return Err(DecodeSnapshotError(format!(
            "payload size {} does not match {n} points",
            data.remaining()
        )));
    }
    let mut sum_x = Vec::with_capacity(n);
    for _ in 0..n {
        sum_x.push(data.get_f64());
    }
    let mut sum_y = Vec::with_capacity(n);
    for _ in 0..n {
        sum_y.push(data.get_f64());
    }
    let mut count = Vec::with_capacity(n);
    for _ in 0..n {
        count.push(data.get_u32());
    }
    let mut errors = Vec::with_capacity(n);
    for _ in 0..n {
        errors.push(data.get_f64());
    }
    Ok(ErrorMap::from_parts(
        lattice, policy, sum_x, sum_y, count, errors,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_field::BeaconField;
    use abp_geom::Point;
    use abp_radio::IdealDisk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_map(policy: UnheardPolicy) -> ErrorMap {
        let terrain = Terrain::square(100.0);
        let lattice = Lattice::new(terrain, 5.0);
        let mut rng = StdRng::seed_from_u64(7);
        let field = BeaconField::random_uniform(25, terrain, &mut rng);
        ErrorMap::survey(&lattice, &field, &IdealDisk::new(15.0), policy)
    }

    #[test]
    fn roundtrip_all_policies() {
        for policy in [
            UnheardPolicy::TerrainCenter,
            UnheardPolicy::Origin,
            UnheardPolicy::Exclude,
        ] {
            let map = sample_map(policy);
            let decoded = decode(&encode(&map)).unwrap();
            // Compare semantically: NaN (= excluded) markers defeat `==`.
            assert_eq!(decoded.policy(), map.policy(), "policy {policy}");
            assert_eq!(decoded.lattice(), map.lattice());
            for ix in map.lattice().indices() {
                assert_eq!(decoded.error_at(ix), map.error_at(ix), "{ix}");
                assert_eq!(decoded.heard_at(ix), map.heard_at(ix), "{ix}");
                assert_eq!(decoded.estimate_at(ix), map.estimate_at(ix), "{ix}");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_statistics_and_updates() {
        let map = sample_map(UnheardPolicy::TerrainCenter);
        let mut decoded = decode(&encode(&map)).unwrap();
        assert_eq!(decoded.mean_error(), map.mean_error());
        assert_eq!(decoded.median_error(), map.median_error());
        // Incremental updates still work on a restored map.
        let mut field = BeaconField::new(Terrain::square(100.0));
        let id = field.add_beacon(Point::new(50.0, 50.0));
        decoded.add_beacon(field.get(id).unwrap(), &IdealDisk::new(15.0));
        assert!(decoded.mean_error() <= map.mean_error());
    }

    #[test]
    fn rejects_truncated_and_corrupt_input() {
        let bytes = encode(&sample_map(UnheardPolicy::TerrainCenter));
        assert!(decode(&bytes[..10]).is_err());
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        let mut corrupt = bytes.to_vec();
        corrupt[0] ^= 0xFF; // break the magic
        assert!(decode(&corrupt).is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let bytes = encode(&sample_map(UnheardPolicy::TerrainCenter));
        let mut v = bytes.to_vec();
        v[5] = 99; // version little end (big-endian u16 at offset 4..6)
        let err = decode(&v).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn snapshot_size_is_linear_in_points() {
        let map = sample_map(UnheardPolicy::TerrainCenter);
        let bytes = encode(&map);
        assert_eq!(bytes.len(), 31 + map.len() * 28);
    }
}
