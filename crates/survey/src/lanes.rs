//! Explicit-width SIMD blocks for the disk-membership sweep.
//!
//! The hot loop of every survey is "is lattice point `p` inside beacon
//! `k`'s hearing disk" over a packed candidate list. This module turns
//! that test data-parallel while preserving the workspace-wide
//! **bit-identity contract**: the membership *mask* is computed
//! [`LANES`] candidates wide (a shape LLVM's autovectorizer provably
//! lifts to packed `f64` instructions — see the golden-assembly test in
//! `tests/simd_asm.rs`), but the accepted lanes are **folded into the
//! running sums in ascending candidate order**, one scalar `+=` per hit.
//! Floating-point addition is not associative, so a wide horizontal
//! reduction would change the bits; an ordered fold of the same operands
//! in the same order cannot.
//!
//! The module is deliberately dependency-free — no `abp_*` imports, no
//! `std` beyond the prelude — so the golden-assembly test can compile
//! this file standalone (`rustc -O --emit asm`) and grep the packed
//! instructions without dragging the whole workspace through a second
//! build.

/// Candidates processed per wide block. Eight `f64` lanes span one or
/// two cache lines and give the autovectorizer room for 2-wide SSE2,
/// 4-wide AVX, or 8-wide AVX-512 without a remainder inside the block.
pub const LANES: usize = 8;

/// Computes the disk-membership mask of one [`LANES`]-wide block: bit
/// `l` is set iff `(xs[l] - px)² + (ys[l] - py)² <= r2[l]`.
///
/// The arithmetic per lane — operand order included (`beacon - point`,
/// squares summed `dx² + dy²`) — is exactly the scalar test
/// `Point::distance_squared(beacon, p) <= r²` used by every other sweep
/// in the workspace; only the *evaluation* is widened. Comparisons are
/// independent per lane, so vectorizing them cannot change any bit of
/// the outcome.
#[inline]
pub fn mask_block(
    px: f64,
    py: f64,
    xs: &[f64; LANES],
    ys: &[f64; LANES],
    r2: &[f64; LANES],
) -> u32 {
    let mut m = 0u32;
    let mut l = 0;
    while l < LANES {
        let dx = xs[l] - px;
        let dy = ys[l] - py;
        m |= ((dx * dx + dy * dy <= r2[l]) as u32) << l;
        l += 1;
    }
    m
}

/// Sweeps one query point over packed candidate columns: returns
/// `(Σx, Σy, heard)` of the candidates whose disk contains `(px, py)`.
///
/// Full blocks go through [`mask_block`]; accepted lanes are then folded
/// in ascending index order (`trailing_zeros` walks the mask from low
/// bit to high), and the remainder tail is tested scalarly — so for any
/// candidate count, lane-aligned or not, the sequence of `f64` additions
/// is identical to [`sweep_scalar`] and the results are bit-identical
/// (proptests in `tests/properties.rs` pin this for remainder lengths,
/// empty lists, zero reach, and exact boundary hits).
pub fn sweep_lanes(px: f64, py: f64, xs: &[f64], ys: &[f64], r2: &[f64]) -> (f64, f64, u32) {
    debug_assert!(xs.len() == ys.len() && xs.len() == r2.len());
    let n = xs.len();
    let (mut sx, mut sy, mut heard) = (0.0f64, 0.0f64, 0u32);
    let mut base = 0;
    while base + LANES <= n {
        // These conversions are infallible (length checked by the loop
        // bound); the fixed-size views are what lets LLVM lift the mask
        // computation to packed instructions.
        let bx: &[f64; LANES] = xs[base..base + LANES].try_into().expect("full block");
        let by: &[f64; LANES] = ys[base..base + LANES].try_into().expect("full block");
        let br: &[f64; LANES] = r2[base..base + LANES].try_into().expect("full block");
        let mut m = mask_block(px, py, bx, by, br);
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            sx += bx[l];
            sy += by[l];
            heard += 1;
        }
        base += LANES;
    }
    while base < n {
        let dx = xs[base] - px;
        let dy = ys[base] - py;
        if dx * dx + dy * dy <= r2[base] {
            sx += xs[base];
            sy += ys[base];
            heard += 1;
        }
        base += 1;
    }
    (sx, sy, heard)
}

/// The scalar reference [`sweep_lanes`] must match bit for bit: one
/// test, one conditional fold per candidate, in index order.
pub fn sweep_scalar(px: f64, py: f64, xs: &[f64], ys: &[f64], r2: &[f64]) -> (f64, f64, u32) {
    let (mut sx, mut sy, mut heard) = (0.0f64, 0.0f64, 0u32);
    for k in 0..xs.len() {
        let dx = xs[k] - px;
        let dy = ys[k] - py;
        if dx * dx + dy * dy <= r2[k] {
            sx += xs[k];
            sy += ys[k];
            heard += 1;
        }
    }
    (sx, sy, heard)
}

/// Reusable packed-candidate columns: one `SweepLane` per tile worker.
///
/// The spatial index hands out candidate *indices* (`&[u32]`) into the
/// beacon SoA; testing through them is a gather per lane, which no
/// autovectorizer lifts at baseline targets. Because consecutive lattice
/// points overwhelmingly share a candidate cell, the sweep instead packs
/// the cell's columns densely **once per cell run** ([`SweepLane::pack`],
/// preserving ascending insertion order) and then streams
/// [`sweep_lanes`] over unit-stride memory for every point in the run.
///
/// Buffers are retained across [`SweepLane::pack`] calls, so a
/// scratch-held lane allocates nothing once it has seen the densest cell
/// of the sweep — the property the 0-allocs/trial bench gate measures.
#[derive(Debug, Default)]
pub struct SweepLane {
    xs: Vec<f64>,
    ys: Vec<f64>,
    r2: Vec<f64>,
}

impl SweepLane {
    /// Creates an empty lane; buffers grow on first pack and are kept.
    pub fn new() -> Self {
        SweepLane::default()
    }

    /// Gathers `cands`' columns out of the SoA slices into this lane's
    /// dense buffers, in the candidates' own (ascending insertion)
    /// order.
    pub fn pack(&mut self, cands: &[u32], xs: &[f64], ys: &[f64], r2: &[f64]) {
        self.xs.clear();
        self.ys.clear();
        self.r2.clear();
        self.xs.reserve(cands.len());
        self.ys.reserve(cands.len());
        self.r2.reserve(cands.len());
        for &k in cands {
            let k = k as usize;
            self.xs.push(xs[k]);
            self.ys.push(ys[k]);
            self.r2.push(r2[k]);
        }
    }

    /// [`sweep_lanes`] over the currently packed candidates.
    #[inline]
    pub fn sweep(&self, px: f64, py: f64) -> (f64, f64, u32) {
        sweep_lanes(px, py, &self.xs, &self.ys, &self.r2)
    }

    /// Number of packed candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the lane currently holds no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // Cheap deterministic pseudo-data; no rng dependency so the
        // module stays standalone-compilable.
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 10.0
        };
        let xs: Vec<f64> = (0..n).map(|_| next()).collect();
        let ys: Vec<f64> = (0..n).map(|_| next()).collect();
        let r2: Vec<f64> = (0..n).map(|_| next() * next()).collect();
        (xs, ys, r2)
    }

    #[test]
    fn wide_matches_scalar_for_every_remainder_length() {
        for n in 0..=(3 * LANES + 1) {
            let (xs, ys, r2) = columns(n, n as u64 + 1);
            for &(px, py) in &[(0.0, 0.0), (50.0, 50.0), (99.9, 0.1)] {
                let wide = sweep_lanes(px, py, &xs, &ys, &r2);
                let scalar = sweep_scalar(px, py, &xs, &ys, &r2);
                assert_eq!(wide.0.to_bits(), scalar.0.to_bits(), "sx n={n}");
                assert_eq!(wide.1.to_bits(), scalar.1.to_bits(), "sy n={n}");
                assert_eq!(wide.2, scalar.2, "heard n={n}");
            }
        }
    }

    #[test]
    fn mask_block_sets_exactly_the_member_bits() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let ys = [0.0; LANES];
        // Reach covers lanes 0..=3 from the origin (distance² = l²).
        let r2 = [9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0];
        let m = mask_block(0.0, 0.0, &xs, &ys, &r2);
        assert_eq!(m, 0b0000_1111);
    }

    #[test]
    fn boundary_hits_are_inclusive() {
        // distance² == r² must count, exactly as the scalar `<=` does.
        let xs = [3.0; LANES];
        let ys = [4.0; LANES];
        let r2 = [25.0; LANES];
        let m = mask_block(0.0, 0.0, &xs, &ys, &r2);
        assert_eq!(m, 0xFF);
        let (sx, sy, heard) = sweep_lanes(0.0, 0.0, &xs, &ys, &r2);
        assert_eq!(heard, LANES as u32);
        assert_eq!(sx, 3.0 * LANES as f64);
        assert_eq!(sy, 4.0 * LANES as f64);
    }

    #[test]
    fn zero_reach_hears_only_the_exact_position() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 3.0];
        let r2 = [0.0, 0.0, 0.0];
        assert_eq!(sweep_lanes(2.0, 2.0, &xs, &ys, &r2), (2.0, 2.0, 1));
        assert_eq!(sweep_lanes(9.0, 9.0, &xs, &ys, &r2), (0.0, 0.0, 0));
    }

    #[test]
    fn lane_pack_gathers_in_candidate_order() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let r2 = [100.0, 200.0, 300.0, 400.0];
        let mut lane = SweepLane::new();
        lane.pack(&[3, 1], &xs, &ys, &r2);
        assert_eq!(lane.len(), 2);
        assert_eq!(lane.xs, vec![40.0, 20.0]);
        assert_eq!(lane.ys, vec![4.0, 2.0]);
        assert_eq!(lane.r2, vec![400.0, 200.0]);
        lane.pack(&[], &xs, &ys, &r2);
        assert!(lane.is_empty());
    }
}
