//! Reusable survey buffers for allocation-free steady-state sweeps.

use crate::errormap::ErrorMap;
use crate::lanes::SweepLane;
use abp_field::{BeaconSoA, CellIndex};

/// Every buffer a full survey needs, owned once and recycled across
/// trials: the four error-map accumulator grids, the quantile selection
/// workspace, the [`BeaconSoA`] mirror, and the spatial index.
///
/// The Monte-Carlo engine keeps one `SurveyScratch` per worker thread
/// (see `abp-sim`); [`ErrorMap::survey_indexed_with`] drains the grid
/// buffers into the map it returns, and [`SurveyScratch::recycle`] takes
/// them back when the caller is done reading the map. Once the scratch
/// has passed through one trial at the sweep's largest field and lattice,
/// every later trial runs without touching the allocator.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Lattice, Point, Terrain};
/// use abp_localize::UnheardPolicy;
/// use abp_radio::IdealDisk;
/// use abp_survey::{ErrorMap, SurveyScratch};
///
/// let terrain = Terrain::square(100.0);
/// let lattice = Lattice::new(terrain, 5.0);
/// let field = BeaconField::from_positions(terrain, [Point::new(50.0, 50.0)]);
/// let model = IdealDisk::new(15.0);
///
/// let mut scratch = SurveyScratch::new();
/// let map = ErrorMap::survey_indexed_with(
///     &lattice, &field, &model, UnheardPolicy::TerrainCenter, &mut scratch);
/// let median = scratch.median_error(&map);
/// assert_eq!(
///     median.to_bits(),
///     ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter)
///         .median_error()
///         .to_bits(),
/// );
/// scratch.recycle(map); // hand the grid buffers back for the next trial
/// ```
#[derive(Debug, Default)]
pub struct SurveyScratch {
    pub(crate) sum_x: Vec<f64>,
    pub(crate) sum_y: Vec<f64>,
    pub(crate) count: Vec<u32>,
    pub(crate) errors: Vec<f64>,
    /// Selection workspace for [`SurveyScratch::median_error`].
    pub(crate) quantiles: Vec<f64>,
    /// Dense `xs`/`ys`/`reach²` mirror for the tiled disk sweep.
    pub(crate) soa: BeaconSoA,
    /// The per-trial spatial index, rebuilt in place each trial.
    pub(crate) index: Option<CellIndex>,
    /// Packed-candidate columns, one per survey tile: lane 0 serves the
    /// single-thread sweep; the tiled scheduler takes one lane per tile
    /// so workers never share pack buffers. Retained across trials like
    /// every other buffer here.
    pub(crate) tile_lanes: Vec<SweepLane>,
}

impl SurveyScratch {
    /// Creates an empty scratch; buffers grow on first use and are kept
    /// thereafter.
    pub fn new() -> Self {
        SurveyScratch::default()
    }

    /// Takes an [`ErrorMap`]'s grid buffers back into the scratch so the
    /// next [`ErrorMap::survey_indexed_with`] call reuses them instead of
    /// allocating. Call this once the map's statistics have been read.
    ///
    /// Recycling a map that was *not* produced from this scratch is fine
    /// — the buffers are interchangeable; only capacity matters.
    pub fn recycle(&mut self, map: ErrorMap) {
        let (sum_x, sum_y, count, errors) = map.into_parts();
        self.sum_x = sum_x;
        self.sum_y = sum_y;
        self.count = count;
        self.errors = errors;
    }

    /// [`ErrorMap::median_error`] through this scratch's reused selection
    /// workspace — bit-identical result, no per-call allocation.
    ///
    /// # Panics
    ///
    /// Panics if every point of the map is excluded.
    pub fn median_error(&mut self, map: &ErrorMap) -> f64 {
        map.median_error_with(&mut self.quantiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_field::BeaconField;
    use abp_geom::{Lattice, Terrain};
    use abp_localize::UnheardPolicy;
    use abp_radio::{IdealDisk, PerBeaconNoise};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn field(n: usize, seed: u64) -> BeaconField {
        BeaconField::random_uniform(n, Terrain::square(100.0), &mut StdRng::seed_from_u64(seed))
    }

    /// Bitwise map equality (NaN-safe — derived `PartialEq` rejects the
    /// NaN-encoded excluded points even when maps are bit-identical).
    fn assert_bit_identical(a: &ErrorMap, b: &ErrorMap, label: &str) {
        let (ax, ay, ac, ae) = a.parts();
        let (bx, by, bc, be) = b.parts();
        assert_eq!(a.lattice(), b.lattice(), "{label}: lattice");
        assert_eq!(a.policy(), b.policy(), "{label}: policy");
        assert_eq!(ac, bc, "{label}: heard counts");
        for flat in 0..ax.len() {
            assert_eq!(
                ax[flat].to_bits(),
                bx[flat].to_bits(),
                "{label}: sum_x[{flat}]"
            );
            assert_eq!(
                ay[flat].to_bits(),
                by[flat].to_bits(),
                "{label}: sum_y[{flat}]"
            );
            assert_eq!(
                ae[flat].to_bits(),
                be[flat].to_bits(),
                "{label}: error[{flat}]"
            );
        }
    }

    /// The scratch path must be bit-identical to the plain indexed path,
    /// across repeated reuse over different fields, on both the
    /// disk-exact kernel and the noisy oracle kernel.
    #[test]
    fn scratch_reuse_is_bit_identical_across_trials() {
        let lat = Lattice::new(Terrain::square(100.0), 4.0);
        let mut scratch = SurveyScratch::new();
        for (trial, &(n, seed, noise)) in [
            (45usize, 3u64, 0.0f64),
            (20, 4, 0.4),
            (60, 5, 0.0),
            (10, 6, 0.2),
        ]
        .iter()
        .enumerate()
        {
            let f = field(n, seed);
            let model = PerBeaconNoise::new(15.0, noise, 7);
            for policy in [UnheardPolicy::TerrainCenter, UnheardPolicy::Exclude] {
                let fresh = ErrorMap::survey_indexed(&lat, &f, &model, policy);
                let reused = ErrorMap::survey_indexed_with(&lat, &f, &model, policy, &mut scratch);
                assert_bit_identical(&fresh, &reused, &format!("trial {trial} {policy:?}"));
                assert_eq!(
                    scratch.median_error(&reused).to_bits(),
                    fresh.median_error().to_bits(),
                    "trial {trial} median"
                );
                scratch.recycle(reused);
            }
        }
    }

    /// Growing lattices through one scratch: buffer resizing must not
    /// leak stale state between trials.
    #[test]
    fn scratch_survives_lattice_growth_and_shrink() {
        let mut scratch = SurveyScratch::new();
        let model = IdealDisk::new(15.0);
        for step in [10.0, 2.0, 5.0] {
            let lat = Lattice::new(Terrain::square(100.0), step);
            let f = field(30, 11);
            let fresh = ErrorMap::survey_indexed(&lat, &f, &model, UnheardPolicy::TerrainCenter);
            let reused = ErrorMap::survey_indexed_with(
                &lat,
                &f,
                &model,
                UnheardPolicy::TerrainCenter,
                &mut scratch,
            );
            assert_bit_identical(&fresh, &reused, &format!("step {step}"));
            scratch.recycle(reused);
        }
    }

    /// An empty field through the scratch path matches the fresh path.
    #[test]
    fn scratch_handles_empty_field() {
        let lat = Lattice::new(Terrain::square(100.0), 10.0);
        let f = BeaconField::new(Terrain::square(100.0));
        let model = IdealDisk::new(15.0);
        let mut scratch = SurveyScratch::new();
        let reused = ErrorMap::survey_indexed_with(
            &lat,
            &f,
            &model,
            UnheardPolicy::TerrainCenter,
            &mut scratch,
        );
        let fresh = ErrorMap::survey_indexed(&lat, &f, &model, UnheardPolicy::TerrainCenter);
        assert_bit_identical(&fresh, &reused, "empty field");
    }
}
