//! Survey plans: which points to measure, in which order.

use abp_geom::{Lattice, LatticeIndex, Terrain};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A survey plan: the paper's `step`-spaced measurement lattice, walked in
/// boustrophedon (serpentine) order — east along even rows, west along odd
/// rows — the minimal-travel sweep for a ground robot measuring every
/// lattice point.
///
/// # Example
///
/// ```
/// use abp_geom::Terrain;
/// use abp_survey::SurveyPlan;
///
/// let plan = SurveyPlan::new(Terrain::square(100.0), 1.0);
/// assert_eq!(plan.len(), 10_201); // the paper's PT
/// // Total travel: 101 rows of 100 m plus 100 row-to-row hops of 1 m.
/// assert_eq!(plan.travel_distance(), 101.0 * 100.0 + 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyPlan {
    lattice: Lattice,
}

impl SurveyPlan {
    /// Creates the plan for `terrain` with measurement spacing `step`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Lattice::new`].
    pub fn new(terrain: Terrain, step: f64) -> Self {
        SurveyPlan {
            lattice: Lattice::new(terrain, step),
        }
    }

    /// Wraps an existing lattice.
    pub fn from_lattice(lattice: Lattice) -> Self {
        SurveyPlan { lattice }
    }

    /// The measurement lattice.
    #[inline]
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Number of measurement points.
    #[inline]
    pub fn len(&self) -> usize {
        self.lattice.len()
    }

    /// Always `false` (lattices are non-empty).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lattice.is_empty()
    }

    /// Iterates lattice indices in boustrophedon order: row 0 west→east,
    /// row 1 east→west, and so on.
    pub fn waypoints(&self) -> impl Iterator<Item = LatticeIndex> + '_ {
        let n = self.lattice.per_side();
        (0..n).flat_map(move |j| {
            (0..n).map(move |k| {
                let i = if j % 2 == 0 { k } else { n - 1 - k };
                LatticeIndex::new(i, j)
            })
        })
    }

    /// Total ground distance of the boustrophedon sweep, in meters.
    pub fn travel_distance(&self) -> f64 {
        let n = self.lattice.per_side() as f64;
        let step = self.lattice.step();
        // Each of the n rows spans (n-1)*step; n-1 hops between rows.
        n * (n - 1.0) * step + (n - 1.0) * step
    }
}

impl fmt::Display for SurveyPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "boustrophedon survey over {}", self.lattice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::Point;

    #[test]
    fn visits_every_point_exactly_once() {
        let plan = SurveyPlan::new(Terrain::square(10.0), 2.0);
        let visited: Vec<_> = plan.waypoints().collect();
        assert_eq!(visited.len(), plan.len());
        let mut sorted = visited.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), plan.len());
    }

    #[test]
    fn serpentine_order() {
        let plan = SurveyPlan::new(Terrain::square(2.0), 1.0);
        let order: Vec<_> = plan.waypoints().map(|ix| (ix.i, ix.j)).collect();
        assert_eq!(
            order,
            vec![
                (0, 0),
                (1, 0),
                (2, 0), // east
                (2, 1),
                (1, 1),
                (0, 1), // west
                (0, 2),
                (1, 2),
                (2, 2), // east again
            ]
        );
    }

    #[test]
    fn consecutive_waypoints_are_one_step_apart() {
        let plan = SurveyPlan::new(Terrain::square(10.0), 2.5);
        let points: Vec<Point> = plan
            .waypoints()
            .map(|ix| plan.lattice().point(ix))
            .collect();
        for w in points.windows(2) {
            assert!((w[0].distance(w[1]) - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn travel_distance_matches_walked_path() {
        let plan = SurveyPlan::new(Terrain::square(10.0), 2.0);
        let points: Vec<Point> = plan
            .waypoints()
            .map(|ix| plan.lattice().point(ix))
            .collect();
        let walked: f64 = points.windows(2).map(|w| w[0].distance(w[1])).sum();
        assert!((walked - plan.travel_distance()).abs() < 1e-9);
    }
}
