//! The measured localization-error field.

use crate::lanes::SweepLane;
use abp_field::{Beacon, BeaconField};
use abp_geom::{Disk, Lattice, LatticeIndex, Point, Rect};
use abp_localize::{ConnectivityOracle, Localizer, UnheardPolicy};
use abp_radio::Propagation;
use abp_stats::Summary;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The lattice region an incremental survey update touched.
///
/// Returned by [`ErrorMap::add_beacon`] / [`ErrorMap::kill_beacon`] so
/// downstream caches (incremental placement scoring in `abp-placement`)
/// can re-derive only the affected region instead of rescanning the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SurveyDelta {
    /// Inclusive `(min, max)` corners of the changed lattice-index
    /// bounding box, or `None` when the update changed no point (the
    /// beacon reached nothing).
    pub changed: Option<(LatticeIndex, LatticeIndex)>,
    /// Number of lattice points whose accumulators changed.
    pub touched: usize,
}

impl SurveyDelta {
    /// A delta that changed nothing.
    pub const EMPTY: SurveyDelta = SurveyDelta {
        changed: None,
        touched: 0,
    };

    /// Whether any lattice point changed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.changed.is_none()
    }

    /// Whether `ix` lies inside the changed bounding box.
    pub fn contains(&self, ix: LatticeIndex) -> bool {
        match self.changed {
            Some((lo, hi)) => lo.i <= ix.i && ix.i <= hi.i && lo.j <= ix.j && ix.j <= hi.j,
            None => false,
        }
    }
}

/// Explicit per-point accounting of a survey's measurement quality.
///
/// A healthy, fault-free survey puts every point in `measured` (plus
/// `unheard` holes where no beacon reaches). Fault injection opens two
/// more channels: `degraded` points heard *something* but fewer beacons
/// than the consuming estimator needs, and `dropped` points were visited
/// but their sample was lost (a GPS outage window, for instance). The
/// four channels partition the lattice:
/// `measured + degraded + unheard + dropped == len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SurveyAccounting {
    /// Points measured at the estimator's full fidelity.
    pub measured: usize,
    /// Points heard by at least one beacon but fewer than the estimator's
    /// minimum — localization there is a typed fallback, not the method.
    pub degraded: usize,
    /// Points hearing no beacon at all.
    pub unheard: usize,
    /// Points whose sample was lost in collection (never measured despite
    /// beacon coverage).
    pub dropped: usize,
}

impl SurveyAccounting {
    /// Fraction of `len` points that were measured at full fidelity.
    pub fn measured_fraction(&self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        self.measured as f64 / len as f64
    }
}

impl fmt::Display for SurveyAccounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} measured, {} degraded, {} unheard, {} dropped",
            self.measured, self.degraded, self.unheard, self.dropped
        )
    }
}

/// The localization error measured at every lattice point — what the
/// paper's exploring agent produces in Step 2 of the Max/Grid algorithms
/// ("measure localization error at each point `(i·step, j·step)`"), and
/// the sole input the placement algorithms consume.
///
/// Internally the map keeps, per point, the running centroid accumulator
/// `(Σx, Σy, count)` of connected beacons. This enables:
///
/// * **beacon-major construction** ([`ErrorMap::survey`]): for each beacon
///   visit only the lattice points inside its maximum range — `O(Σ
///   points-in-range)` instead of `O(points × beacons)`, a ~6× saving at
///   paper scale and far more at low density;
/// * **incremental re-survey** ([`ErrorMap::add_beacon`]): adding a beacon
///   touches only the points inside *its* coverage disk, so the
///   after-placement survey costs `O((R/step)²)` instead of a full pass.
///
/// Unheard points follow the configured [`UnheardPolicy`]; with
/// [`UnheardPolicy::Exclude`] they carry no measurement and are skipped by
/// all statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorMap {
    lattice: Lattice,
    policy: UnheardPolicy,
    sum_x: Vec<f64>,
    sum_y: Vec<f64>,
    count: Vec<u32>,
    /// Localization error per point; NaN encodes "excluded".
    errors: Vec<f64>,
}

impl ErrorMap {
    /// Surveys `field` under `model` over `lattice` (beacon-major sweep).
    ///
    /// Semantically identical to running the paper's centroid localizer at
    /// every lattice point (validated against
    /// [`ErrorMap::survey_with_localizer`] in tests).
    pub fn survey(
        lattice: &Lattice,
        field: &BeaconField,
        model: &dyn Propagation,
        policy: UnheardPolicy,
    ) -> Self {
        let n = lattice.len();
        let mut map = ErrorMap {
            lattice: *lattice,
            policy,
            sum_x: vec![0.0; n],
            sum_y: vec![0.0; n],
            count: vec![0; n],
            errors: vec![0.0; n],
        };
        {
            let _span = abp_trace::span!("radio.connectivity_sweep");
            for b in field {
                map.accumulate_beacon(b, model);
            }
        }
        {
            let _span = abp_trace::span!("localize.derive_errors");
            for flat in 0..n {
                map.errors[flat] = map.derive_error(flat);
            }
        }
        map
    }

    /// Point-major brute-force sweep: for every lattice point, scan every
    /// beacon. `O(points × beacons)` — the reference the indexed sweep is
    /// benchmarked and bit-compared against.
    ///
    /// Accumulates each point's heard beacons in insertion order — the
    /// same per-point addition order as the beacon-major
    /// [`ErrorMap::survey`] — so all three sweeps produce **bit-identical**
    /// maps (asserted by tests and the CI perf-smoke job).
    pub fn survey_point_major(
        lattice: &Lattice,
        field: &BeaconField,
        model: &dyn Propagation,
        policy: UnheardPolicy,
    ) -> Self {
        Self::survey_via(&ConnectivityOracle::new(field, model), lattice, policy)
    }

    /// Point-major sweep through a grid-bin spatial index: each lattice
    /// point tests only the beacons in nearby cells —
    /// `O(points × beacons-in-reach)`.
    ///
    /// Bit-identical to [`ErrorMap::survey`] and
    /// [`ErrorMap::survey_point_major`]: the index visits candidates in
    /// insertion order (see `abp_field::CellIndex`) and prunes only
    /// beacons that `Propagation::max_range` proves unreachable, so every
    /// per-point accumulation performs the same additions in the same
    /// order.
    pub fn survey_indexed(
        lattice: &Lattice,
        field: &BeaconField,
        model: &dyn Propagation,
        policy: UnheardPolicy,
    ) -> Self {
        let index = ConnectivityOracle::build_index(field, model);
        // Disk-exact models (`Propagation::disk_exact`) let the sweep
        // replace the virtual per-candidate `connected` call with the
        // inline squared-distance comparison the contract pins down —
        // the hottest loop in the workspace then touches only the dense
        // position and threshold arrays, with no dynamic dispatch.
        if model.disk_exact() {
            return Self::survey_indexed_disk(&index, lattice, field, model, policy);
        }
        let oracle = ConnectivityOracle::with_index(field, model, &index);
        Self::survey_via(&oracle, lattice, policy)
    }

    /// The disk-exact indexed sweep: per candidate, heard is exactly
    /// `distance_squared <= max_range^2` (see
    /// `Propagation::disk_exact`), evaluated inline over the index's
    /// dense position array. Bit-identical to the oracle path because
    /// the comparison *is* the model's `connected` and candidates arrive
    /// in the same ascending insertion order.
    fn survey_indexed_disk(
        index: &abp_field::CellIndex,
        lattice: &Lattice,
        field: &BeaconField,
        model: &dyn Propagation,
        policy: UnheardPolicy,
    ) -> Self {
        let n = lattice.len();
        let mut map = ErrorMap {
            lattice: *lattice,
            policy,
            sum_x: vec![0.0; n],
            sum_y: vec![0.0; n],
            count: vec![0; n],
            errors: vec![0.0; n],
        };
        // Dense positions and squared thresholds, in insertion order
        // (r * r per beacon, matching the disk_exact contract verbatim).
        // The fresh path allocates its mirror locally; the scratch path
        // reuses one across trials.
        let mut soa = abp_field::BeaconSoA::new();
        soa.rebuild_with(field, |b| {
            let r = model.max_range(b.tx(), b.pos());
            r * r
        });
        let mut lane = SweepLane::new();
        Self::disk_sweep_soa(
            index,
            &soa,
            lattice,
            &mut lane,
            &mut map.sum_x,
            &mut map.sum_y,
            &mut map.count,
        );
        {
            let _span = abp_trace::span!("localize.derive_errors");
            for flat in 0..n {
                map.errors[flat] = map.derive_error(flat);
            }
        }
        map
    }

    /// [`ErrorMap::survey_indexed`] through a reusable
    /// [`SurveyScratch`](crate::SurveyScratch): the accumulator grids,
    /// SoA mirror, and spatial index all come from (and return to) the
    /// scratch, so repeated calls allocate nothing once the buffers have
    /// grown to the sweep's largest trial.
    ///
    /// **Bit-identical** to [`ErrorMap::survey_indexed`] — and therefore
    /// to all three fresh sweeps: the disk-exact path runs the tiled
    /// structure-of-arrays kernel over the same candidates in the same
    /// ascending insertion order with the same `dx² + dy² <= r²`
    /// comparison, and the oracle path is the same loop as
    /// [`ErrorMap::survey_point_major`]. Asserted by tests here, in
    /// `scratch.rs`, and at scale in `tests/indexing.rs`.
    ///
    /// The returned map *owns* the grid buffers; hand them back with
    /// [`SurveyScratch::recycle`](crate::SurveyScratch::recycle) when
    /// done.
    pub fn survey_indexed_with(
        lattice: &Lattice,
        field: &BeaconField,
        model: &dyn Propagation,
        policy: UnheardPolicy,
        scratch: &mut crate::SurveyScratch,
    ) -> Self {
        Self::survey_indexed_with_threads(lattice, field, model, policy, scratch, 1)
    }

    /// [`ErrorMap::survey_indexed_with`] across an intra-survey tile
    /// scheduler: the lattice is split row-band-wise into tiles (about
    /// four per worker, for load balance), each tile owns disjoint
    /// `sum_x/sum_y/count/errors` slices and its own packed-candidate
    /// [`SweepLane`] from the scratch, and a worker
    /// pool mirroring `abp-sim`'s `parallel_try_map` discipline (atomic
    /// work claiming, per-tile panic isolation, deterministic re-panic)
    /// executes them. Error derivation joins the same tile pass, fused
    /// with the sweep under the `radio.connectivity_sweep` span.
    ///
    /// `threads` follows the workspace convention: `0` means all
    /// available cores; `1` runs the plain sequential sweep (identical
    /// code path and trace spans as before this scheduler existed).
    ///
    /// **Bit-identical at any thread count**: every lattice point's
    /// accumulation is self-contained (its candidates fold in ascending
    /// insertion order regardless of which tile visits it), tiles write
    /// disjoint slices, and no cross-point arithmetic exists anywhere in
    /// the pass — so the schedule cannot influence any output bit.
    /// Asserted by `four_sweeps_bit_identical`, the proptests, and
    /// `tests/indexing.rs` at paper scale.
    pub fn survey_indexed_with_threads(
        lattice: &Lattice,
        field: &BeaconField,
        model: &dyn Propagation,
        policy: UnheardPolicy,
        scratch: &mut crate::SurveyScratch,
        threads: usize,
    ) -> Self {
        let workers = crate::tiles::resolve_survey_threads(threads);
        let n = lattice.len();
        let mut sum_x = std::mem::take(&mut scratch.sum_x);
        let mut sum_y = std::mem::take(&mut scratch.sum_y);
        let mut count = std::mem::take(&mut scratch.count);
        let mut errors = std::mem::take(&mut scratch.errors);
        sum_x.clear();
        sum_x.resize(n, 0.0);
        sum_y.clear();
        sum_y.resize(n, 0.0);
        count.clear();
        count.resize(n, 0);
        errors.clear();
        errors.resize(n, 0.0);
        match &mut scratch.index {
            Some(index) => ConnectivityOracle::rebuild_index(index, field, model),
            none => *none = Some(ConnectivityOracle::build_index(field, model)),
        }
        let crate::SurveyScratch {
            index,
            soa,
            tile_lanes,
            ..
        } = scratch;
        let index = index.as_ref().expect("index was just built");
        let disk = model.disk_exact();
        if disk {
            // Dense squared thresholds, computed exactly as the AoS path
            // does (r * r per beacon, insertion order).
            soa.rebuild_with(field, |b| {
                let r = model.max_range(b.tx(), b.pos());
                r * r
            });
        }

        if workers <= 1 {
            if disk {
                if tile_lanes.is_empty() {
                    tile_lanes.push(SweepLane::new());
                }
                Self::disk_sweep_soa(
                    index,
                    soa,
                    lattice,
                    &mut tile_lanes[0],
                    &mut sum_x,
                    &mut sum_y,
                    &mut count,
                );
            } else {
                let oracle = ConnectivityOracle::with_index(field, model, index);
                let _span = abp_trace::span!("radio.connectivity_sweep");
                Self::oracle_sweep_rows(
                    &oracle,
                    lattice,
                    0,
                    lattice.per_side() - 1,
                    &mut sum_x,
                    &mut sum_y,
                    &mut count,
                );
            }
            let mut map = ErrorMap::from_parts(*lattice, policy, sum_x, sum_y, count, errors);
            {
                let _span = abp_trace::span!("localize.derive_errors");
                for flat in 0..n {
                    map.errors[flat] = map.derive_error(flat);
                }
            }
            return map;
        }

        let per_side = lattice.per_side() as usize;
        let bands = crate::tiles::row_bands(per_side, workers * 4);
        while tile_lanes.len() < bands.len() {
            tile_lanes.push(SweepLane::new());
        }
        let oracle = (!disk).then(|| ConnectivityOracle::with_index(field, model, index));
        let soa: &abp_field::BeaconSoA = soa;

        struct Tile<'a> {
            j_lo: u32,
            j_hi: u32,
            sum_x: &'a mut [f64],
            sum_y: &'a mut [f64],
            count: &'a mut [u32],
            errors: &'a mut [f64],
            lane: &'a mut SweepLane,
        }

        let mut tasks: Vec<Tile<'_>> = Vec::with_capacity(bands.len());
        {
            let mut rx: &mut [f64] = &mut sum_x;
            let mut ry: &mut [f64] = &mut sum_y;
            let mut rc: &mut [u32] = &mut count;
            let mut re: &mut [f64] = &mut errors;
            let mut lanes: &mut [SweepLane] = tile_lanes;
            for &(start, rows) in &bands {
                let len = rows * per_side;
                let (hx, tx) = std::mem::take(&mut rx).split_at_mut(len);
                rx = tx;
                let (hy, ty) = std::mem::take(&mut ry).split_at_mut(len);
                ry = ty;
                let (hc, tc) = std::mem::take(&mut rc).split_at_mut(len);
                rc = tc;
                let (he, te) = std::mem::take(&mut re).split_at_mut(len);
                re = te;
                let (lane, rest) = std::mem::take(&mut lanes).split_first_mut().expect("lane");
                lanes = rest;
                tasks.push(Tile {
                    j_lo: start as u32,
                    j_hi: (start + rows - 1) as u32,
                    sum_x: hx,
                    sum_y: hy,
                    count: hc,
                    errors: he,
                    lane,
                });
            }
        }

        let tested = AtomicU64::new(0);
        {
            // The tiled pass fuses sweep + error derivation into one tile
            // traversal; the fused work reports under the sweep span.
            let _span = abp_trace::span!("radio.connectivity_sweep");
            crate::tiles::run_pool(tasks, workers, |_, t| {
                match &oracle {
                    Some(oracle) => Self::oracle_sweep_rows(
                        oracle, lattice, t.j_lo, t.j_hi, t.sum_x, t.sum_y, t.count,
                    ),
                    None => {
                        let band = Self::disk_sweep_rows(
                            index, soa, lattice, t.j_lo, t.j_hi, t.lane, t.sum_x, t.sum_y, t.count,
                        );
                        tested.fetch_add(band, Ordering::Relaxed);
                    }
                }
                let base = t.j_lo as usize * per_side;
                for off in 0..t.errors.len() {
                    t.errors[off] = derive_error_at(
                        lattice,
                        policy,
                        base + off,
                        t.sum_x[off],
                        t.sum_y[off],
                        t.count[off],
                    );
                }
            });
            if disk {
                abp_radio::metrics::LINKS_TESTED.add(tested.load(Ordering::Relaxed));
            }
        }
        ErrorMap::from_parts(*lattice, policy, sum_x, sum_y, count, errors)
    }

    /// The tiled structure-of-arrays disk sweep over the whole lattice:
    /// [`ErrorMap::disk_sweep_rows`] for every row, under the
    /// connectivity span, with the links-tested metric flushed once.
    fn disk_sweep_soa(
        index: &abp_field::CellIndex,
        soa: &abp_field::BeaconSoA,
        lattice: &Lattice,
        lane: &mut SweepLane,
        sum_x: &mut [f64],
        sum_y: &mut [f64],
        count: &mut [u32],
    ) {
        let _span = abp_trace::span!("radio.connectivity_sweep");
        let tested = Self::disk_sweep_rows(
            index,
            soa,
            lattice,
            0,
            lattice.per_side() - 1,
            lane,
            sum_x,
            sum_y,
            count,
        );
        abp_radio::metrics::LINKS_TESTED.add(tested);
    }

    /// The SIMD-wide structure-of-arrays disk sweep over lattice rows
    /// `j_lo..=j_hi`: points are walked row-major, the candidate cell is
    /// resolved once per run of points sharing it, and on each cell
    /// change the candidates' `xs`/`ys`/`reach²` columns are gathered
    /// densely into `lane` ([`SweepLane::pack`], amortized over the whole
    /// run) so the membership test streams unit-stride memory through the
    /// explicit-width kernel ([`crate::lanes::sweep_lanes`]) — no
    /// `Beacon` records, no virtual calls, no gathers in the inner loop.
    ///
    /// The kernel computes the membership mask [`crate::LANES`] wide but
    /// folds accepted candidates in ascending insertion order, so the
    /// accumulation order and arithmetic are exactly those of the scalar
    /// per-candidate test and the result is bit-identical.
    ///
    /// Output slices are **band-local**: index `flat - j_lo * per_side`.
    /// Returns the number of links tested (the caller owns the metric
    /// flush — tiles sum theirs into one add).
    #[allow(clippy::too_many_arguments)]
    fn disk_sweep_rows(
        index: &abp_field::CellIndex,
        soa: &abp_field::BeaconSoA,
        lattice: &Lattice,
        j_lo: u32,
        j_hi: u32,
        lane: &mut SweepLane,
        sum_x: &mut [f64],
        sum_y: &mut [f64],
        count: &mut [u32],
    ) -> u64 {
        let bins = index.bins();
        let (xs, ys, r2) = (soa.xs(), soa.ys(), soa.reach2());
        let per_side = lattice.per_side();
        let mut tested = 0u64;
        let mut last_cell = usize::MAX;
        let mut off = 0usize;
        for j in j_lo..=j_hi {
            for i in 0..per_side {
                let p = lattice.point(LatticeIndex::new(i, j));
                let (sx, sy, heard) = if let Some(c) = bins.candidate_cell(p) {
                    if c != last_cell {
                        last_cell = c;
                        lane.pack(bins.cell_candidates(c), xs, ys, r2);
                    }
                    tested += lane.len() as u64;
                    lane.sweep(p.x, p.y)
                } else {
                    // No precomputed candidate table (oversized reach or
                    // empty index): the generic candidate walk, still
                    // over the dense arrays.
                    let (mut sx, mut sy, mut heard) = (0.0f64, 0.0f64, 0u32);
                    bins.for_each_candidate(p, |k, _| {
                        tested += 1;
                        // Same operand order as Point::distance_squared
                        // with self = beacon, other = p — keeps the f64
                        // results bit-identical to the AoS walk.
                        let dx = xs[k] - p.x;
                        let dy = ys[k] - p.y;
                        if dx * dx + dy * dy <= r2[k] {
                            sx += xs[k];
                            sy += ys[k];
                            heard += 1;
                        }
                    });
                    (sx, sy, heard)
                };
                sum_x[off] = sx;
                sum_y[off] = sy;
                count[off] = heard;
                off += 1;
            }
        }
        tested
    }

    /// The oracle (non-disk-exact) sweep over lattice rows `j_lo..=j_hi`,
    /// accumulating each point's heard beacons in insertion order —
    /// the same loop [`ErrorMap::survey_point_major`] runs, banded so
    /// tiles can share it. Output slices are band-local, like
    /// [`ErrorMap::disk_sweep_rows`].
    fn oracle_sweep_rows(
        oracle: &ConnectivityOracle<'_>,
        lattice: &Lattice,
        j_lo: u32,
        j_hi: u32,
        sum_x: &mut [f64],
        sum_y: &mut [f64],
        count: &mut [u32],
    ) {
        let per_side = lattice.per_side();
        let mut off = 0usize;
        for j in j_lo..=j_hi {
            for i in 0..per_side {
                let p = lattice.point(LatticeIndex::new(i, j));
                let (mut sx, mut sy, mut heard) = (0.0f64, 0.0f64, 0u32);
                oracle.for_each_heard(p, |b| {
                    sx += b.pos().x;
                    sy += b.pos().y;
                    heard += 1;
                });
                sum_x[off] = sx;
                sum_y[off] = sy;
                count[off] = heard;
                off += 1;
            }
        }
    }

    /// Point-major sweep through a caller-provided oracle (brute or
    /// indexed).
    fn survey_via(
        oracle: &ConnectivityOracle<'_>,
        lattice: &Lattice,
        policy: UnheardPolicy,
    ) -> Self {
        let n = lattice.len();
        let mut map = ErrorMap {
            lattice: *lattice,
            policy,
            sum_x: vec![0.0; n],
            sum_y: vec![0.0; n],
            count: vec![0; n],
            errors: vec![0.0; n],
        };
        {
            let _span = abp_trace::span!("radio.connectivity_sweep");
            for ix in lattice.indices() {
                let p = lattice.point(ix);
                // Accumulate in locals and store once per point: the
                // additions happen in the same (beacon-insertion) order
                // as ever, so the sums stay bit-identical — only the
                // per-beacon memory traffic goes away.
                let (mut sx, mut sy, mut n) = (0.0f64, 0.0f64, 0u32);
                oracle.for_each_heard(p, |b| {
                    sx += b.pos().x;
                    sy += b.pos().y;
                    n += 1;
                });
                let flat = lattice.flat(ix);
                map.sum_x[flat] = sx;
                map.sum_y[flat] = sy;
                map.count[flat] = n;
            }
        }
        {
            let _span = abp_trace::span!("localize.derive_errors");
            for flat in 0..n {
                map.errors[flat] = map.derive_error(flat);
            }
        }
        map
    }

    /// Reference implementation: runs an arbitrary [`Localizer`] at every
    /// lattice point. `O(points × beacons)` — used for validation and for
    /// non-centroid localizers, not in the hot experiment path.
    ///
    /// The map records the localizer's own
    /// [`unheard_policy`](Localizer::unheard_policy), so per-point validity
    /// ([`ErrorMap::error_at`], [`ErrorMap::estimate_at`]) and the
    /// statistics agree with what the localizer actually returned at
    /// unheard points.
    pub fn survey_with_localizer<L: Localizer + ?Sized>(
        lattice: &Lattice,
        field: &BeaconField,
        model: &dyn Propagation,
        localizer: &L,
    ) -> Self {
        let n = lattice.len();
        let mut map = ErrorMap {
            lattice: *lattice,
            policy: localizer.unheard_policy(),
            sum_x: vec![0.0; n],
            sum_y: vec![0.0; n],
            count: vec![0; n],
            errors: vec![f64::NAN; n],
        };
        let _span = abp_trace::span!("localize.survey");
        // One index for the whole sweep: localizers gather neighbors
        // through it (Localizer::localize_via), which is order-identical
        // to the brute scan — see the CellIndex ordering contract.
        let index = ConnectivityOracle::build_index(field, model);
        let oracle = ConnectivityOracle::with_index(field, model, &index);
        for ix in lattice.indices() {
            let p = lattice.point(ix);
            let fix = localizer.localize_via(&oracle, p);
            let flat = lattice.flat(ix);
            map.count[flat] = fix.heard as u32;
            if let Some(est) = fix.estimate {
                map.sum_x[flat] = est.x * fix.heard.max(1) as f64;
                map.sum_y[flat] = est.y * fix.heard.max(1) as f64;
                map.errors[flat] = est.distance(p);
            }
        }
        map
    }

    /// Assembles a map from raw parts (robot surveys, snapshot decoding).
    pub(crate) fn from_parts(
        lattice: Lattice,
        policy: UnheardPolicy,
        sum_x: Vec<f64>,
        sum_y: Vec<f64>,
        count: Vec<u32>,
        errors: Vec<f64>,
    ) -> Self {
        let n = lattice.len();
        assert!(
            sum_x.len() == n && sum_y.len() == n && count.len() == n && errors.len() == n,
            "part lengths must equal the lattice size {n}"
        );
        ErrorMap {
            lattice,
            policy,
            sum_x,
            sum_y,
            count,
            errors,
        }
    }

    /// Raw accessors for snapshot encoding.
    pub(crate) fn parts(&self) -> (&[f64], &[f64], &[u32], &[f64]) {
        (&self.sum_x, &self.sum_y, &self.count, &self.errors)
    }

    /// Disassembles the map into its grid buffers so a
    /// [`SurveyScratch`](crate::SurveyScratch) can reuse them.
    pub(crate) fn into_parts(self) -> (Vec<f64>, Vec<f64>, Vec<u32>, Vec<f64>) {
        (self.sum_x, self.sum_y, self.count, self.errors)
    }

    /// Adds one beacon's contribution to the accumulators (no error
    /// derivation).
    fn accumulate_beacon(&mut self, b: &Beacon, model: &dyn Propagation) {
        let reach = model.max_range(b.tx(), b.pos());
        let (bx, by) = (b.pos().x, b.pos().y);
        let tx = b.tx();
        let lattice = self.lattice;
        let mut tested = 0u64;
        lattice.for_each_in_disk(Disk::new(b.pos(), reach), |ix, p| {
            tested += 1;
            if model.connected(tx, b.pos(), p) {
                let flat = lattice.flat(ix);
                self.sum_x[flat] += bx;
                self.sum_y[flat] += by;
                self.count[flat] += 1;
            }
        });
        abp_radio::metrics::LINKS_TESTED.add(tested);
    }

    /// Incrementally re-surveys after `beacon` was added to the field:
    /// only lattice points inside the beacon's maximum range are updated.
    ///
    /// The result is exactly what a full [`ErrorMap::survey`] of the
    /// extended field would produce (deterministic propagation makes the
    /// replay exact); tests assert this equivalence. The returned
    /// [`SurveyDelta`] bounds the changed region so cached scores can
    /// update incrementally.
    pub fn add_beacon(&mut self, beacon: &Beacon, model: &dyn Propagation) -> SurveyDelta {
        let _span = abp_trace::span!("radio.incremental_update");
        let reach = model.max_range(beacon.tx(), beacon.pos());
        let (bx, by) = (beacon.pos().x, beacon.pos().y);
        let tx = beacon.tx();
        let lattice = self.lattice;
        let mut touched = Vec::new();
        let mut bounds: Option<(LatticeIndex, LatticeIndex)> = None;
        let mut tested = 0u64;
        lattice.for_each_in_disk(Disk::new(beacon.pos(), reach), |ix, p| {
            tested += 1;
            if model.connected(tx, beacon.pos(), p) {
                let flat = lattice.flat(ix);
                self.sum_x[flat] += bx;
                self.sum_y[flat] += by;
                self.count[flat] += 1;
                touched.push(flat);
                Self::grow_bounds(&mut bounds, ix);
            }
        });
        abp_radio::metrics::LINKS_TESTED.add(tested);
        let delta = SurveyDelta {
            changed: bounds,
            touched: touched.len(),
        };
        for flat in touched {
            self.errors[flat] = self.derive_error(flat);
        }
        delta
    }

    /// Incrementally removes a beacon's contribution (the inverse of
    /// [`ErrorMap::add_beacon`]) — used by the self-scheduling extension
    /// when a beacon turns passive and by fault experiments when one dies.
    /// Returns the changed region, like [`ErrorMap::add_beacon`].
    pub fn remove_beacon(&mut self, beacon: &Beacon, model: &dyn Propagation) -> SurveyDelta {
        let reach = model.max_range(beacon.tx(), beacon.pos());
        let (bx, by) = (beacon.pos().x, beacon.pos().y);
        let tx = beacon.tx();
        let lattice = self.lattice;
        let mut touched = Vec::new();
        let mut bounds: Option<(LatticeIndex, LatticeIndex)> = None;
        lattice.for_each_in_disk(Disk::new(beacon.pos(), reach), |ix, p| {
            if model.connected(tx, beacon.pos(), p) {
                let flat = lattice.flat(ix);
                debug_assert!(self.count[flat] > 0, "removing unaccounted beacon");
                self.sum_x[flat] -= bx;
                self.sum_y[flat] -= by;
                self.count[flat] -= 1;
                touched.push(flat);
                Self::grow_bounds(&mut bounds, ix);
            }
        });
        let delta = SurveyDelta {
            changed: bounds,
            touched: touched.len(),
        };
        for flat in touched {
            self.errors[flat] = self.derive_error(flat);
        }
        delta
    }

    /// [`ErrorMap::remove_beacon`] under its fault-experiment name: the
    /// beacon died, take its contribution out of the map.
    pub fn kill_beacon(&mut self, beacon: &Beacon, model: &dyn Propagation) -> SurveyDelta {
        self.remove_beacon(beacon, model)
    }

    /// [`ErrorMap::add_beacon`] across the tile scheduler: the beacon's
    /// coverage-disk row span is split into bands, each band owns
    /// disjoint grid slices, and workers update their bands concurrently
    /// (errors derived inline, which is exact because a single-beacon
    /// update touches each point at most once). `threads` follows the
    /// workspace convention (`0` = all cores, `<= 1` = the sequential
    /// path verbatim). Bit-identical to the sequential method at any
    /// thread count; the returned delta is identical too (bounds and
    /// touched counts merge in band order, and both are order-free).
    pub fn add_beacon_threaded(
        &mut self,
        beacon: &Beacon,
        model: &dyn Propagation,
        threads: usize,
    ) -> SurveyDelta {
        let workers = crate::tiles::resolve_survey_threads(threads);
        if workers <= 1 {
            return self.add_beacon(beacon, model);
        }
        let _span = abp_trace::span!("radio.incremental_update");
        self.update_beacon_banded(beacon, model, workers, true)
    }

    /// [`ErrorMap::remove_beacon`] across the tile scheduler — see
    /// [`ErrorMap::add_beacon_threaded`].
    pub fn remove_beacon_threaded(
        &mut self,
        beacon: &Beacon,
        model: &dyn Propagation,
        threads: usize,
    ) -> SurveyDelta {
        let workers = crate::tiles::resolve_survey_threads(threads);
        if workers <= 1 {
            return self.remove_beacon(beacon, model);
        }
        self.update_beacon_banded(beacon, model, workers, false)
    }

    /// The banded single-beacon update: row bands of the coverage disk,
    /// disjoint grid slices per band, one result slot per band merged in
    /// band order after the pool drains.
    fn update_beacon_banded(
        &mut self,
        beacon: &Beacon,
        model: &dyn Propagation,
        workers: usize,
        add: bool,
    ) -> SurveyDelta {
        let reach = model.max_range(beacon.tx(), beacon.pos());
        let disk = Disk::new(beacon.pos(), reach);
        let (bx, by) = (beacon.pos().x, beacon.pos().y);
        let tx = beacon.tx();
        let lattice = self.lattice;
        let policy = self.policy;
        let c = disk.center();
        let Some((j_lo, j_hi)) = lattice.index_span(c.y - reach, c.y + reach) else {
            if add {
                abp_radio::metrics::LINKS_TESTED.add(0);
            }
            return SurveyDelta::EMPTY;
        };
        let per_side = lattice.per_side() as usize;
        let rows = (j_hi - j_lo + 1) as usize;
        let bands = crate::tiles::row_bands(rows, workers * 4);

        #[derive(Default)]
        struct BandOut {
            tested: u64,
            touched: usize,
            bounds: Option<(LatticeIndex, LatticeIndex)>,
        }
        struct Band<'a> {
            j_lo: u32,
            j_hi: u32,
            sum_x: &'a mut [f64],
            sum_y: &'a mut [f64],
            count: &'a mut [u32],
            errors: &'a mut [f64],
            out: &'a mut BandOut,
        }

        let mut outs: Vec<BandOut> = Vec::with_capacity(bands.len());
        outs.resize_with(bands.len(), BandOut::default);
        let mut tasks: Vec<Band<'_>> = Vec::with_capacity(bands.len());
        {
            let mut rx: &mut [f64] = &mut self.sum_x;
            let mut ry: &mut [f64] = &mut self.sum_y;
            let mut rc: &mut [u32] = &mut self.count;
            let mut re: &mut [f64] = &mut self.errors;
            let mut ro: &mut [BandOut] = &mut outs;
            let mut consumed = 0usize;
            for &(start, len) in &bands {
                let begin = (j_lo as usize + start) * per_side;
                let skip = begin - consumed;
                let flats = len * per_side;
                let (_, r) = std::mem::take(&mut rx).split_at_mut(skip);
                let (hx, r) = r.split_at_mut(flats);
                rx = r;
                let (_, r) = std::mem::take(&mut ry).split_at_mut(skip);
                let (hy, r) = r.split_at_mut(flats);
                ry = r;
                let (_, r) = std::mem::take(&mut rc).split_at_mut(skip);
                let (hc, r) = r.split_at_mut(flats);
                rc = r;
                let (_, r) = std::mem::take(&mut re).split_at_mut(skip);
                let (he, r) = r.split_at_mut(flats);
                re = r;
                let (out, rest) = std::mem::take(&mut ro).split_first_mut().expect("out slot");
                ro = rest;
                consumed = begin + flats;
                tasks.push(Band {
                    j_lo: (j_lo as usize + start) as u32,
                    j_hi: (j_lo as usize + start + len - 1) as u32,
                    sum_x: hx,
                    sum_y: hy,
                    count: hc,
                    errors: he,
                    out,
                });
            }
        }

        crate::tiles::run_pool(tasks, workers, |_, t| {
            let base = t.j_lo as usize * per_side;
            lattice.for_each_in_disk_rows(disk, t.j_lo, t.j_hi, |ix, p| {
                if add {
                    t.out.tested += 1;
                }
                if model.connected(tx, beacon.pos(), p) {
                    let off = lattice.flat(ix) - base;
                    if add {
                        t.sum_x[off] += bx;
                        t.sum_y[off] += by;
                        t.count[off] += 1;
                    } else {
                        debug_assert!(t.count[off] > 0, "removing unaccounted beacon");
                        t.sum_x[off] -= bx;
                        t.sum_y[off] -= by;
                        t.count[off] -= 1;
                    }
                    t.errors[off] = derive_error_at(
                        &lattice,
                        policy,
                        base + off,
                        t.sum_x[off],
                        t.sum_y[off],
                        t.count[off],
                    );
                    t.out.touched += 1;
                    Self::grow_bounds(&mut t.out.bounds, ix);
                }
            });
        });

        let mut bounds: Option<(LatticeIndex, LatticeIndex)> = None;
        let mut touched = 0usize;
        let mut tested = 0u64;
        for out in &outs {
            tested += out.tested;
            touched += out.touched;
            if let Some((lo, hi)) = out.bounds {
                Self::grow_bounds(&mut bounds, lo);
                Self::grow_bounds(&mut bounds, hi);
            }
        }
        if add {
            abp_radio::metrics::LINKS_TESTED.add(tested);
        }
        SurveyDelta {
            changed: bounds,
            touched,
        }
    }

    fn grow_bounds(bounds: &mut Option<(LatticeIndex, LatticeIndex)>, ix: LatticeIndex) {
        *bounds = Some(match *bounds {
            None => (ix, ix),
            Some((lo, hi)) => (
                LatticeIndex::new(lo.i.min(ix.i), lo.j.min(ix.j)),
                LatticeIndex::new(hi.i.max(ix.i), hi.j.max(ix.j)),
            ),
        });
    }

    fn derive_error(&self, flat: usize) -> f64 {
        derive_error_at(
            &self.lattice,
            self.policy,
            flat,
            self.sum_x[flat],
            self.sum_y[flat],
            self.count[flat],
        )
    }

    /// The survey lattice.
    #[inline]
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// The unheard policy in effect.
    #[inline]
    pub fn policy(&self) -> UnheardPolicy {
        self.policy
    }

    /// Total number of lattice points (`PT`).
    #[inline]
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Always `false` (lattices are non-empty by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// The measured error at a lattice point, or `None` for excluded
    /// (unheard under [`UnheardPolicy::Exclude`]) points.
    pub fn error_at(&self, ix: LatticeIndex) -> Option<f64> {
        let e = self.errors[self.lattice.flat(ix)];
        (!e.is_nan()).then_some(e)
    }

    /// The measured error at the lattice point nearest `p` — the serving
    /// layer's *confidence* for an estimate at `p` (the error the survey
    /// measured where the client claims to be). `None` when that point is
    /// excluded. Allocation-free.
    pub fn error_near(&self, p: Point) -> Option<f64> {
        self.error_at(self.lattice.nearest(p))
    }

    /// The position estimate at a lattice point (`None` if excluded).
    pub fn estimate_at(&self, ix: LatticeIndex) -> Option<Point> {
        let flat = self.lattice.flat(ix);
        if self.count[flat] > 0 {
            let inv = 1.0 / self.count[flat] as f64;
            Some(Point::new(self.sum_x[flat] * inv, self.sum_y[flat] * inv))
        } else {
            self.policy.estimate(self.lattice.terrain())
        }
    }

    /// Number of beacons heard at a lattice point.
    pub fn heard_at(&self, ix: LatticeIndex) -> u32 {
        self.count[self.lattice.flat(ix)]
    }

    /// Iterates the valid (non-excluded) errors.
    pub fn valid_errors(&self) -> impl Iterator<Item = f64> + '_ {
        self.errors.iter().copied().filter(|e| !e.is_nan())
    }

    /// Number of valid measurements.
    pub fn valid_count(&self) -> usize {
        self.errors.iter().filter(|e| !e.is_nan()).count()
    }

    /// Number of lattice points hearing no beacon.
    pub fn unheard_count(&self) -> usize {
        self.count.iter().filter(|&&c| c == 0).count()
    }

    /// Classifies every lattice point into the explicit accounting
    /// channels of [`SurveyAccounting`], treating points that heard
    /// fewer than `min_beacons` beacons as *degraded*.
    ///
    /// `min_beacons` should match the estimator consuming the map:
    /// `1` for proximity/centroid methods, `3` for multilateration
    /// (see `Localizer::min_beacons` in `abp-localize`). Fault-injected
    /// surveys use this to report how much of the terrain was measured
    /// at full fidelity versus degraded, unheard, or lost outright.
    pub fn accounting_with(&self, min_beacons: u32) -> SurveyAccounting {
        let mut acc = SurveyAccounting::default();
        for (flat, &c) in self.count.iter().enumerate() {
            if c == 0 {
                acc.unheard += 1;
            } else if self.errors[flat].is_nan() {
                acc.dropped += 1;
            } else if c < min_beacons {
                acc.degraded += 1;
            } else {
                acc.measured += 1;
            }
        }
        acc
    }

    /// [`ErrorMap::accounting_with`] for a single-beacon estimator
    /// (the paper's centroid method): no point can be degraded, so the
    /// channels reduce to measured / unheard / dropped.
    pub fn accounting(&self) -> SurveyAccounting {
        self.accounting_with(1)
    }

    /// Mean localization error over all measured points — the statistic of
    /// Figures 4 and 6.
    ///
    /// # Panics
    ///
    /// Panics if every point is excluded (only possible with
    /// [`UnheardPolicy::Exclude`] and an unheard terrain).
    pub fn mean_error(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for e in self.valid_errors() {
            sum += e;
            n += 1;
        }
        assert!(n > 0, "no valid measurements in error map");
        sum / n as f64
    }

    /// Median localization error over all measured points (R-7
    /// interpolation, matching [`abp_stats::median`]), computed by
    /// selection in `O(points)` — the improvement experiments call this in
    /// their inner loop.
    ///
    /// # Panics
    ///
    /// Panics if every point is excluded.
    pub fn median_error(&self) -> f64 {
        self.median_error_with(&mut Vec::new())
    }

    /// [`ErrorMap::median_error`] into a caller-provided selection
    /// workspace: the same R-7 selection, bit-identical result, but the
    /// collected values live in `workspace` (cleared, then refilled) so a
    /// scratch-reusing caller pays no allocation after the first call.
    ///
    /// # Panics
    ///
    /// Panics if every point is excluded.
    pub fn median_error_with(&self, workspace: &mut Vec<f64>) -> f64 {
        workspace.clear();
        workspace.extend(self.valid_errors());
        assert!(!workspace.is_empty(), "no valid measurements in error map");
        let n = workspace.len();
        let k2 = n / 2;
        let (left, mid, _) =
            workspace.select_nth_unstable_by(k2, |a, b| a.partial_cmp(b).expect("no NaN here"));
        let hi = *mid;
        if n % 2 == 1 {
            hi
        } else {
            let lo = left.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (lo + hi) * 0.5
        }
    }

    /// Full descriptive statistics of the valid errors.
    ///
    /// # Panics
    ///
    /// Panics if every point is excluded.
    pub fn summary(&self) -> Summary {
        Summary::from_iter(self.valid_errors())
    }

    /// The lattice point with the highest measured error — Step 3 of the
    /// paper's Max algorithm. Ties break toward the first point in
    /// row-major order (deterministic). `None` if every point is excluded.
    pub fn max_error_point(&self) -> Option<(LatticeIndex, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (flat, &e) in self.errors.iter().enumerate() {
            if e.is_nan() {
                continue;
            }
            if best.map_or(true, |(_, be)| e > be) {
                best = Some((flat, e));
            }
        }
        best.map(|(flat, e)| (self.lattice.unflat(flat), e))
    }

    /// Cumulative (summed) error over the lattice points inside `rect` —
    /// Step 4 of the paper's Grid algorithm (`S(i, j)`). Excluded points
    /// contribute nothing.
    ///
    /// Summation association is fixed and documented: each lattice row's
    /// errors are summed left-to-right into a row subtotal, and the row
    /// subtotals are added bottom-to-top. The incremental Grid scorer in
    /// `abp-placement` caches exactly those row subtotals, so its scores
    /// are bit-identical to this function's.
    pub fn cumulative_error_in(&self, rect: &Rect) -> f64 {
        let mut total = 0.0;
        let lattice = self.lattice;
        let mut row = u32::MAX;
        let mut row_sum = 0.0;
        lattice.for_each_in_rect(rect, |ix, _| {
            if ix.j != row {
                total += row_sum;
                row_sum = 0.0;
                row = ix.j;
            }
            let e = self.errors[lattice.flat(ix)];
            if !e.is_nan() {
                row_sum += e;
            }
        });
        total + row_sum
    }

    /// The row subtotal this map's [`ErrorMap::cumulative_error_in`]
    /// association uses: valid errors of row `j`, columns `i_lo..=i_hi`,
    /// summed left-to-right. Exposed for the incremental Grid scorer.
    pub fn row_error_sum(&self, j: u32, i_lo: u32, i_hi: u32) -> f64 {
        let per_side = self.lattice.per_side() as usize;
        let base = j as usize * per_side;
        let mut sum = 0.0;
        for i in i_lo..=i_hi {
            let e = self.errors[base + i as usize];
            if !e.is_nan() {
                sum += e;
            }
        }
        sum
    }
}

/// Derives one lattice point's localization error from its accumulator
/// values — the exact arithmetic of `ErrorMap::derive_error`, exposed as
/// a free function so survey tiles (which hold band-local slices, not a
/// finished map) derive errors in the same pass that sweeps them.
pub(crate) fn derive_error_at(
    lattice: &Lattice,
    policy: UnheardPolicy,
    flat: usize,
    sum_x: f64,
    sum_y: f64,
    count: u32,
) -> f64 {
    let p = lattice.point(lattice.unflat(flat));
    let estimate = if count > 0 {
        let inv = 1.0 / count as f64;
        Some(Point::new(sum_x * inv, sum_y * inv))
    } else {
        policy.estimate(lattice.terrain())
    };
    match estimate {
        Some(est) => est.distance(p),
        None => f64::NAN,
    }
}

impl fmt::Display for ErrorMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error map over {} ({} valid, {} unheard)",
            self.lattice,
            self.valid_count(),
            self.unheard_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::Terrain;
    use abp_localize::CentroidLocalizer;
    use abp_radio::{IdealDisk, PerBeaconNoise};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    fn lattice(step: f64) -> Lattice {
        Lattice::new(terrain(), step)
    }

    #[test]
    fn empty_field_policy_estimates() {
        let lat = lattice(10.0);
        let field = BeaconField::new(terrain());
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
        // Every point estimated at (50, 50): corner error = 50*sqrt(2).
        let corner = map.error_at(LatticeIndex::new(0, 0)).unwrap();
        assert!((corner - 50.0 * std::f64::consts::SQRT_2).abs() < 1e-9);
        let center = map.error_at(lat.nearest(Point::new(50.0, 50.0))).unwrap();
        assert_eq!(center, 0.0);
        assert_eq!(map.unheard_count(), map.len());
    }

    #[test]
    fn exclude_policy_drops_unheard() {
        let lat = lattice(10.0);
        let field = BeaconField::from_positions(terrain(), [Point::new(50.0, 50.0)]);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::Exclude);
        assert!(map.valid_count() > 0);
        assert!(map.valid_count() < map.len());
        assert_eq!(map.valid_count() + map.unheard_count(), map.len());
        assert!(map.error_at(LatticeIndex::new(0, 0)).is_none());
    }

    #[test]
    fn survey_matches_localizer_reference() {
        let lat = lattice(5.0);
        let mut rng = StdRng::seed_from_u64(7);
        let field = BeaconField::random_uniform(40, terrain(), &mut rng);
        for noise in [0.0, 0.3] {
            let model = PerBeaconNoise::new(15.0, noise, 13);
            let fast = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::Exclude);
            let slow = ErrorMap::survey_with_localizer(
                &lat,
                &field,
                &model,
                &CentroidLocalizer::new(UnheardPolicy::Exclude),
            );
            for ix in lat.indices() {
                let a = fast.error_at(ix);
                let b = slow.error_at(ix);
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{ix}: {x} vs {y}"),
                    _ => panic!("validity mismatch at {ix}: {a:?} vs {b:?}"),
                }
                assert_eq!(fast.heard_at(ix), slow.heard_at(ix), "heard at {ix}");
            }
        }
    }

    /// Bitwise map comparison: every accumulator and error identical to
    /// the bit (NaN-safe via to_bits).
    fn assert_bit_identical(a: &ErrorMap, b: &ErrorMap, label: &str) {
        let (ax, ay, ac, ae) = a.parts();
        let (bx, by, bc, be) = b.parts();
        assert_eq!(ac, bc, "{label}: heard counts differ");
        for flat in 0..a.len() {
            assert_eq!(
                ax[flat].to_bits(),
                bx[flat].to_bits(),
                "{label}: sum_x at {flat}"
            );
            assert_eq!(
                ay[flat].to_bits(),
                by[flat].to_bits(),
                "{label}: sum_y at {flat}"
            );
            assert_eq!(
                ae[flat].to_bits(),
                be[flat].to_bits(),
                "{label}: error at {flat}"
            );
        }
    }

    #[test]
    fn four_sweeps_bit_identical() {
        let lat = lattice(2.0);
        let mut rng = StdRng::seed_from_u64(17);
        let field = BeaconField::random_uniform(60, terrain(), &mut rng);
        let mut scratch = crate::SurveyScratch::new();
        let mut scratch_mt = crate::SurveyScratch::new();
        for noise in [0.0, 0.4] {
            let model = PerBeaconNoise::new(15.0, noise, 5);
            for policy in [UnheardPolicy::TerrainCenter, UnheardPolicy::Exclude] {
                let beacon_major = ErrorMap::survey(&lat, &field, &model, policy);
                let brute = ErrorMap::survey_point_major(&lat, &field, &model, policy);
                let indexed = ErrorMap::survey_indexed(&lat, &field, &model, policy);
                let scratched =
                    ErrorMap::survey_indexed_with(&lat, &field, &model, policy, &mut scratch);
                assert_bit_identical(&beacon_major, &brute, "beacon-major vs point-major");
                assert_bit_identical(&brute, &indexed, "point-major vs indexed");
                assert_bit_identical(&indexed, &scratched, "indexed vs scratch-reused");
                scratch.recycle(scratched);
                // The tiled scheduler at several thread counts — more
                // workers than cores is fine (oversubscription changes
                // only scheduling, never bits).
                for threads in [2usize, 3, 4] {
                    let tiled = ErrorMap::survey_indexed_with_threads(
                        &lat,
                        &field,
                        &model,
                        policy,
                        &mut scratch_mt,
                        threads,
                    );
                    assert_bit_identical(
                        &indexed,
                        &tiled,
                        &format!("indexed vs tiled {threads}-thread"),
                    );
                    scratch_mt.recycle(tiled);
                }
            }
        }
    }

    /// A noisy model forces `disk_exact() == false`, so the tiled pass
    /// runs the oracle kernel — it must be bit-identical too (covered
    /// above), and so must an *empty* field through the tiled path.
    #[test]
    fn tiled_survey_handles_empty_field() {
        let lat = lattice(10.0);
        let field = BeaconField::new(terrain());
        let model = IdealDisk::new(15.0);
        let mut scratch = crate::SurveyScratch::new();
        let fresh = ErrorMap::survey_indexed(&lat, &field, &model, UnheardPolicy::TerrainCenter);
        let tiled = ErrorMap::survey_indexed_with_threads(
            &lat,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            &mut scratch,
            4,
        );
        assert_bit_identical(&fresh, &tiled, "empty field tiled");
    }

    #[test]
    fn threaded_incremental_updates_match_sequential() {
        let lat = lattice(2.0);
        let mut rng = StdRng::seed_from_u64(31);
        for noise in [0.0, 0.3] {
            let mut field = BeaconField::random_uniform(25, terrain(), &mut rng);
            let model = PerBeaconNoise::new(15.0, noise, 8);
            let seq0 = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
            let mut seq = seq0.clone();
            let mut par = seq0.clone();
            let id = field.add_beacon(Point::new(41.0, 59.0));
            let beacon = *field.get(id).unwrap();
            let d_seq = seq.add_beacon(&beacon, &model);
            let d_par = par.add_beacon_threaded(&beacon, &model, 4);
            assert_eq!(d_seq, d_par, "add deltas (noise {noise})");
            assert_bit_identical(&seq, &par, "threaded add");
            let r_seq = seq.remove_beacon(&beacon, &model);
            let r_par = par.remove_beacon_threaded(&beacon, &model, 3);
            assert_eq!(r_seq, r_par, "remove deltas (noise {noise})");
            assert_bit_identical(&seq, &par, "threaded remove");
        }
    }

    /// A beacon whose disk misses the lattice entirely: both paths must
    /// report an empty delta and change nothing.
    #[test]
    fn threaded_incremental_empty_reach_is_a_noop() {
        let lat = lattice(10.0);
        let mut rng = StdRng::seed_from_u64(37);
        let field = BeaconField::random_uniform(5, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let before = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
        // A probe far below the terrain: its whole disk misses the
        // lattice rows, so the banded path takes the empty-span exit.
        let probe = Beacon::new(abp_field::BeaconId(999), Point::new(5.0, -50.0));
        let mut map = before.clone();
        let delta = map.add_beacon_threaded(&probe, &model, 4);
        assert!(delta.is_empty());
        assert_eq!(delta.touched, 0);
        assert_bit_identical(&before, &map, "out-of-reach add");
    }

    #[test]
    fn add_beacon_delta_bounds_changed_region() {
        let lat = lattice(2.0);
        let mut rng = StdRng::seed_from_u64(23);
        let mut field = BeaconField::random_uniform(20, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let before = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
        let id = field.add_beacon(Point::new(40.0, 60.0));
        let beacon = *field.get(id).unwrap();
        let mut map = before.clone();
        let delta = map.add_beacon(&beacon, &model);
        assert!(!delta.is_empty());
        assert!(delta.touched > 0);
        // Every point whose error changed lies inside the delta's box.
        for ix in lat.indices() {
            let changed = map.error_at(ix) != before.error_at(ix);
            if changed {
                assert!(delta.contains(ix), "changed point {ix} outside delta");
            }
        }
        // And the box is tight to the beacon's reach.
        let (lo, hi) = delta.changed.unwrap();
        let r = model.max_range(beacon.tx(), beacon.pos());
        assert!(lat.point(lo).distance(beacon.pos()) <= r * 2.0_f64.sqrt() + 1e-9);
        assert!(lat.point(hi).distance(beacon.pos()) <= r * 2.0_f64.sqrt() + 1e-9);
    }

    #[test]
    fn kill_beacon_inverts_add_and_reports_same_region() {
        let lat = lattice(4.0);
        let mut rng = StdRng::seed_from_u64(29);
        let mut field = BeaconField::random_uniform(15, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let before = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
        let id = field.add_beacon(Point::new(70.0, 30.0));
        let beacon = *field.get(id).unwrap();
        let mut map = before.clone();
        let added = map.add_beacon(&beacon, &model);
        let killed = map.kill_beacon(&beacon, &model);
        assert_eq!(added.changed, killed.changed);
        assert_eq!(added.touched, killed.touched);
        for ix in lat.indices() {
            assert_eq!(map.heard_at(ix), before.heard_at(ix));
        }
    }

    #[test]
    fn row_error_sum_matches_cumulative_association() {
        let lat = lattice(10.0);
        let field = BeaconField::from_positions(terrain(), [Point::new(30.0, 30.0)]);
        let model = IdealDisk::new(25.0);
        let map = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
        let rect = Rect::new(Point::new(5.0, 15.0), Point::new(75.0, 85.0));
        let (i_lo, i_hi) = lat.index_span(rect.min().x, rect.max().x).unwrap();
        let (j_lo, j_hi) = lat.index_span(rect.min().y, rect.max().y).unwrap();
        let mut total = 0.0;
        for j in j_lo..=j_hi {
            total += map.row_error_sum(j, i_lo, i_hi);
        }
        assert_eq!(
            total.to_bits(),
            map.cumulative_error_in(&rect).to_bits(),
            "row-sum association must reproduce cumulative_error_in exactly"
        );
    }

    #[test]
    fn incremental_add_equals_full_resurvey() {
        let lat = lattice(2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for noise in [0.0, 0.5] {
            let mut field = BeaconField::random_uniform(30, terrain(), &mut rng);
            let model = PerBeaconNoise::new(15.0, noise, 21);
            let mut map = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
            // Add a beacon both ways.
            let id = field.add_beacon(Point::new(33.3, 66.6));
            let beacon = *field.get(id).unwrap();
            map.add_beacon(&beacon, &model);
            let full = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
            for ix in lat.indices() {
                assert_eq!(map.heard_at(ix), full.heard_at(ix));
                let (a, b) = (map.error_at(ix).unwrap(), full.error_at(ix).unwrap());
                assert!((a - b).abs() < 1e-9, "{ix}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn incremental_remove_inverts_add() {
        let lat = lattice(4.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut field = BeaconField::random_uniform(20, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let before = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
        let id = field.add_beacon(Point::new(20.0, 80.0));
        let beacon = *field.get(id).unwrap();
        let mut map = before.clone();
        map.add_beacon(&beacon, &model);
        map.remove_beacon(&beacon, &model);
        for ix in lat.indices() {
            assert_eq!(map.heard_at(ix), before.heard_at(ix));
            let (a, b) = (map.error_at(ix).unwrap(), before.error_at(ix).unwrap());
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn adding_a_beacon_never_reduces_heard_counts() {
        let lat = lattice(5.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut field = BeaconField::random_uniform(10, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let before = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
        let id = field.add_beacon(Point::new(50.0, 50.0));
        let mut after = before.clone();
        after.add_beacon(field.get(id).unwrap(), &model);
        for ix in lat.indices() {
            assert!(after.heard_at(ix) >= before.heard_at(ix));
        }
    }

    #[test]
    fn mean_and_median_match_summary() {
        let lat = lattice(5.0);
        let mut rng = StdRng::seed_from_u64(5);
        let field = BeaconField::random_uniform(50, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
        let s = map.summary();
        assert!((map.mean_error() - s.mean()).abs() < 1e-12);
        assert!((map.median_error() - s.median()).abs() < 1e-12);
        assert_eq!(map.valid_count(), s.len());
    }

    #[test]
    fn max_error_point_is_argmax() {
        let lat = lattice(10.0);
        let field = BeaconField::from_positions(terrain(), [Point::new(0.0, 0.0)]);
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::Origin);
        let (ix, e) = map.max_error_point().unwrap();
        for other in lat.indices() {
            assert!(map.error_at(other).unwrap() <= e);
        }
        // With Origin policy the worst point is the far corner (100, 100).
        assert_eq!(ix, LatticeIndex::new(10, 10));
    }

    #[test]
    fn cumulative_error_in_rect_sums_members() {
        let lat = lattice(10.0);
        let field = BeaconField::new(terrain());
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
        let rect = Rect::new(Point::new(0.0, 0.0), Point::new(20.0, 20.0));
        let mut manual = 0.0;
        lat.for_each_in_rect(&rect, |ix, _| manual += map.error_at(ix).unwrap());
        assert!((map.cumulative_error_in(&rect) - manual).abs() < 1e-9);
        // Whole-terrain cumulative = mean * count.
        let whole = map.cumulative_error_in(&terrain().bounds());
        assert!((whole - map.mean_error() * map.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn localizer_survey_honors_unheard_policy() {
        // A single corner beacon leaves most of the terrain unheard; a
        // TerrainCenter localizer still estimates (50, 50) there, and the
        // map must reflect that — error and estimate both present,
        // mutually consistent, and counted by the statistics.
        let lat = lattice(10.0);
        let field = BeaconField::from_positions(terrain(), [Point::new(0.0, 0.0)]);
        let model = IdealDisk::new(15.0);
        let localizer = CentroidLocalizer::new(UnheardPolicy::TerrainCenter);
        let map = ErrorMap::survey_with_localizer(&lat, &field, &model, &localizer);
        assert_eq!(map.policy(), UnheardPolicy::TerrainCenter);
        assert!(map.unheard_count() > 0);
        // Every point is valid under TerrainCenter.
        assert_eq!(map.valid_count(), map.len());
        let far = LatticeIndex::new(10, 10); // (100, 100): unheard corner
        assert_eq!(map.heard_at(far), 0);
        let est = map.estimate_at(far).expect("policy estimate must exist");
        assert_eq!(est, Point::new(50.0, 50.0));
        let err = map.error_at(far).expect("policy error must exist");
        assert!((err - est.distance(lat.point(far))).abs() < 1e-12);
        // And the whole map matches the beacon-major fast path, which has
        // always honored the policy.
        let fast = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::TerrainCenter);
        assert_eq!(fast.policy(), map.policy());
        for ix in lat.indices() {
            let (a, b) = (map.error_at(ix).unwrap(), fast.error_at(ix).unwrap());
            assert!((a - b).abs() < 1e-9, "{ix}: {a} vs {b}");
            assert_eq!(map.estimate_at(ix), fast.estimate_at(ix));
        }
    }

    #[test]
    #[should_panic(expected = "no valid measurements")]
    fn mean_panics_when_everything_excluded() {
        let lat = lattice(10.0);
        let field = BeaconField::new(terrain());
        let model = IdealDisk::new(15.0);
        let map = ErrorMap::survey(&lat, &field, &model, UnheardPolicy::Exclude);
        let _ = map.mean_error();
    }
}
