//! The exploring agent (paper §3).
//!
//! "We assume that the robot (or human) can determine its geographic
//! position using a high precision differential GPS receiver ... It also
//! has a capability to carry a certain number of beacons that it can
//! deploy as additional beacons wherever it deems necessary."
//!
//! [`Robot`] models exactly that: it walks a [`SurveyPlan`], measures the
//! localization error at every waypoint (optionally through an imperfect
//! GPS), tracks distance travelled, and carries a finite beacon payload it
//! can deploy. The paper's simplifying assumption — complete terrain
//! exploration with no measurement noise — is the `gps_sigma = 0` case.

use crate::errormap::ErrorMap;
use crate::plan::SurveyPlan;
use abp_fault::{GpsFault, GpsOutage};
use abp_field::{BeaconField, BeaconId};
use abp_geom::{DeterministicField, Point, Vec2};
use abp_localize::UnheardPolicy;
use abp_radio::Propagation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when deploying from an empty payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutOfBeacons;

impl fmt::Display for OutOfBeacons {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("robot has no beacons left to deploy")
    }
}

impl std::error::Error for OutOfBeacons {}

/// Summary of one survey pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobotReport {
    /// Waypoints measured.
    pub waypoints: usize,
    /// Ground distance covered by this pass, in meters.
    pub travelled: f64,
    /// Waypoints at which no beacon was heard.
    pub unheard: usize,
    /// Waypoints whose sample was discarded by a GPS outage window
    /// (always zero for fault-free surveys).
    pub dropped: usize,
}

/// A GPS-equipped mobile agent that surveys terrains and deploys beacons.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Point, Terrain};
/// use abp_localize::UnheardPolicy;
/// use abp_radio::IdealDisk;
/// use abp_survey::{Robot, SurveyPlan};
///
/// let terrain = Terrain::square(100.0);
/// let field = BeaconField::from_positions(terrain, [Point::new(50.0, 50.0)]);
/// let mut robot = Robot::new(0.0, 2, 7); // perfect GPS, carrying 2 beacons
/// let plan = SurveyPlan::new(terrain, 10.0);
/// let (map, report) = robot.survey(&plan, &field, &IdealDisk::new(15.0),
///                                  UnheardPolicy::TerrainCenter);
/// assert_eq!(report.waypoints, map.len());
/// assert!(report.travelled > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Robot {
    gps_sigma: f64,
    payload: usize,
    gps_noise: DeterministicField,
    odometer: f64,
}

impl Robot {
    /// Creates a robot.
    ///
    /// * `gps_sigma` — standard deviation of the GPS position error in
    ///   meters (`0` reproduces the paper's noise-free assumption),
    /// * `payload` — number of beacons carried,
    /// * `seed` — realizes the GPS error field.
    ///
    /// # Panics
    ///
    /// Panics if `gps_sigma` is negative or not finite.
    pub fn new(gps_sigma: f64, payload: usize, seed: u64) -> Self {
        assert!(
            gps_sigma.is_finite() && gps_sigma >= 0.0,
            "GPS sigma must be finite and non-negative, got {gps_sigma}"
        );
        Robot {
            gps_sigma,
            payload,
            gps_noise: DeterministicField::new(seed),
            odometer: 0.0,
        }
    }

    /// Beacons still carried.
    #[inline]
    pub fn payload(&self) -> usize {
        self.payload
    }

    /// Total distance travelled over the robot's lifetime, in meters.
    #[inline]
    pub fn odometer(&self) -> f64 {
        self.odometer
    }

    /// The GPS standard deviation.
    #[inline]
    pub fn gps_sigma(&self) -> f64 {
        self.gps_sigma
    }

    /// The position the robot's GPS reports when it is truly at `p`
    /// (deterministic per position; zero-mean, `gps_sigma`-scaled
    /// Gaussian via Box–Muller).
    pub fn gps_reading(&self, p: Point) -> Point {
        if self.gps_sigma == 0.0 {
            return p;
        }
        let u1 = self.gps_noise.unit(0x675, p).max(1e-12);
        let u2 = self.gps_noise.unit(0x676, p);
        let mag = (-2.0 * u1.ln()).sqrt() * self.gps_sigma;
        let angle = std::f64::consts::TAU * u2;
        p + Vec2::new(mag * angle.cos(), mag * angle.sin())
    }

    /// Walks `plan` measuring the localization error at every waypoint:
    /// the robot compares the centroid estimate against its *GPS-believed*
    /// position, so GPS error perturbs the measurements exactly as it
    /// would in the field.
    ///
    /// With `gps_sigma = 0` the result is identical to the fast
    /// [`ErrorMap::survey`] sweep (asserted in tests).
    ///
    /// Note: maps measured through a noisy GPS should be refreshed by
    /// another robot pass rather than by [`ErrorMap::add_beacon`], whose
    /// incremental re-derivation assumes noise-free reference positions.
    pub fn survey(
        &mut self,
        plan: &SurveyPlan,
        field: &BeaconField,
        model: &dyn Propagation,
        policy: UnheardPolicy,
    ) -> (ErrorMap, RobotReport) {
        self.survey_faulty(plan, field, model, policy, None)
    }

    /// [`Robot::survey`] through an (optional) GPS outage schedule.
    ///
    /// Waypoints are numbered in plan order; for each, the outage
    /// schedule may [`GpsFault::Drop`] the sample — the robot was there
    /// (distance still accrues) but the measurement is lost, leaving a
    /// hole the map's accounting reports as *dropped* — or
    /// [`GpsFault::Bias`] it, offsetting the believed position by the
    /// window's constant bias vector on top of any Gaussian GPS noise.
    ///
    /// `outage = None` is byte-for-byte [`Robot::survey`]; the radio
    /// faults (beacon mortality, burst loss) arrive through `model`
    /// instead, pre-wrapped by `FaultSchedule::wrap`.
    pub fn survey_faulty(
        &mut self,
        plan: &SurveyPlan,
        field: &BeaconField,
        model: &dyn Propagation,
        policy: UnheardPolicy,
        outage: Option<&GpsOutage>,
    ) -> (ErrorMap, RobotReport) {
        let lattice = *plan.lattice();
        let n = lattice.len();
        let mut sum_x = vec![0.0; n];
        let mut sum_y = vec![0.0; n];
        let mut count = vec![0u32; n];
        // Beacon-major accumulation (same sweep as ErrorMap::survey).
        for b in field {
            let reach = model.max_range(b.tx(), b.pos());
            lattice.for_each_in_disk(abp_geom::Disk::new(b.pos(), reach), |ix, p| {
                if model.connected(b.tx(), b.pos(), p) {
                    let flat = lattice.flat(ix);
                    sum_x[flat] += b.pos().x;
                    sum_y[flat] += b.pos().y;
                    count[flat] += 1;
                }
            });
        }
        // Walk the plan: derive each waypoint's error against the GPS fix.
        let mut errors = vec![f64::NAN; n];
        let mut unheard = 0usize;
        let mut dropped = 0usize;
        let mut travelled = 0.0;
        let mut prev: Option<Point> = None;
        for (waypoint, ix) in plan.waypoints().enumerate() {
            let truth = lattice.point(ix);
            if let Some(prev) = prev {
                travelled += prev.distance(truth);
            }
            prev = Some(truth);
            let fault = outage.and_then(|o| o.fault_at(waypoint));
            let believed = match fault {
                Some(GpsFault::Drop) => {
                    // The robot passed through blind: the sample is lost.
                    dropped += 1;
                    if count[lattice.flat(ix)] == 0 {
                        unheard += 1;
                    }
                    continue;
                }
                Some(GpsFault::Bias(offset)) => self.gps_reading(truth) + offset,
                None => self.gps_reading(truth),
            };
            let flat = lattice.flat(ix);
            let estimate = if count[flat] > 0 {
                let inv = 1.0 / count[flat] as f64;
                Some(Point::new(sum_x[flat] * inv, sum_y[flat] * inv))
            } else {
                unheard += 1;
                policy.estimate(lattice.terrain())
            };
            if let Some(est) = estimate {
                errors[flat] = est.distance(believed);
            }
        }
        self.odometer += travelled;
        let map = ErrorMap::from_parts(lattice, policy, sum_x, sum_y, count, errors);
        let report = RobotReport {
            waypoints: n,
            travelled,
            unheard,
            dropped,
        };
        (map, report)
    }

    /// Deploys one carried beacon at `pos`, adding it to `field`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBeacons`] if the payload is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside the field's terrain (propagated from
    /// [`BeaconField::add_beacon`]).
    pub fn deploy(
        &mut self,
        field: &mut BeaconField,
        pos: Point,
    ) -> Result<BeaconId, OutOfBeacons> {
        if self.payload == 0 {
            return Err(OutOfBeacons);
        }
        let id = field.add_beacon(pos);
        self.payload -= 1;
        Ok(id)
    }
}

impl fmt::Display for Robot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "robot (GPS sigma {} m, {} beacons aboard, {:.0} m travelled)",
            self.gps_sigma, self.payload, self.odometer
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::Terrain;
    use abp_radio::IdealDisk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    #[test]
    fn perfect_gps_matches_fast_survey() {
        let mut rng = StdRng::seed_from_u64(3);
        let field = BeaconField::random_uniform(30, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let plan = SurveyPlan::new(terrain(), 5.0);
        let mut robot = Robot::new(0.0, 0, 1);
        let (robot_map, report) = robot.survey(&plan, &field, &model, UnheardPolicy::TerrainCenter);
        let fast = ErrorMap::survey(plan.lattice(), &field, &model, UnheardPolicy::TerrainCenter);
        assert_eq!(report.waypoints, fast.len());
        for ix in plan.lattice().indices() {
            let (a, b) = (robot_map.error_at(ix).unwrap(), fast.error_at(ix).unwrap());
            assert!((a - b).abs() < 1e-12, "{ix}");
        }
    }

    #[test]
    fn gps_noise_perturbs_measurements() {
        let mut rng = StdRng::seed_from_u64(5);
        let field = BeaconField::random_uniform(30, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let plan = SurveyPlan::new(terrain(), 10.0);
        let (clean, _) =
            Robot::new(0.0, 0, 1).survey(&plan, &field, &model, UnheardPolicy::TerrainCenter);
        let (noisy, _) =
            Robot::new(2.0, 0, 1).survey(&plan, &field, &model, UnheardPolicy::TerrainCenter);
        let differing = plan
            .lattice()
            .indices()
            .filter(|ix| (clean.error_at(*ix).unwrap() - noisy.error_at(*ix).unwrap()).abs() > 1e-9)
            .count();
        assert!(differing > plan.len() / 2, "only {differing} points moved");
        // And the perturbation is bounded in aggregate: means stay close.
        assert!((clean.mean_error() - noisy.mean_error()).abs() < 2.0);
    }

    #[test]
    fn gps_reading_deterministic() {
        let robot = Robot::new(3.0, 0, 9);
        let p = Point::new(12.0, 34.0);
        assert_eq!(robot.gps_reading(p), robot.gps_reading(p));
        assert_ne!(robot.gps_reading(p), p);
    }

    #[test]
    fn odometer_accumulates_over_passes() {
        let field = BeaconField::new(terrain());
        let model = IdealDisk::new(15.0);
        let plan = SurveyPlan::new(terrain(), 20.0);
        let mut robot = Robot::new(0.0, 0, 1);
        robot.survey(&plan, &field, &model, UnheardPolicy::TerrainCenter);
        let once = robot.odometer();
        assert!((once - plan.travel_distance()).abs() < 1e-9);
        robot.survey(&plan, &field, &model, UnheardPolicy::TerrainCenter);
        assert!((robot.odometer() - 2.0 * once).abs() < 1e-9);
    }

    #[test]
    fn payload_depletes_and_errors_when_empty() {
        let mut field = BeaconField::new(terrain());
        let mut robot = Robot::new(0.0, 2, 1);
        robot.deploy(&mut field, Point::new(10.0, 10.0)).unwrap();
        robot.deploy(&mut field, Point::new(20.0, 20.0)).unwrap();
        assert_eq!(robot.payload(), 0);
        assert_eq!(
            robot.deploy(&mut field, Point::new(30.0, 30.0)),
            Err(OutOfBeacons)
        );
        assert_eq!(field.len(), 2);
    }

    #[test]
    fn faultless_survey_faulty_matches_survey() {
        let mut rng = StdRng::seed_from_u64(11);
        let field = BeaconField::random_uniform(25, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let plan = SurveyPlan::new(terrain(), 5.0);
        let (plain, pr) =
            Robot::new(1.5, 0, 4).survey(&plan, &field, &model, UnheardPolicy::TerrainCenter);
        let (faulty, fr) = Robot::new(1.5, 0, 4).survey_faulty(
            &plan,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            None,
        );
        assert_eq!(plain, faulty);
        assert_eq!(pr, fr);
        assert_eq!(fr.dropped, 0);
    }

    #[test]
    fn gps_outage_drops_samples_into_the_accounting_channel() {
        use abp_fault::GpsOutagePlan;
        let mut rng = StdRng::seed_from_u64(11);
        let field = BeaconField::random_uniform(40, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let plan = SurveyPlan::new(terrain(), 5.0);
        let outage = GpsOutage::new(
            77,
            GpsOutagePlan {
                outage_fraction: 0.3,
                window: 7,
                bias_meters: 0.0,
            },
        );
        let (map, report) = Robot::new(0.0, 0, 4).survey_faulty(
            &plan,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            Some(&outage),
        );
        assert!(report.dropped > 0, "30% outage must drop something");
        let acc = map.accounting();
        assert!(acc.dropped > 0);
        assert_eq!(
            acc.measured + acc.degraded + acc.unheard + acc.dropped,
            map.len()
        );
        // Replays agree bit for bit.
        let (map2, report2) = Robot::new(0.0, 0, 4).survey_faulty(
            &plan,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            Some(&outage),
        );
        // (Not `assert_eq!(map, map2)`: dropped samples encode as NaN,
        // which never compares equal — compare bit patterns per point.)
        for ix in plan.lattice().indices() {
            assert_eq!(
                map.error_at(ix).map(f64::to_bits),
                map2.error_at(ix).map(f64::to_bits)
            );
            assert_eq!(map.heard_at(ix), map2.heard_at(ix));
        }
        assert_eq!(report, report2);
    }

    #[test]
    fn gps_bias_perturbs_but_keeps_samples() {
        use abp_fault::GpsOutagePlan;
        let mut rng = StdRng::seed_from_u64(13);
        let field = BeaconField::random_uniform(40, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let plan = SurveyPlan::new(terrain(), 5.0);
        let outage = GpsOutage::new(
            9,
            GpsOutagePlan {
                outage_fraction: 0.4,
                window: 5,
                bias_meters: 4.0,
            },
        );
        let mk = |o: Option<&GpsOutage>| {
            Robot::new(0.0, 0, 4).survey_faulty(
                &plan,
                &field,
                &model,
                UnheardPolicy::TerrainCenter,
                o,
            )
        };
        let (clean, _) = mk(None);
        let (biased, report) = mk(Some(&outage));
        assert_eq!(report.dropped, 0, "bias mode must not drop samples");
        assert_eq!(biased.accounting().dropped, 0);
        let moved = plan
            .lattice()
            .indices()
            .filter(|ix| clean.error_at(*ix) != biased.error_at(*ix))
            .count();
        assert!(moved > 0, "bias must perturb some measurements");
        // Bias degrades: the map read through a lying GPS looks worse.
        assert!(biased.mean_error() > clean.mean_error());
    }

    #[test]
    fn report_counts_unheard_waypoints() {
        let field = BeaconField::from_positions(terrain(), [Point::new(0.0, 0.0)]);
        let model = IdealDisk::new(15.0);
        let plan = SurveyPlan::new(terrain(), 50.0); // 3x3 waypoints
        let (_, report) =
            Robot::new(0.0, 0, 1).survey(&plan, &field, &model, UnheardPolicy::TerrainCenter);
        // Only (0, 0) hears the beacon.
        assert_eq!(report.unheard, 8);
    }
}
