//! One-shot descriptive statistics of a sample.

use crate::ci::ConfidenceInterval;
use crate::quantile::quantile_sorted;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Descriptive statistics of a finite sample.
///
/// Computed once from the data (sorting it internally) and then queried in
/// O(1). This is the per-survey statistic bundle of the evaluation
/// pipeline: the paper's metrics are differences of `mean()` and `median()`
/// between the before- and after-placement surveys.
///
/// # Example
///
/// ```
/// use abp_stats::Summary;
/// let s = Summary::from_slice(&[4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.median(), 2.5);
/// assert_eq!(s.quantile(1.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    std: f64,
}

impl Summary {
    /// Computes statistics from a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn from_slice(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = if sorted.len() < 2 {
            0.0
        } else {
            sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        };
        Summary {
            sorted,
            mean,
            std: var.sqrt(),
        }
    }

    /// Computes statistics from an iterator.
    ///
    /// Not the `FromIterator` trait: construction panics on an empty
    /// iterator, which `collect()` would hide behind an innocuous-looking
    /// call site.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty or yields NaN.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let values: Vec<f64> = iter.into_iter().collect();
        Summary::from_slice(&values)
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sample mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample median (R-7 interpolation).
    #[inline]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Interpolated quantile, `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_sorted(&self.sorted, q).expect("summary is never empty")
    }

    /// Smallest observation.
    #[inline]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    #[inline]
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// Unbiased sample standard deviation.
    #[inline]
    pub fn std(&self) -> f64 {
        self.std
    }

    /// The sorted sample, ascending.
    #[inline]
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// 95 % confidence interval for the mean.
    pub fn mean_ci95(&self) -> ConfidenceInterval {
        ConfidenceInterval::from_moments(self.mean, self.std, self.sorted.len() as u64)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} median={:.4} std={:.4} min={:.4} max={:.4}",
            self.len(),
            self.mean(),
            self.median(),
            self.std(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.len(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.median(), 4.5);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.std() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        let s = Summary::from_slice(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.mean_ci95().half_width, 0.0);
    }

    #[test]
    fn quantiles_consistent_with_sorted_values() {
        let s = Summary::from_slice(&[10.0, 30.0, 20.0]);
        assert_eq!(s.sorted_values(), &[10.0, 20.0, 30.0]);
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(0.5), 20.0);
        assert_eq!(s.quantile(1.0), 30.0);
    }

    #[test]
    fn from_iter_matches_from_slice() {
        let a = Summary::from_iter((0..10).map(|x| x as f64));
        let vals: Vec<f64> = (0..10).map(|x| x as f64).collect();
        let b = Summary::from_slice(&vals);
        assert_eq!(a, b);
    }

    #[test]
    fn ci_uses_sample_count() {
        let s = Summary::from_iter((0..1000).map(|x| (x % 7) as f64));
        let ci = s.mean_ci95();
        assert!(ci.half_width > 0.0);
        assert!(ci.contains(s.mean()));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::from_slice(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        let _ = Summary::from_slice(&[1.0, f64::NAN]);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = Summary::from_slice(&[1.0, 2.0]).to_string();
        for token in ["n=2", "mean=", "median=", "std=", "min=", "max="] {
            assert!(s.contains(token), "{s} missing {token}");
        }
    }
}
