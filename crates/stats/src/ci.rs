//! Confidence intervals for sample means.
//!
//! The paper states: *“To characterize the stability of our results, all
//! graphs include 95 % confidence intervals.”* We provide the classic
//! CI for a sample mean: Student's *t* for small samples, the normal
//! approximation (z = 1.96) for `n >= 30`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Two-sided 97.5 % Student-*t* critical values for `df = 1..=30`.
///
/// Standard table values; index `df - 1`.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Two-sided 97.5 % anchors for `30 <= df <= 120` (standard table rows);
/// intermediate degrees of freedom interpolate linearly in `1/df`.
const T_975_ANCHORS: [(f64, f64); 7] = [
    (30.0, 2.042),
    (40.0, 2.0211),
    (50.0, 2.0086),
    (60.0, 2.0003),
    (80.0, 1.9901),
    (100.0, 1.9840),
    (120.0, 1.9799),
];

/// The 97.5th-percentile critical value (two-sided 95 % CI multiplier) of
/// Student's *t* distribution with `df` degrees of freedom.
///
/// Exact table values for `df <= 30`; linear interpolation in `1/df`
/// between table anchors through `df = 120` (the classic textbook rule —
/// *t* is nearly linear in `1/df`); beyond 120 a smooth tail that matches
/// the `df = 120` anchor and approaches the normal value 1.96 as
/// `df → ∞`. The result is continuous and non-increasing everywhere —
/// there is no jump from 2.042 to 1.96 between `df = 30` and 31.
///
/// # Panics
///
/// Panics if `df == 0`.
pub fn student_t_975(df: u64) -> f64 {
    assert!(df > 0, "t distribution needs at least 1 degree of freedom");
    if df <= 30 {
        return T_975[(df - 1) as usize];
    }
    let x = df as f64;
    if x > 120.0 {
        return 1.96 + (1.9799 - 1.96) * 120.0 / x;
    }
    let inv = 1.0 / x;
    for pair in T_975_ANCHORS.windows(2) {
        let (lo_df, lo_t) = pair[0];
        let (hi_df, hi_t) = pair[1];
        if x <= hi_df {
            let f = (inv - 1.0 / hi_df) / (1.0 / lo_df - 1.0 / hi_df);
            return hi_t + f * (lo_t - hi_t);
        }
    }
    unreachable!("df in (30, 120] is covered by the anchor table")
}

/// Half-width of the 95 % confidence interval for a mean estimated from
/// `n` samples with sample standard deviation `s`.
///
/// Returns `0.0` for `n < 2` (no spread information).
///
/// # Example
///
/// ```
/// use abp_stats::ci95_half_width;
/// let hw = ci95_half_width(1000, 2.0);
/// // Large n: the multiplier is within a fraction of a percent of the
/// // normal value 1.96.
/// assert!((hw - 1.96 * 2.0 / 1000f64.sqrt()).abs() < 1e-3);
/// ```
pub fn ci95_half_width(n: u64, s: f64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    student_t_975(n - 1) * s / (n as f64).sqrt()
}

/// A point estimate with a symmetric 95 % confidence interval.
///
/// The unit of everything is whatever the estimate's unit is (meters in the
/// paper's figures).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate (sample mean).
    pub estimate: f64,
    /// Half-width of the 95 % interval: the interval is
    /// `[estimate - half_width, estimate + half_width]`.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Builds an interval from a sample mean, its standard deviation and
    /// sample count.
    pub fn from_moments(mean: f64, std: f64, n: u64) -> Self {
        ConfidenceInterval {
            estimate: mean,
            half_width: ci95_half_width(n, std),
        }
    }

    /// Lower bound of the interval.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.estimate - self.half_width
    }

    /// Upper bound of the interval.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.estimate + self.half_width
    }

    /// Returns `true` if `x` falls inside the interval (bounds included).
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// Returns `true` if the two intervals overlap — the coarse visual test
    /// the paper's error bars afford.
    #[inline]
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo() <= other.hi() && other.lo() <= self.hi()
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.estimate, self.half_width)
    }
}

/// 95 % confidence interval for the mean of the *paired differences*
/// `a[i] - b[i]`.
///
/// This is the right comparison for the paper's experiments: every
/// algorithm is evaluated on the *same* random beacon fields, so the
/// per-field difference cancels the (large) field-to-field variance that
/// two independent CIs would both carry. If the returned interval
/// excludes zero, `a` beats `b` (or vice versa) at the 95 % level.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// use abp_stats::ci::paired_diff_ci;
/// let grid = [2.0, 2.2, 1.9, 2.1];
/// let max_ = [1.0, 1.1, 0.9, 1.0];
/// let d = paired_diff_ci(&grid, &max_);
/// assert!(d.lo() > 0.0); // grid significantly better
/// ```
pub fn paired_diff_ci(a: &[f64], b: &[f64]) -> ConfidenceInterval {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    assert!(!a.is_empty(), "paired comparison needs at least one pair");
    let mut w = crate::welford::Welford::new();
    for (x, y) in a.iter().zip(b) {
        w.push(x - y);
    }
    ConfidenceInterval::from_moments(w.mean(), w.sample_std(), w.count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_spot_checks() {
        assert_eq!(student_t_975(1), 12.706);
        assert_eq!(student_t_975(10), 2.228);
        assert_eq!(student_t_975(30), 2.042);
        assert_eq!(student_t_975(40), 2.0211);
        assert_eq!(student_t_975(60), 2.0003);
        assert_eq!(student_t_975(120), 1.9799);
        assert!((student_t_975(10_000) - 1.96).abs() < 3e-4);
    }

    #[test]
    fn t_is_continuous_at_the_table_boundary() {
        // The old lookup jumped from 2.042 at df = 30 straight to 1.96 at
        // df = 31; the true value is ≈ 2.0395.
        let t31 = student_t_975(31);
        assert!((t31 - 2.040).abs() < 2e-3, "t(31) = {t31}");
        assert!(student_t_975(30) - t31 < 0.005, "no discontinuity at 30→31");
        // Interpolated values stay between their anchors.
        let t70 = student_t_975(70);
        assert!(t70 < student_t_975(60) && t70 > student_t_975(80));
    }

    #[test]
    fn t_decreases_with_df() {
        let mut prev = f64::INFINITY;
        for df in 1..=500 {
            let t = student_t_975(df);
            assert!(t <= prev, "t must be non-increasing in df (df = {df})");
            assert!(t >= 1.96, "t must stay above the normal value (df = {df})");
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "degree of freedom")]
    fn t_rejects_zero_df() {
        let _ = student_t_975(0);
    }

    #[test]
    fn half_width_small_n_uses_t() {
        // n = 2 => df = 1 => multiplier 12.706.
        let hw = ci95_half_width(2, 1.0);
        assert!((hw - 12.706 / 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn half_width_degenerate_n() {
        assert_eq!(ci95_half_width(0, 5.0), 0.0);
        assert_eq!(ci95_half_width(1, 5.0), 0.0);
    }

    #[test]
    fn interval_bounds_and_contains() {
        let ci = ConfidenceInterval {
            estimate: 10.0,
            half_width: 2.0,
        };
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert!(ci.contains(8.0));
        assert!(ci.contains(12.0));
        assert!(!ci.contains(12.001));
    }

    #[test]
    fn interval_overlap() {
        let a = ConfidenceInterval {
            estimate: 0.0,
            half_width: 1.0,
        };
        let b = ConfidenceInterval {
            estimate: 1.5,
            half_width: 1.0,
        };
        let c = ConfidenceInterval {
            estimate: 5.0,
            half_width: 1.0,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn from_moments_matches_formula() {
        let ci = ConfidenceInterval::from_moments(3.0, 2.0, 100);
        assert_eq!(ci.estimate, 3.0);
        assert!((ci.half_width - student_t_975(99) * 2.0 / 10.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod paired_tests {
    use super::*;

    #[test]
    fn paired_ci_cancels_shared_variance() {
        // a and b share a huge per-trial component; their difference is
        // tiny and consistent. Paired CI resolves it, independent CIs
        // would not.
        let shared: Vec<f64> = (0..50).map(|k| (k as f64 * 0.7).sin() * 100.0).collect();
        let a: Vec<f64> = shared.iter().map(|s| s + 1.0).collect();
        let b = shared;
        let d = paired_diff_ci(&a, &b);
        assert!((d.estimate - 1.0).abs() < 1e-9);
        assert!(d.half_width < 1e-9);
        assert!(d.lo() > 0.0);
    }

    #[test]
    fn paired_ci_covers_zero_for_identical_samples() {
        let xs: Vec<f64> = (0..20).map(|k| k as f64).collect();
        let d = paired_diff_ci(&xs, &xs);
        assert_eq!(d.estimate, 0.0);
        assert!(d.contains(0.0));
    }

    #[test]
    fn sign_flips_with_argument_order() {
        let a = [3.0, 3.0, 3.0];
        let b = [1.0, 1.0, 1.0];
        assert_eq!(paired_diff_ci(&a, &b).estimate, 2.0);
        assert_eq!(paired_diff_ci(&b, &a).estimate, -2.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        let _ = paired_diff_ci(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn rejects_empty() {
        let _ = paired_diff_ci(&[], &[]);
    }
}
