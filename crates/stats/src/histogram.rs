//! Fixed-width histograms.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A histogram with equal-width bins over `[lo, hi)`.
///
/// Observations below `lo` land in an underflow counter, observations at or
/// above `hi` in an overflow counter, so no data is silently dropped. Used
/// to inspect localization-error distributions (e.g. the "few loud hot
/// spots" effect the paper describes for the Max algorithm).
///
/// # Example
///
/// ```
/// use abp_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.extend([0.5, 2.5, 2.6, 9.9, 11.0]);
/// assert_eq!(h.count(0), 1);
/// assert_eq!(h.count(1), 2);
/// assert_eq!(h.count(4), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    lo_bits: u64,
    hi_bits: u64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, or `lo >= hi`, or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi})"
        );
        Histogram {
            lo_bits: lo.to_bits(),
            hi_bits: hi.to_bits(),
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    fn lo(&self) -> f64 {
        f64::from_bits(self.lo_bits)
    }

    fn hi(&self) -> f64 {
        f64::from_bits(self.hi_bits)
    }

    /// Number of bins.
    #[inline]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    #[inline]
    pub fn bin_width(&self) -> f64 {
        (self.hi() - self.lo()) / self.bins() as f64
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        if x < self.lo() {
            self.underflow += 1;
        } else if x >= self.hi() {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo()) / self.bin_width()) as usize;
            // Guard against rounding placing x == hi - eps into bins().
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Count in bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= bins()`.
    #[inline]
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Observations below the range.
    #[inline]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    #[inline]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// The `[lo, hi)` interval covered by bin `idx`.
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.bins(), "bin {idx} out of range");
        let w = self.bin_width();
        (self.lo() + idx as f64 * w, self.lo() + (idx + 1) as f64 * w)
    }

    /// Iterates `(bin_lo, bin_hi, count)` for all bins.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins()).map(move |k| {
            let (lo, hi) = self.bin_range(k);
            (lo, hi, self.counts[k])
        })
    }

    /// Merges another histogram with identical binning into this one.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo_bits, other.lo_bits, "histogram lo mismatch");
        assert_eq!(self.hi_bits, other.hi_bits, "histogram hi mismatch");
        assert_eq!(self.bins(), other.bins(), "histogram bin-count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "histogram [{}, {}) x{} (under {}, over {})",
            self.lo(),
            self.hi(),
            self.bins(),
            self.underflow,
            self.overflow
        )?;
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (lo, hi, n) in self.iter() {
            let bar = "#".repeat((n * 40 / max) as usize);
            writeln!(f, "  [{lo:8.3}, {hi:8.3}) {n:8} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_ranges() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bins(), 5);
        assert_eq!(h.bin_width(), 2.0);
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert_eq!(h.bin_range(4), (8.0, 10.0));
    }

    #[test]
    fn record_routes_to_correct_bin() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0);
        h.record(1.999);
        h.record(2.0);
        h.record(9.999);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 4.0, 4);
        a.extend([0.5, 1.5]);
        let mut b = Histogram::new(0.0, 4.0, 4);
        b.extend([1.6, 3.9, -1.0]);
        a.merge(&b);
        assert_eq!(a.count(0), 1);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(3), 1);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.total(), 5);
    }

    #[test]
    #[should_panic(expected = "bin-count mismatch")]
    fn merge_rejects_different_bins() {
        let mut a = Histogram::new(0.0, 4.0, 4);
        let b = Histogram::new(0.0, 4.0, 8);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn rejects_inverted_range() {
        let _ = Histogram::new(5.0, 1.0, 3);
    }

    #[test]
    fn iter_covers_whole_range() {
        let h = Histogram::new(-2.0, 2.0, 4);
        let ranges: Vec<_> = h.iter().map(|(lo, hi, _)| (lo, hi)).collect();
        assert_eq!(ranges.first().unwrap().0, -2.0);
        assert_eq!(ranges.last().unwrap().1, 2.0);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }
}
