//! Interpolated quantiles.

/// Interpolated quantile of a sample (R-7 / NumPy `linear` method).
///
/// `q` is the quantile in `[0, 1]`; `q = 0.5` is the median. The input
/// slice does **not** need to be sorted — a sorted copy is made internally;
/// use [`quantile_sorted`] in hot paths where the data is already ordered.
///
/// Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
///
/// # Example
///
/// ```
/// use abp_stats::quantile;
/// let xs = [3.0, 1.0, 2.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// [`quantile`] over data already sorted ascending.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`. Debug builds additionally verify the
/// slice is sorted.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile q={q} outside [0, 1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile_sorted requires ascending input"
    );
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median of a sample (`quantile(values, 0.5)`).
///
/// Returns `None` for an empty sample. This is the statistic behind the
/// paper's *Improvement in Median Error* metric.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Median over data already sorted ascending.
pub fn median_sorted(sorted: &[f64]) -> Option<f64> {
    quantile_sorted(sorted, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn median_empty_none() {
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_single_and_repeated() {
        assert_eq!(median(&[7.0]), Some(7.0));
        assert_eq!(median(&[2.0, 2.0, 2.0, 2.0]), Some(2.0));
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(30.0));
    }

    #[test]
    fn quantile_interpolates_r7() {
        // NumPy: np.quantile([1,2,3,4], .25) == 1.75
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.25), Some(1.75));
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.75), Some(3.25));
    }

    #[test]
    fn quantile_unsorted_input_ok() {
        assert_eq!(quantile(&[9.0, 1.0, 5.0], 0.5), Some(5.0));
    }

    #[test]
    fn quantile_sorted_matches_quantile() {
        let xs = [0.5, 1.5, 2.5, 9.0, 12.0];
        for q in [0.0, 0.1, 0.33, 0.5, 0.9, 1.0] {
            assert_eq!(quantile(&xs, q), quantile_sorted(&xs, q));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_bad_q() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn quantile_rejects_nan() {
        let _ = quantile(&[1.0, f64::NAN], 0.5);
    }
}
