//! Streaming mean/variance (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean and variance.
///
/// Welford's online algorithm; supports O(1) `push` and `merge` (Chan et
/// al.'s parallel variant), so per-thread accumulators from the Monte-Carlo
/// executor can be combined without storing samples.
///
/// # Example
///
/// ```
/// use abp_stats::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions only) if `x` is NaN.
    #[inline]
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN observation");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no observations have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean; `0.0` when empty (check [`Welford::is_empty`]).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation; `+inf` when empty.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance (`n - 1` denominator); `0.0` for fewer than
    /// two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); `0.0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    #[inline]
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`; `0.0` when empty.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the 95 % confidence interval for the mean.
    ///
    /// Uses Student's *t* below 30 observations and the normal
    /// approximation above (see [`crate::ci::ci95_half_width`]).
    pub fn ci95_half_width(&self) -> f64 {
        crate::ci::ci95_half_width(self.count, self.sample_std())
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator() {
        let w = Welford::new();
        assert!(w.is_empty());
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.standard_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let w: Welford = std::iter::once(3.5).collect();
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.min(), 3.5);
        assert_eq!(w.max(), 3.5);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn known_mean_and_variance() {
        let w: Welford = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.population_variance(), 4.0);
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|k| (k as f64) * 0.37 - 5.0).collect();
        let seq: Welford = xs.iter().copied().collect();
        let mut a: Welford = xs[..33].iter().copied().collect();
        let b: Welford = xs[33..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - seq.sample_variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w: Welford = [1.0, 2.0].into_iter().collect();
        let snapshot = w;
        w.merge(&Welford::new());
        assert_eq!(w, snapshot);
        let mut e = Welford::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Catastrophic cancellation check: variance of {1e9, 1e9+1, 1e9+2}.
        let w: Welford = [1e9, 1e9 + 1.0, 1e9 + 2.0].into_iter().collect();
        assert!((w.sample_variance() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let few: Welford = (0..10).map(|k| k as f64).collect();
        let many: Welford = (0..1000).map(|k| (k % 10) as f64).collect();
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }
}
