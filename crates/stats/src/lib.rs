//! Statistics substrate for the `beaconplace` workspace.
//!
//! The paper's evaluation reports, per configuration, the *mean* and
//! *median* localization error over all measured lattice points, averaged
//! over 1000 random beacon fields, with 95 % confidence intervals. This
//! crate provides exactly that machinery, reusable and well-tested:
//!
//! * [`Summary`] — one-pass descriptive statistics of a sample
//!   (mean/median/min/max/std/quantiles/CI),
//! * [`Welford`] — numerically stable streaming mean/variance with `merge`
//!   for parallel reduction,
//! * [`ci`] — normal and Student-*t* 95 % confidence intervals,
//! * [`quantile()`](quantile::quantile) — interpolated quantiles (R-7, the default of R/NumPy),
//! * [`Histogram`] — fixed-width binning for error distributions.
//!
//! # Example
//!
//! ```
//! use abp_stats::Summary;
//! let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean(), 2.5);
//! assert_eq!(s.median(), 2.5);
//! assert_eq!(s.min(), 1.0);
//! assert_eq!(s.max(), 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod histogram;
pub mod quantile;
pub mod summary;
pub mod welford;

pub use ci::{ci95_half_width, paired_diff_ci, student_t_975, ConfidenceInterval};
pub use histogram::Histogram;
pub use quantile::{median, quantile};
pub use summary::Summary;
pub use welford::Welford;
