//! Property-based tests for the statistics substrate.

use abp_stats::{ci95_half_width, median, quantile, Histogram, Summary, Welford};
use proptest::prelude::*;

fn sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..200)
}

proptest! {
    #[test]
    fn mean_within_min_max(xs in sample()) {
        let s = Summary::from_slice(&xs);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
    }

    #[test]
    fn median_within_min_max(xs in sample()) {
        let m = median(&xs).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn quantile_monotone_in_q(xs in sample(), q1 in 0.0..=1.0f64, q2 in 0.0..=1.0f64) {
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, qa).unwrap();
        let b = quantile(&xs, qb).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn summary_agrees_with_welford(xs in sample()) {
        let s = Summary::from_slice(&xs);
        let w: Welford = xs.iter().copied().collect();
        let scale = 1.0 + s.mean().abs();
        prop_assert!((s.mean() - w.mean()).abs() < 1e-7 * scale);
        prop_assert!((s.std() - w.sample_std()).abs() < 1e-5 * (1.0 + s.std()));
        prop_assert_eq!(s.min(), w.min());
        prop_assert_eq!(s.max(), w.max());
    }

    #[test]
    fn welford_merge_any_split(xs in sample(), split in 0usize..200) {
        let k = split.min(xs.len());
        let seq: Welford = xs.iter().copied().collect();
        let mut a: Welford = xs[..k].iter().copied().collect();
        let b: Welford = xs[k..].iter().copied().collect();
        a.merge(&b);
        prop_assert_eq!(a.count(), seq.count());
        prop_assert!((a.mean() - seq.mean()).abs() < 1e-6 * (1.0 + seq.mean().abs()));
        prop_assert!(
            (a.sample_variance() - seq.sample_variance()).abs()
                < 1e-5 * (1.0 + seq.sample_variance())
        );
    }

    #[test]
    fn shift_invariance_of_std(xs in sample(), shift in -1e5..1e5f64) {
        let s1 = Summary::from_slice(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let s2 = Summary::from_slice(&shifted);
        prop_assert!((s1.std() - s2.std()).abs() < 1e-5 * (1.0 + s1.std()));
        prop_assert!((s2.mean() - s1.mean() - shift).abs() < 1e-6 * (1.0 + shift.abs()));
    }

    #[test]
    fn ci_half_width_nonnegative_and_shrinking(s in 0.0..1e3f64, n1 in 2u64..1000, n2 in 2u64..1000) {
        let (a, b) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let wa = ci95_half_width(a, s);
        let wb = ci95_half_width(b, s);
        prop_assert!(wa >= 0.0 && wb >= 0.0);
        prop_assert!(wb <= wa + 1e-12, "more samples must not widen the CI");
    }

    #[test]
    fn histogram_conserves_observations(xs in sample(), bins in 1usize..32) {
        let mut h = Histogram::new(-1e6, 1e6, bins);
        h.extend(xs.iter().copied());
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn histogram_merge_equals_concat(xs in sample(), ys in sample(), bins in 1usize..16) {
        let mut a = Histogram::new(-1e6, 1e6, bins);
        a.extend(xs.iter().copied());
        let mut b = Histogram::new(-1e6, 1e6, bins);
        b.extend(ys.iter().copied());
        a.merge(&b);
        let mut c = Histogram::new(-1e6, 1e6, bins);
        c.extend(xs.iter().copied().chain(ys.iter().copied()));
        prop_assert_eq!(a, c);
    }
}
