//! The `abp serve-bench` load harness.
//!
//! Starts an in-process daemon, drives it with N client threads over
//! real TCP sockets (so the measured path includes framing and the
//! loopback stack), and reports:
//!
//! * **client-observed latency** — each client stamps every
//!   request/response round trip; quantiles are exact order statistics
//!   over the merged post-warmup samples (rank `ceil(q·n)`, the same
//!   rule `HistogramSnapshot::quantile_ns` documents),
//! * **throughput** — total requests over the driving wall time,
//! * **allocs/request** — the daemon's post-warmup thread-local
//!   allocator deltas (exact under `--features count-allocs`, vacuous
//!   zeros otherwise),
//! * **bit-identity** — [`engine::served_matches_batch`] over the full
//!   served lattice, so the report can only claim a healthy daemon if
//!   served localizations equal the batch pipeline's bit for bit.
//!
//! Client threads allocate freely (latency logs live on their side);
//! allocator accounting is per *worker* thread, so in-process clients
//! do not pollute the server-side measurement.

use crate::daemon::{Daemon, ServeConfig};
use crate::engine;
use crate::protocol::{self as wire, PlaceAlgo};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load shape for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Measured requests per client (after warm-up).
    pub requests_per_client: usize,
    /// Unmeasured warm-up requests per client; at least the daemon's
    /// own per-connection allocation warm-up.
    pub warmup_per_client: usize,
    /// Every n-th request is a place request (the rest localize).
    pub place_every: usize,
    /// Seed for the clients' request mix.
    pub seed: u64,
}

impl LoadConfig {
    /// The committed-benchmark shape: 4 clients × 2000 requests.
    pub fn paper_scale() -> Self {
        LoadConfig {
            clients: 4,
            requests_per_client: 2000,
            warmup_per_client: 64,
            place_every: 16,
            seed: 7,
        }
    }

    /// A sub-second shape for tests and CI smoke runs.
    pub fn tiny() -> Self {
        LoadConfig {
            clients: 2,
            requests_per_client: 150,
            warmup_per_client: 40,
            place_every: 16,
            seed: 7,
        }
    }
}

/// The harness result — everything the `serve_qps` bench block records.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Client threads driven.
    pub clients: usize,
    /// Measured requests (post-warmup, summed over clients).
    pub requests: u64,
    /// Wall time of the driving phase, seconds.
    pub wall_s: f64,
    /// Requests per second over the driving phase.
    pub qps: f64,
    /// Median round-trip latency, seconds.
    pub p50_s: f64,
    /// 95th-percentile round-trip latency, seconds.
    pub p95_s: f64,
    /// 99th-percentile round-trip latency, seconds.
    pub p99_s: f64,
    /// Fastest observed round trip, seconds.
    pub min_s: f64,
    /// Slowest observed round trip, seconds.
    pub max_s: f64,
    /// Requests inside the server-side allocation windows.
    pub measured_requests: u64,
    /// Server-side allocator calls per measured request.
    pub allocs_per_request: f64,
    /// Server-side allocated bytes per measured request.
    pub bytes_per_request: f64,
    /// Whether the counting allocator was compiled in.
    pub alloc_counting: bool,
    /// Whether served localization matched the batch path bit-for-bit
    /// over the full lattice.
    pub identical: bool,
    /// Epoch at shutdown (0: the load phase applied nothing).
    pub final_epoch: u64,
    /// `/metrics` scrapes completed while the load was driving (0 when
    /// the daemon ran without a metrics listener).
    pub scrapes: u64,
    /// Median scrape latency (connect through full body), seconds.
    pub scrape_p50_s: f64,
    /// Slowest scrape, seconds.
    pub scrape_max_s: f64,
}

/// The overload gate's absolute bound on accepted-request p99: with
/// admission control shedding the excess, the requests the daemon
/// *accepts* at 2× capacity must still answer within this budget.
pub const OVERLOAD_P99_BOUND_S: f64 = 0.25;

/// Requests an overload client sends per admitted connection before
/// politely reconnecting — the churn that lets shed clients back in.
/// Must exceed the daemon's per-connection allocation warm-up so the
/// overload path lands inside the alloc measurement windows.
const OVERLOAD_BURST: usize = 64;

/// The `serve-bench` overload block: what happened when twice the
/// admitted capacity hammered the daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadReport {
    /// Client threads offered (2× the admission cap).
    pub offered_clients: usize,
    /// The daemon's `max_conns` admission cap during the flood.
    pub max_conns: usize,
    /// Accepted, measured requests (post-warmup, summed over clients).
    pub requests: u64,
    /// Connections the accept gate shed with [`wire::Status::Overloaded`]
    /// (server-side counter).
    pub shed_connections: u64,
    /// Shed connections over all connection attempts the daemon saw.
    pub shed_rate: f64,
    /// Median accepted-request round trip, seconds (includes admission
    /// queue wait — that is the point).
    pub p50_s: f64,
    /// 99th-percentile accepted-request round trip, seconds.
    pub p99_s: f64,
    /// Whether `p99_s` stayed within [`OVERLOAD_P99_BOUND_S`] — the
    /// claim that shedding keeps accepted work bounded under flood.
    pub bounded: bool,
    /// Requests inside the server-side allocation windows.
    pub measured_requests: u64,
    /// Server-side allocator calls per measured request (the zero-alloc
    /// invariant must hold under overload too).
    pub allocs_per_request: f64,
    /// Whether the counting allocator was compiled in.
    pub alloc_counting: bool,
}

/// One overload client: bursts of localize requests on short-lived
/// connections, reconnecting with a 1 ms pause whenever the accept
/// gate sheds it. Returns the accepted-request latencies.
fn overload_client(addr: std::net::SocketAddr, load: &LoadConfig) -> io::Result<Vec<u64>> {
    let total = load.warmup_per_client + load.requests_per_client;
    let mut latencies = Vec::with_capacity(load.requests_per_client);
    let mut done = 0usize;
    let mut out = Vec::new();
    let mut frame = Vec::new();
    wire::encode_localize_request(&mut out, &[0, 1, 2]);
    // Far beyond any sane shed streak; a daemon that never admits this
    // client again is a bug, not load.
    let mut attempts_left = 10_000usize;
    while done < total {
        attempts_left = attempts_left
            .checked_sub(1)
            .ok_or_else(|| io::Error::other("overload client starved: never re-admitted"))?;
        let mut conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true)?;
        conn.set_read_timeout(Some(Duration::from_secs(10)))?;
        let mut admitted = true;
        for _ in 0..OVERLOAD_BURST.min(total - done) {
            let started = Instant::now();
            if conn.write_all(&out).is_err() {
                // The gate closed us mid-write; its Overloaded frame may
                // already be on the wire. Treat as shed.
                admitted = false;
                break;
            }
            match wire::read_frame(&mut conn, &mut frame) {
                Ok(true) if frame.first() == Some(&0) => {
                    if done >= load.warmup_per_client {
                        latencies.push(started.elapsed().as_nanos() as u64);
                    }
                    done += 1;
                }
                Ok(true) if frame.first() == Some(&(wire::Status::Overloaded as u8)) => {
                    admitted = false;
                    break;
                }
                Ok(true) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("overload client got status {:?}", frame.first()),
                    ));
                }
                Ok(false) => {
                    admitted = false;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {
                    admitted = false;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if !admitted {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    Ok(latencies)
}

/// Floods the daemon with **twice** its admission cap and measures what
/// the accepted requests cost. The daemon runs with
/// `max_conns = load.clients` and `2 × load.clients` client threads
/// burst against it; shed clients back off 1 ms and retry. The report
/// carries the gate's shed counter, the accepted-side quantiles, and
/// the [`OVERLOAD_P99_BOUND_S`] verdict.
///
/// # Errors
///
/// Propagates daemon start-up and socket errors; a client observing a
/// non-`Ok`, non-`Overloaded` status fails the run, as does a client
/// the gate starves outright.
pub fn run_overload(cfg: &ServeConfig, load: &LoadConfig) -> io::Result<OverloadReport> {
    let capacity = load.clients.max(1);
    let offered = capacity * 2;
    let cfg = ServeConfig {
        max_conns: capacity,
        ..cfg.clone()
    };
    let daemon = Daemon::start(&cfg)?;
    let addr = daemon.local_addr();

    let mut handles = Vec::with_capacity(offered);
    for _ in 0..offered {
        let load = load.clone();
        handles.push(std::thread::spawn(move || overload_client(addr, &load)));
    }
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        let lat = h
            .join()
            .map_err(|_| io::Error::other("overload client thread panicked"))??;
        latencies.extend(lat);
    }
    let stats = daemon.shutdown();
    latencies.sort_unstable();
    assert!(
        !latencies.is_empty(),
        "overload must measure at least one accepted request"
    );
    let ns = 1e-9;
    let p99_s = quantile_ns(&latencies, 0.99) as f64 * ns;
    let attempts = stats.connections + stats.shed;
    Ok(OverloadReport {
        offered_clients: offered,
        max_conns: capacity,
        requests: latencies.len() as u64,
        shed_connections: stats.shed,
        shed_rate: if attempts == 0 {
            0.0
        } else {
            stats.shed as f64 / attempts as f64
        },
        p50_s: quantile_ns(&latencies, 0.50) as f64 * ns,
        p99_s,
        bounded: p99_s <= OVERLOAD_P99_BOUND_S,
        measured_requests: stats.measured_requests,
        allocs_per_request: stats.allocs_per_request(),
        alloc_counting: stats.alloc_counting,
    })
}

/// splitmix64: the clients' cheap deterministic request mixer.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exact quantile over sorted samples: rank `ceil(q·n)` clamped to
/// `[1, n]`, matching the histogram convention in `abp-trace`.
fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn client_run(
    addr: std::net::SocketAddr,
    info_seed: u64,
    load: &LoadConfig,
) -> io::Result<Vec<u64>> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    let mut out = Vec::new();
    let mut frame = Vec::new();

    wire::encode_info_request(&mut out);
    conn.write_all(&out)?;
    wire::read_frame(&mut conn, &mut frame)?;
    let info = wire::decode_info_response(&frame)
        .map_err(|s| io::Error::new(io::ErrorKind::InvalidData, format!("info: {s:?}")))?;
    let roster: Vec<u64> = info.beacons.iter().map(|&(id, _)| id).collect();

    let mut state = info_seed;
    let mut ids = Vec::new();
    let mut latencies = Vec::with_capacity(load.requests_per_client);
    let total = load.warmup_per_client + load.requests_per_client;
    for i in 0..total {
        if load.place_every > 0 && i % load.place_every == load.place_every - 1 {
            let algo = match splitmix(&mut state) % 3 {
                0 => PlaceAlgo::Random,
                1 => PlaceAlgo::Max,
                _ => PlaceAlgo::Grid,
            };
            wire::encode_place_request(&mut out, algo, splitmix(&mut state), false);
        } else {
            // A random subset of 1..=8 roster ids (duplicates possible;
            // the server dedups).
            let k = 1 + (splitmix(&mut state) as usize % 8);
            ids.clear();
            for _ in 0..k {
                ids.push(roster[splitmix(&mut state) as usize % roster.len()]);
            }
            wire::encode_localize_request(&mut out, &ids);
        }
        let started = Instant::now();
        conn.write_all(&out)?;
        if !wire::read_frame(&mut conn, &mut frame)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server hung up mid-load",
            ));
        }
        let elapsed = started.elapsed().as_nanos() as u64;
        // Responses must decode as a success of the matching kind.
        let ok = matches!(frame.first().copied(), Some(0));
        if !ok {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("error status {:?} under load", frame.first()),
            ));
        }
        if i >= load.warmup_per_client {
            latencies.push(elapsed);
        }
    }
    Ok(latencies)
}

/// One blocking `/metrics` scrape: connect, request, read the full
/// response, check the status line. Returns the latency.
fn scrape_once(addr: std::net::SocketAddr) -> io::Result<Duration> {
    let started = Instant::now();
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    if !response.starts_with("HTTP/1.0 200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("scrape status: {:.60}", response),
        ));
    }
    Ok(started.elapsed())
}

/// Runs the full harness: daemon up, identity gate, N clients, exact
/// quantiles, daemon down. When the daemon carries a metrics listener
/// ([`ServeConfig::metrics_addr`]), a side thread scrapes `/metrics`
/// continuously while the load drives and the report carries the scrape
/// latencies — the cost of observing the daemon *under* load.
///
/// # Errors
///
/// Propagates daemon start-up and client socket errors; a client
/// observing an error status or early hang-up fails the run.
pub fn run_load(cfg: &ServeConfig, load: &LoadConfig) -> io::Result<LoadReport> {
    let daemon = Daemon::start(cfg)?;
    // Identity gate before load: the snapshot the daemon serves must
    // answer exactly like the batch pipeline, over the whole lattice.
    let identical = engine::served_matches_batch(&daemon.snapshot(), 1);
    let addr = daemon.local_addr();

    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scraper = daemon.metrics_addr().map(|maddr| {
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || -> io::Result<Vec<u64>> {
            let mut samples = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                samples.push(scrape_once(maddr)?.as_nanos() as u64);
                // Prometheus-ish cadence, scaled down to bench length:
                // frequent enough to land many scrapes mid-load, sparse
                // enough that rendering the exposition doesn't contend
                // with the serving threads it is measuring.
                std::thread::sleep(Duration::from_millis(25));
            }
            Ok(samples)
        })
    });

    let driving = Instant::now();
    let mut handles = Vec::with_capacity(load.clients);
    for c in 0..load.clients {
        let load = load.clone();
        let seed = load.seed ^ ((c as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
        handles.push(std::thread::spawn(move || client_run(addr, seed, &load)));
    }
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        let client = h
            .join()
            .map_err(|_| io::Error::other("client thread panicked"))??;
        latencies.extend(client);
    }
    let wall_s = driving.elapsed().as_secs_f64();

    scrape_stop.store(true, Ordering::Relaxed);
    let mut scrape_ns: Vec<u64> = match scraper {
        Some(h) => h
            .join()
            .map_err(|_| io::Error::other("scraper thread panicked"))??,
        None => Vec::new(),
    };
    scrape_ns.sort_unstable();

    let stats = daemon.shutdown();
    latencies.sort_unstable();
    assert!(
        !latencies.is_empty(),
        "load must measure at least one request"
    );
    let ns = 1e-9;
    Ok(LoadReport {
        clients: load.clients,
        requests: latencies.len() as u64,
        wall_s,
        qps: latencies.len() as f64 / wall_s,
        p50_s: quantile_ns(&latencies, 0.50) as f64 * ns,
        p95_s: quantile_ns(&latencies, 0.95) as f64 * ns,
        p99_s: quantile_ns(&latencies, 0.99) as f64 * ns,
        min_s: latencies[0] as f64 * ns,
        max_s: latencies[latencies.len() - 1] as f64 * ns,
        measured_requests: stats.measured_requests,
        allocs_per_request: stats.allocs_per_request(),
        bytes_per_request: if stats.measured_requests == 0 {
            0.0
        } else {
            stats.measured_bytes as f64 / stats.measured_requests as f64
        },
        alloc_counting: stats.alloc_counting,
        identical,
        final_epoch: stats.final_epoch,
        scrapes: scrape_ns.len() as u64,
        scrape_p50_s: if scrape_ns.is_empty() {
            0.0
        } else {
            quantile_ns(&scrape_ns, 0.50) as f64 * ns
        },
        scrape_max_s: scrape_ns.last().map_or(0.0, |&v| v as f64 * ns),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_rank_rule() {
        let s = [10u64, 20, 30, 40];
        assert_eq!(quantile_ns(&s, 0.0), 10);
        assert_eq!(quantile_ns(&s, 0.5), 20);
        assert_eq!(quantile_ns(&s, 0.51), 30);
        assert_eq!(quantile_ns(&s, 1.0), 40);
    }

    #[test]
    fn tiny_load_reports_sane_numbers() {
        let report = run_load(&ServeConfig::tiny(), &LoadConfig::tiny()).unwrap();
        assert_eq!(report.clients, 2);
        assert_eq!(report.requests, 300);
        assert!(report.qps > 0.0);
        assert!(report.p50_s > 0.0);
        assert!(report.p50_s <= report.p95_s && report.p95_s <= report.p99_s);
        assert!(report.min_s <= report.p50_s && report.p99_s <= report.max_s);
        assert!(report.identical, "served must match batch bit-for-bit");
        assert_eq!(report.final_epoch, 0, "no applies under plain load");
        assert!(report.measured_requests > 0);
        if report.alloc_counting {
            assert_eq!(
                report.allocs_per_request, 0.0,
                "zero-alloc serving invariant"
            );
        }
        assert_eq!(report.scrapes, 0, "no metrics listener, no scrapes");
    }

    #[test]
    fn overload_flood_sheds_and_stays_bounded() {
        let load = LoadConfig {
            clients: 2,
            requests_per_client: 160,
            warmup_per_client: 16,
            place_every: 0,
            seed: 7,
        };
        let report = run_overload(&ServeConfig::tiny(), &load).unwrap();
        assert_eq!(report.offered_clients, 4);
        assert_eq!(report.max_conns, 2);
        assert_eq!(report.requests, 4 * 160);
        assert!(
            report.shed_connections > 0,
            "2x-capacity flood must trip the accept gate"
        );
        assert!(report.shed_rate > 0.0 && report.shed_rate < 1.0);
        assert!(report.p50_s > 0.0 && report.p50_s <= report.p99_s);
        assert!(
            report.bounded,
            "accepted p99 {}s blew the {}s overload bound",
            report.p99_s, OVERLOAD_P99_BOUND_S
        );
        if report.alloc_counting {
            assert!(
                report.measured_requests > 0,
                "bursts must outlive alloc warm-up"
            );
            assert_eq!(
                report.allocs_per_request, 0.0,
                "zero-alloc invariant must hold under overload"
            );
        }
    }

    #[test]
    fn load_with_metrics_listener_scrapes_under_load() {
        let cfg = ServeConfig {
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServeConfig::tiny()
        };
        let report = run_load(&cfg, &LoadConfig::tiny()).unwrap();
        assert!(report.scrapes > 0, "the scraper must land during load");
        assert!(report.scrape_p50_s > 0.0);
        assert!(report.scrape_p50_s <= report.scrape_max_s);
        if report.alloc_counting {
            assert_eq!(
                report.allocs_per_request, 0.0,
                "scraping must not break the zero-alloc request path"
            );
        }
    }
}
