//! The daemon: accept loop, worker pool, rebuilder thread.
//!
//! Thread layout:
//!
//! * **accept** — one thread on a non-blocking listener; hands accepted
//!   connections to the worker queue and polls the shutdown flag,
//! * **workers** — thread-per-core by default; each owns a
//!   [`ServeScratch`] and a [`SnapshotReader`](crate::snapshot::SnapshotReader),
//!   so the request path touches no shared mutable state beyond the
//!   epoch hint,
//! * **rebuilder** — the control plane: receives applied placement
//!   points, re-surveys on a private [`WorldSnapshot`] build, publishes
//!   the next epoch. All allocation-heavy work lives here.
//!
//! Connections are persistent: a worker serves frames until clean EOF,
//! a socket error, or shutdown. Reads run under a short timeout so every
//! blocked worker notices shutdown within tens of milliseconds; a
//! [`Daemon::shutdown`] therefore completes promptly even with idle
//! keep-alive clients attached.
//!
//! Under `--features count-allocs`, each worker brackets the post-warmup
//! portion of every connection with thread-local allocator snapshots;
//! [`StatsSnapshot::allocs_per_request`] is the aggregate — the value
//! the bench gate pins at exactly zero.

use crate::engine::{self, ServeScratch};
use crate::protocol::{self, Request, Status, MAX_FRAME};
use crate::snapshot::{SnapshotCell, WorldSnapshot};
use abp_field::BeaconField;
use abp_geom::{Point, Terrain};
use abp_radio::IdealDisk;
use abp_trace::AllocSnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Requests a worker serves on a connection before it starts counting
/// allocations: lets the reused buffers reach steady-state size.
const ALLOC_WARMUP_REQUESTS: u64 = 32;

/// How long blocked reads and queue waits sleep between shutdown polls.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Daemon construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Beacons in the initial uniform-random field.
    pub beacons: usize,
    /// Square terrain side (meters).
    pub side: f64,
    /// Survey lattice spacing (meters).
    pub step: f64,
    /// Nominal radio range `R` (meters).
    pub nominal_range: f64,
    /// Seed for the initial field.
    pub seed: u64,
}

impl ServeConfig {
    /// The paper's evaluation scale: 100 m × 100 m terrain, 1 m lattice,
    /// `R` = 15 m, 100 beacons.
    pub fn paper_scale() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            beacons: 100,
            side: 100.0,
            step: 1.0,
            nominal_range: 15.0,
            seed: 42,
        }
    }

    /// A seconds-scale configuration for tests and CI smoke runs.
    pub fn tiny() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            beacons: 25,
            side: 100.0,
            step: 4.0,
            nominal_range: 15.0,
            seed: 42,
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
    }
}

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    localize: AtomicU64,
    place: AtomicU64,
    info: AtomicU64,
    errors: AtomicU64,
    applies: AtomicU64,
    connections: AtomicU64,
    measured_requests: AtomicU64,
    measured_allocs: AtomicU64,
    measured_bytes: AtomicU64,
}

/// Final counters reported by [`Daemon::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total requests served (all opcodes, including error answers).
    pub requests: u64,
    /// Localize requests.
    pub localize: u64,
    /// Place requests.
    pub place: u64,
    /// Info requests.
    pub info: u64,
    /// Malformed frames answered with an error status.
    pub errors: u64,
    /// Placement proposals applied (deployed + re-surveyed).
    pub applies: u64,
    /// Connections accepted.
    pub connections: u64,
    /// The epoch current at shutdown.
    pub final_epoch: u64,
    /// Requests inside the post-warmup allocation measurement windows.
    pub measured_requests: u64,
    /// Allocator calls observed inside those windows.
    pub measured_allocs: u64,
    /// Bytes requested inside those windows.
    pub measured_bytes: u64,
    /// Whether the counting allocator was compiled in
    /// (`--features count-allocs`); without it the measured fields read
    /// zero vacuously.
    pub alloc_counting: bool,
}

impl StatsSnapshot {
    /// Allocator calls per measured request (0.0 when nothing was
    /// measured). The serving invariant pins this at exactly 0.
    pub fn allocs_per_request(&self) -> f64 {
        if self.measured_requests == 0 {
            0.0
        } else {
            self.measured_allocs as f64 / self.measured_requests as f64
        }
    }

    /// One-line summary, printed by the CLI on shutdown.
    pub fn summary_line(&self) -> String {
        format!(
            "served {} requests ({} localize, {} place, {} info, {} errors) \
             over {} connections; {} applies, final epoch {}; \
             allocs/request {:.3}{}",
            self.requests,
            self.localize,
            self.place,
            self.info,
            self.errors,
            self.connections,
            self.applies,
            self.final_epoch,
            self.allocs_per_request(),
            if self.alloc_counting {
                ""
            } else {
                " (counting off)"
            },
        )
    }
}

struct Shared {
    cell: SnapshotCell,
    shutdown: AtomicBool,
    stats: Stats,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    apply_tx: Mutex<Sender<Point>>,
}

/// A running daemon. Dropping without [`Daemon::shutdown`] aborts the
/// threads detached; call `shutdown` for an orderly stop and the final
/// stats.
pub struct Daemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    rebuilder: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Builds the initial world snapshot (epoch 0), binds the listener,
    /// and spawns the accept/worker/rebuilder threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind, local address).
    pub fn start(cfg: &ServeConfig) -> io::Result<Daemon> {
        let terrain = Terrain::square(cfg.side);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let field = BeaconField::random_uniform(cfg.beacons, terrain, &mut rng);
        let model = Arc::new(IdealDisk::new(cfg.nominal_range));
        let initial = WorldSnapshot::build(0, field, model, cfg.step);

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let (apply_tx, apply_rx) = mpsc::channel::<Point>();
        let shared = Arc::new(Shared {
            cell: SnapshotCell::new(initial),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            apply_tx: Mutex::new(apply_tx),
        });

        let rebuilder = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("abp-serve-rebuild".into())
                .spawn(move || rebuild_loop(&shared, apply_rx))
                .expect("spawn rebuilder")
        };

        let workers = (0..cfg.resolved_workers())
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("abp-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("abp-serve-accept".into())
                .spawn(move || accept_loop(&shared, listener))
                .expect("spawn accept")
        };

        Ok(Daemon {
            addr,
            shared,
            accept: Some(accept),
            workers,
            rebuilder: Some(rebuilder),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch_hint()
    }

    /// A handle to the currently published snapshot (for tests and the
    /// bench identity gate; takes the cell's read lock once).
    pub fn snapshot(&self) -> Arc<WorldSnapshot> {
        self.shared.cell.load()
    }

    /// Orderly shutdown: stop accepting, let every worker finish its
    /// current frame and notice the flag, join the rebuilder, return the
    /// final stats.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.rebuilder.take() {
            let _ = h.join();
        }
        let s = &self.shared.stats;
        StatsSnapshot {
            requests: s.requests.load(Ordering::Relaxed),
            localize: s.localize.load(Ordering::Relaxed),
            place: s.place.load(Ordering::Relaxed),
            info: s.info.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
            applies: s.applies.load(Ordering::Relaxed),
            connections: s.connections.load(Ordering::Relaxed),
            final_epoch: self.shared.cell.epoch_hint(),
            measured_requests: s.measured_requests.load(Ordering::Relaxed),
            measured_allocs: s.measured_allocs.load(Ordering::Relaxed),
            measured_bytes: s.measured_bytes.load(Ordering::Relaxed),
            alloc_counting: abp_trace::counting(),
        }
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let mut q = shared.queue.lock().expect("queue lock");
                q.push_back(stream);
                drop(q);
                shared.queue_cv.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn rebuild_loop(shared: &Shared, apply_rx: mpsc::Receiver<Point>) {
    loop {
        match apply_rx.recv_timeout(POLL_INTERVAL) {
            Ok(point) => {
                let _span = abp_trace::span!("serve_rebuild");
                let current = shared.cell.load();
                let next = current.with_beacon_added(point);
                shared.cell.publish(next);
                shared.stats.applies.fetch_add(1, Ordering::Relaxed);
                crate::APPLIES.add(1);
                crate::EPOCHS_PUBLISHED.add(1);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut scratch = ServeScratch::new();
    let mut reader = shared.cell.reader();
    loop {
        let stream = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(s) = q.pop_front() {
                    break s;
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let (guard, _timeout) = shared
                    .queue_cv
                    .wait_timeout(q, POLL_INTERVAL)
                    .expect("queue cv");
                q = guard;
            }
        };
        serve_connection(shared, &mut reader, stream, &mut scratch);
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
    }
}

enum ReadOutcome {
    Frame,
    CleanEof,
    Stop,
}

/// Fills `buf` completely, polling the shutdown flag on read timeouts.
/// `allow_eof` marks a frame boundary where a peer may hang up cleanly.
fn read_full(
    shared: &Shared,
    stream: &mut TcpStream,
    buf: &mut [u8],
    allow_eof: bool,
) -> ReadOutcome {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if allow_eof && got == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Stop
                };
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return ReadOutcome::Stop;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Stop,
        }
    }
    ReadOutcome::Frame
}

fn serve_connection(
    shared: &Shared,
    reader: &mut crate::snapshot::SnapshotReader<'_>,
    mut stream: TcpStream,
    scratch: &mut ServeScratch,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut served = 0u64;
    let mut alloc_base: Option<AllocSnapshot> = None;
    let mut header = [0u8; 4];
    while let ReadOutcome::Frame = read_full(shared, &mut stream, &mut header, true) {
        let len = u32::from_le_bytes(header);
        if len > MAX_FRAME {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            crate::PROTOCOL_ERRORS.add(1);
            protocol::encode_error_response(&mut scratch.out_buf, Status::Oversize);
            let _ = stream.write_all(&scratch.out_buf);
            // The unread payload cannot be resynchronized past; drop
            // the connection.
            break;
        }
        scratch.in_buf.clear();
        scratch.in_buf.resize(len as usize, 0);
        match read_full(shared, &mut stream, &mut scratch.in_buf, false) {
            ReadOutcome::Frame => {}
            ReadOutcome::CleanEof | ReadOutcome::Stop => break,
        }

        if served == ALLOC_WARMUP_REQUESTS {
            alloc_base = Some(abp_trace::thread_snapshot());
        }
        let started = Instant::now();
        let _span = abp_trace::span!("serve_request");
        handle_request(shared, reader, scratch);
        crate::REQUEST_NS.record(started.elapsed());
        crate::REQUESTS.add(1);
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        served += 1;

        if stream.write_all(&scratch.out_buf).is_err() {
            break;
        }
    }
    if let Some(base) = alloc_base {
        let delta = abp_trace::thread_snapshot().delta_since(base);
        let s = &shared.stats;
        s.measured_requests
            .fetch_add(served - ALLOC_WARMUP_REQUESTS, Ordering::Relaxed);
        s.measured_allocs.fetch_add(delta.allocs, Ordering::Relaxed);
        s.measured_bytes.fetch_add(delta.bytes, Ordering::Relaxed);
    }
}

/// Decodes `scratch.in_buf`, dispatches, and leaves the complete
/// response frame in `scratch.out_buf`. Never allocates beyond scratch
/// growth.
fn handle_request(
    shared: &Shared,
    reader: &mut crate::snapshot::SnapshotReader<'_>,
    scratch: &mut ServeScratch,
) {
    let request = match protocol::decode_request(&scratch.in_buf, &mut scratch.ids) {
        Ok(req) => req,
        Err(status) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            crate::PROTOCOL_ERRORS.add(1);
            protocol::encode_error_response(&mut scratch.out_buf, status);
            return;
        }
    };
    let snap = reader.current();
    match request {
        Request::Localize => {
            shared.stats.localize.fetch_add(1, Ordering::Relaxed);
            crate::LOCALIZE_REQUESTS.add(1);
            match engine::localize(snap, &scratch.ids, &mut scratch.slots) {
                Ok(reply) => protocol::encode_localize_response(&mut scratch.out_buf, &reply),
                Err(_unknown_id) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    crate::PROTOCOL_ERRORS.add(1);
                    protocol::encode_error_response(&mut scratch.out_buf, Status::UnknownBeacon);
                }
            }
        }
        Request::Place { algo, seed, apply } => {
            shared.stats.place.fetch_add(1, Ordering::Relaxed);
            crate::PLACE_REQUESTS.add(1);
            let position = engine::place(snap, algo, seed);
            // Applying is control-plane: enqueue for the rebuilder and
            // answer immediately from the current epoch. (The send
            // allocates a channel node; applies are intentionally
            // outside the zero-alloc steady-state invariant.)
            let applied = apply
                && shared
                    .apply_tx
                    .lock()
                    .expect("apply sender lock")
                    .send(position)
                    .is_ok();
            protocol::encode_place_response(
                &mut scratch.out_buf,
                &protocol::PlaceReply {
                    epoch: snap.epoch(),
                    algo,
                    applied,
                    position,
                },
            );
        }
        Request::Info => {
            shared.stats.info.fetch_add(1, Ordering::Relaxed);
            crate::INFO_REQUESTS.add(1);
            protocol::encode_info_response(
                &mut scratch.out_buf,
                snap.epoch(),
                snap.terrain().side(),
                snap.model().nominal_range(),
                snap.field().len() as u32,
                snap.field().iter().map(|b| (b.id().0, b.pos())),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{self as wire, PlaceAlgo};

    fn roundtrip(stream: &mut TcpStream, out: &[u8], frame: &mut Vec<u8>) {
        stream.write_all(out).unwrap();
        assert!(wire::read_frame(stream, frame).unwrap());
    }

    #[test]
    fn daemon_serves_all_opcodes_and_shuts_down_cleanly() {
        let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut out = Vec::new();
        let mut frame = Vec::new();

        wire::encode_info_request(&mut out);
        roundtrip(&mut conn, &out, &mut frame);
        let info = wire::decode_info_response(&frame).unwrap();
        assert_eq!(info.epoch, 0);
        assert_eq!(info.terrain_side, 100.0);
        assert_eq!(info.beacons.len(), 25);

        // Localize from the first three roster ids and check the served
        // estimate against the client-side centroid, bit for bit.
        let ids: Vec<u64> = info.beacons.iter().take(3).map(|&(id, _)| id).collect();
        wire::encode_localize_request(&mut out, &ids);
        roundtrip(&mut conn, &out, &mut frame);
        let reply = wire::decode_localize_response(&frame).unwrap();
        assert_eq!(reply.heard, 3);
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        for &(_, p) in info.beacons.iter().take(3) {
            sum_x += p.x;
            sum_y += p.y;
        }
        let est = reply.estimate.unwrap();
        assert_eq!(est.x.to_bits(), (sum_x / 3.0).to_bits());
        assert_eq!(est.y.to_bits(), (sum_y / 3.0).to_bits());

        // Empty heard set: degraded terrain-center estimate.
        wire::encode_localize_request(&mut out, &[]);
        roundtrip(&mut conn, &out, &mut frame);
        let reply = wire::decode_localize_response(&frame).unwrap();
        assert!(reply.degraded);
        assert_eq!(reply.estimate, Some(Point::new(50.0, 50.0)));

        // Placement without apply: deterministic, in-terrain, epoch 0.
        wire::encode_place_request(&mut out, PlaceAlgo::Max, 0, false);
        roundtrip(&mut conn, &out, &mut frame);
        let place = wire::decode_place_response(&frame).unwrap();
        assert!(!place.applied);
        assert_eq!(place.epoch, 0);
        assert!(place.position.x >= 0.0 && place.position.x <= 100.0);

        // Unknown beacon id answers UnknownBeacon, connection survives.
        wire::encode_localize_request(&mut out, &[u64::MAX]);
        roundtrip(&mut conn, &out, &mut frame);
        assert_eq!(
            wire::decode_localize_response(&frame),
            Err(Status::UnknownBeacon)
        );
        wire::encode_info_request(&mut out);
        roundtrip(&mut conn, &out, &mut frame);
        assert!(wire::decode_info_response(&frame).is_ok());

        drop(conn);
        let stats = daemon.shutdown();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.localize, 3);
        assert_eq!(stats.place, 1);
        assert_eq!(stats.info, 2);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.final_epoch, 0);
    }

    #[test]
    fn apply_triggers_resurvey_and_epoch_bump() {
        let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut out = Vec::new();
        let mut frame = Vec::new();

        wire::encode_place_request(&mut out, PlaceAlgo::Max, 0, true);
        roundtrip(&mut conn, &out, &mut frame);
        let place = wire::decode_place_response(&frame).unwrap();
        assert!(place.applied);

        // The rebuilder publishes asynchronously; poll INFO until the
        // epoch moves (bounded).
        let deadline = Instant::now() + Duration::from_secs(10);
        let info = loop {
            wire::encode_info_request(&mut out);
            roundtrip(&mut conn, &out, &mut frame);
            let info = wire::decode_info_response(&frame).unwrap();
            if info.epoch >= 1 || Instant::now() > deadline {
                break info;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(info.epoch, 1, "apply must publish the next epoch");
        assert_eq!(info.beacons.len(), 26, "the applied beacon is deployed");
        // The new beacon sits exactly where the proposal pointed.
        assert!(info.beacons.iter().any(|&(_, p)| p == place.position));

        drop(conn);
        let stats = daemon.shutdown();
        assert_eq!(stats.applies, 1);
        assert_eq!(stats.final_epoch, 1);
    }

    #[test]
    fn malformed_frames_get_error_statuses() {
        let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut frame = Vec::new();

        // Unknown opcode.
        conn.write_all(&1u32.to_le_bytes()).unwrap();
        conn.write_all(&[200u8]).unwrap();
        assert!(wire::read_frame(&mut conn, &mut frame).unwrap());
        assert_eq!(frame, vec![Status::BadOpcode as u8]);

        // Truncated localize.
        let payload = [1u8, 5, 0, 0, 0]; // announces 5 ids, carries none
        conn.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        conn.write_all(&payload).unwrap();
        assert!(wire::read_frame(&mut conn, &mut frame).unwrap());
        assert_eq!(frame, vec![Status::BadFrame as u8]);

        drop(conn);
        let stats = daemon.shutdown();
        assert_eq!(stats.errors, 2);
    }

    #[test]
    fn oversize_frame_is_rejected_and_disconnected() {
        let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut frame = Vec::new();
        conn.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        assert!(wire::read_frame(&mut conn, &mut frame).unwrap());
        assert_eq!(frame, vec![Status::Oversize as u8]);
        // The server hangs up; the next read sees EOF.
        assert!(!wire::read_frame(&mut conn, &mut frame).unwrap());
        daemon.shutdown();
    }
}
