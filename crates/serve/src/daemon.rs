//! The daemon: accept loop, worker pool, rebuilder thread.
//!
//! Thread layout:
//!
//! * **accept** — one thread on a non-blocking listener; hands accepted
//!   connections to the worker queue and polls the shutdown flag,
//! * **workers** — thread-per-core by default; each owns a
//!   [`ServeScratch`] and a [`SnapshotReader`](crate::snapshot::SnapshotReader),
//!   so the request path touches no shared mutable state beyond the
//!   epoch hint,
//! * **rebuilder** — the control plane: receives applied placement
//!   points, re-surveys on a private [`WorldSnapshot`] build, publishes
//!   the next epoch. All allocation-heavy work lives here.
//!
//! Connections are persistent: a worker serves frames until clean EOF,
//! a socket error, or shutdown. Reads run under a short timeout so every
//! blocked worker notices shutdown within tens of milliseconds; a
//! [`Daemon::shutdown`] therefore completes promptly even with idle
//! keep-alive clients attached.
//!
//! Under `--features count-allocs`, each worker brackets the post-warmup
//! portion of every connection with thread-local allocator snapshots;
//! [`StatsSnapshot::allocs_per_request`] is the aggregate — the value
//! the bench gate pins at exactly zero.

use crate::engine::{self, ServeScratch};
use crate::metrics::{FlightEntry, OpClass, ServeMetrics, ALL_CLASSES, FLIGHT_SLOTS, OP_CLASSES};
use crate::protocol::{self, Opcode, Request, StatsView, Status, MAX_FRAME};
use crate::snapshot::{SnapshotCell, WorldSnapshot};
use crate::state::{self, StateOpen};
use abp_field::BeaconField;
use abp_geom::{Point, Terrain};
use abp_radio::IdealDisk;
use abp_trace::AllocSnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Requests a worker serves on a connection before it starts counting
/// allocations: lets the reused buffers reach steady-state size.
const ALLOC_WARMUP_REQUESTS: u64 = 32;

/// How long blocked reads and queue waits sleep between shutdown polls.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Read timeout for one `/metrics` scrape head, derived from
/// [`POLL_INTERVAL`] (20 polls) so all daemon timing hangs off a single
/// knob instead of scattered magic numbers.
const SCRAPE_TIMEOUT: Duration = POLL_INTERVAL.saturating_mul(20);

/// The complete [`Status::Overloaded`] error frame (length prefix `1`,
/// one status byte), precomputed so the accept-gate shed path writes a
/// stack constant and never touches the heap.
const OVERLOADED_FRAME: [u8; 5] = [1, 0, 0, 0, Status::Overloaded as u8];

/// Daemon construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Beacons in the initial uniform-random field.
    pub beacons: usize,
    /// Square terrain side (meters).
    pub side: f64,
    /// Survey lattice spacing (meters).
    pub step: f64,
    /// Nominal radio range `R` (meters).
    pub nominal_range: f64,
    /// Seed for the initial field.
    pub seed: u64,
    /// Record per-request telemetry (per-opcode counts, latency
    /// histograms, the flight recorder). On by default; the bench
    /// harness turns it off to measure its overhead.
    pub telemetry: bool,
    /// Bind address for the side HTTP/1.0 `GET /metrics` listener
    /// (Prometheus text exposition); `None` disables it.
    pub metrics_addr: Option<String>,
    /// Admission cap: when `connections live + queued` reaches this, new
    /// connections are answered with one [`Status::Overloaded`] frame
    /// and closed instead of queueing unboundedly. `0` = unlimited.
    pub max_conns: usize,
    /// Per-worker work-budget watermark: when the accept queue holds at
    /// least this many connections, Place/Info/Stats requests are
    /// answered [`Status::Overloaded`] (Localize holds out until 2×).
    /// `0` disables request shedding.
    pub shed_watermark: usize,
    /// Per-request handling deadline: a request whose handler runs
    /// longer has its result discarded and is answered
    /// [`Status::DeadlineExceeded`]. `None` disables the deadline.
    pub deadline: Option<Duration>,
    /// Dribble window: once the first byte of a frame arrives, the whole
    /// frame (header + payload) must land within this window or the
    /// connection is quarantined — dropped without a response, counted
    /// (slow-loris defense). Also bounds response writes.
    pub frame_window: Duration,
    /// How long a connection may sit idle *between* frames before the
    /// daemon silently closes it (no counter: idle keep-alive clients
    /// are well-behaved, just absent).
    pub idle_timeout: Duration,
    /// Warm-restart state file: the published world is persisted here on
    /// every epoch publish, and a daemon booting with the same
    /// parameters restores it bit-identically. `None` disables
    /// persistence.
    pub state_path: Option<PathBuf>,
    /// Chaos-test seam: a Place request carrying exactly this seed
    /// panics inside the handler, exercising panic isolation
    /// end-to-end. `None` (the default everywhere) disables the seam.
    pub panic_seed: Option<u64>,
    /// Survey tile threads for snapshot (re)builds: the background
    /// world rebuild runs its sweep across this many workers via
    /// `abp-survey`'s intra-survey tile scheduler. `0` = all cores,
    /// `1` = sequential. Bit-identical at any setting, so it is a
    /// throughput knob only and deliberately excluded from the
    /// warm-restart config fingerprint.
    pub survey_threads: usize,
}

impl ServeConfig {
    /// The paper's evaluation scale: 100 m × 100 m terrain, 1 m lattice,
    /// `R` = 15 m, 100 beacons.
    pub fn paper_scale() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            beacons: 100,
            side: 100.0,
            step: 1.0,
            nominal_range: 15.0,
            seed: 42,
            telemetry: true,
            metrics_addr: None,
            max_conns: 0,
            shed_watermark: 0,
            deadline: None,
            frame_window: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            state_path: None,
            panic_seed: None,
            survey_threads: 0,
        }
    }

    /// A seconds-scale configuration for tests and CI smoke runs.
    pub fn tiny() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            beacons: 25,
            side: 100.0,
            step: 4.0,
            nominal_range: 15.0,
            seed: 42,
            telemetry: true,
            metrics_addr: None,
            max_conns: 0,
            shed_watermark: 0,
            deadline: None,
            frame_window: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            state_path: None,
            panic_seed: None,
            survey_threads: 1,
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
    }
}

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    localize: AtomicU64,
    place: AtomicU64,
    info: AtomicU64,
    stats: AtomicU64,
    errors: AtomicU64,
    applies: AtomicU64,
    connections: AtomicU64,
    measured_requests: AtomicU64,
    measured_allocs: AtomicU64,
    measured_bytes: AtomicU64,
    worker_respawns: AtomicU64,
}

/// One opcode class's shutdown summary: request count and latency
/// quantiles from the per-daemon histograms (zeros when telemetry was
/// off or the class saw no traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpcodeSummary {
    /// Requests served in this class.
    pub count: u64,
    /// Median handler latency, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile handler latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile handler latency, nanoseconds.
    pub p99_ns: u64,
}

/// Final counters reported by [`Daemon::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total requests served (all opcodes, including error answers).
    pub requests: u64,
    /// Localize requests.
    pub localize: u64,
    /// Place requests.
    pub place: u64,
    /// Info requests.
    pub info: u64,
    /// Stats requests.
    pub stats: u64,
    /// Malformed frames answered with an error status.
    pub errors: u64,
    /// Placement proposals applied (deployed + re-surveyed).
    pub applies: u64,
    /// Connections accepted.
    pub connections: u64,
    /// The epoch current at shutdown.
    pub final_epoch: u64,
    /// Requests inside the post-warmup allocation measurement windows.
    pub measured_requests: u64,
    /// Allocator calls observed inside those windows.
    pub measured_allocs: u64,
    /// Bytes requested inside those windows.
    pub measured_bytes: u64,
    /// Whether the counting allocator was compiled in
    /// (`--features count-allocs`); without it the measured fields read
    /// zero vacuously.
    pub alloc_counting: bool,
    /// Per-opcode-class counts and latency quantiles, indexed like
    /// [`ALL_CLASSES`]. All zeros when the
    /// daemon ran with `telemetry: false`.
    pub opcodes: [OpcodeSummary; OP_CLASSES],
    /// Flight-recorder offers dropped to lock contention.
    pub flight_dropped: u64,
    /// Rebuilds completed over the daemon's lifetime.
    pub rebuilds_total: u64,
    /// Applies still queued for the rebuilder at shutdown.
    pub rebuilds_pending: u64,
    /// Connections/requests shed by admission control.
    pub shed: u64,
    /// Requests answered `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Request-handler panics contained (connection killed, worker kept).
    pub panics: u64,
    /// Connections quarantined by the dribble detector.
    pub quarantines: u64,
    /// World snapshots persisted to the state file.
    pub state_saves: u64,
    /// World snapshots restored from the state file at boot.
    pub state_loads: u64,
    /// Worker threads respawned after an escaped panic (backstop; the
    /// per-request `catch_unwind` should keep this at zero).
    pub worker_respawns: u64,
}

impl StatsSnapshot {
    /// Allocator calls per measured request (0.0 when nothing was
    /// measured). The serving invariant pins this at exactly 0.
    pub fn allocs_per_request(&self) -> f64 {
        if self.measured_requests == 0 {
            0.0
        } else {
            self.measured_allocs as f64 / self.measured_requests as f64
        }
    }

    /// One-line summary, printed by the CLI on shutdown.
    pub fn summary_line(&self) -> String {
        format!(
            "served {} requests ({} localize, {} place, {} info, {} errors) \
             over {} connections; {} applies, final epoch {}; \
             allocs/request {:.3}{}",
            self.requests,
            self.localize,
            self.place,
            self.info,
            self.errors,
            self.connections,
            self.applies,
            self.final_epoch,
            self.allocs_per_request(),
            if self.alloc_counting {
                ""
            } else {
                " (counting off)"
            },
        )
    }

    /// Multi-line per-opcode breakdown: count and p50/p95/p99 handler
    /// latency per class, plus drop accounting. Printed by the CLI under
    /// [`StatsSnapshot::summary_line`]; empty when telemetry was off.
    pub fn summary_table(&self) -> String {
        if self.opcodes.iter().all(|o| o.count == 0) {
            return String::new();
        }
        let mut out = String::new();
        out.push_str("  opcode     count       p50       p95       p99\n");
        for (class, op) in ALL_CLASSES.iter().zip(self.opcodes.iter()) {
            if op.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<8} {:>7}  {:>8}  {:>8}  {:>8}\n",
                class.name(),
                op.count,
                fmt_ns(op.p50_ns),
                fmt_ns(op.p95_ns),
                fmt_ns(op.p99_ns),
            ));
        }
        out.push_str(&format!(
            "  rebuilds {} done, {} pending; flight drops {}",
            self.rebuilds_total, self.rebuilds_pending, self.flight_dropped
        ));
        let defenses = self.shed
            + self.deadline_exceeded
            + self.panics
            + self.quarantines
            + self.state_saves
            + self.state_loads
            + self.worker_respawns;
        if defenses > 0 {
            out.push_str(&format!(
                "\n  shed {}, deadline-exceeded {}, panics {}, quarantines {}; \
                 state saves {} / loads {}; worker respawns {}",
                self.shed,
                self.deadline_exceeded,
                self.panics,
                self.quarantines,
                self.state_saves,
                self.state_loads,
                self.worker_respawns,
            ));
        }
        out
    }
}

/// Renders a nanosecond latency with a readable unit (`950ns`,
/// `12.3us`, `4.56ms`, `1.20s`).
fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", v / 1e6)
    } else {
        format!("{:.2}s", v / 1e9)
    }
}

struct Shared {
    cell: SnapshotCell,
    shutdown: AtomicBool,
    stats: Stats,
    metrics: ServeMetrics,
    telemetry: bool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    apply_tx: Mutex<Sender<Point>>,
    /// Connections accepted but not yet picked up by a worker. Kept as
    /// its own relaxed atomic so the accept gate and the request-shed
    /// check never take the queue lock.
    queued: AtomicU64,
    max_conns: usize,
    shed_watermark: usize,
    deadline: Option<Duration>,
    frame_window: Duration,
    idle_timeout: Duration,
    state_path: Option<PathBuf>,
    state_fingerprint: u64,
    panic_seed: Option<u64>,
}

/// Locks a mutex, recovering the guard if a panicking worker poisoned
/// it — the data under every daemon lock (queue, apply sender) stays
/// valid across an unwound request handler, so poisoning must never
/// cascade a single contained panic into a daemon-wide outage.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running daemon. Dropping without [`Daemon::shutdown`] aborts the
/// threads detached; call `shutdown` for an orderly stop and the final
/// stats.
pub struct Daemon {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    rebuilder: Option<JoinHandle<()>>,
    metrics_listener: Option<JoinHandle<()>>,
    state_open: StateOpen,
}

impl Daemon {
    /// Builds the initial world snapshot (epoch 0), binds the listener,
    /// and spawns the accept/worker/rebuilder threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind, local address).
    pub fn start(cfg: &ServeConfig) -> io::Result<Daemon> {
        let terrain = Terrain::square(cfg.side);
        let model = Arc::new(IdealDisk::new(cfg.nominal_range));
        let state_fingerprint = state::config_fingerprint(cfg.side, cfg.step, cfg.nominal_range);

        // Warm restart: a valid state file supplies the epoch + roster;
        // the snapshot is *rebuilt* from them, which is bit-identical to
        // the one the killed daemon published (the build is pure).
        let state_open = match &cfg.state_path {
            Some(path) => state::load_state(path, state_fingerprint, terrain),
            None => StateOpen::Fresh,
        };
        let initial = match &state_open {
            StateOpen::Loaded { epoch, positions } => {
                let field = BeaconField::from_positions(terrain, positions.iter().copied());
                WorldSnapshot::build_with_threads(
                    *epoch,
                    field,
                    model,
                    cfg.step,
                    cfg.survey_threads,
                )
            }
            _ => {
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                let field = BeaconField::random_uniform(cfg.beacons, terrain, &mut rng);
                WorldSnapshot::build_with_threads(0, field, model, cfg.step, cfg.survey_threads)
            }
        };

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let (apply_tx, apply_rx) = mpsc::channel::<Point>();
        let shared = Arc::new(Shared {
            cell: SnapshotCell::new(initial),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
            metrics: ServeMetrics::new(),
            telemetry: cfg.telemetry,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            apply_tx: Mutex::new(apply_tx),
            queued: AtomicU64::new(0),
            max_conns: cfg.max_conns,
            shed_watermark: cfg.shed_watermark,
            deadline: cfg.deadline,
            frame_window: cfg.frame_window,
            idle_timeout: cfg.idle_timeout,
            state_path: cfg.state_path.clone(),
            state_fingerprint,
            panic_seed: cfg.panic_seed,
        });
        if matches!(state_open, StateOpen::Loaded { .. }) {
            shared.metrics.note_state_load();
        }
        // Boot save: the file exists (and a damaged one is replaced)
        // from the first instant, so a crash before the first apply
        // still restarts warm.
        persist_state(&shared);

        let rebuilder = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("abp-serve-rebuild".into())
                .spawn(move || rebuild_loop(&shared, apply_rx))
                .expect("spawn rebuilder")
        };

        let workers = (0..cfg.resolved_workers())
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("abp-serve-worker-{w}"))
                    // Respawn backstop: the per-request catch_unwind in
                    // serve_connection should contain every panic, but
                    // if one ever escapes the loop body, restart the
                    // loop (counted) instead of silently shrinking the
                    // worker pool.
                    .spawn(move || loop {
                        match catch_unwind(AssertUnwindSafe(|| worker_loop(&shared))) {
                            Ok(()) => return,
                            Err(_) => {
                                shared.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("abp-serve-accept".into())
                .spawn(move || accept_loop(&shared, listener))
                .expect("spawn accept")
        };

        let (metrics_addr, metrics_listener) = match &cfg.metrics_addr {
            Some(bind) => {
                let listener = TcpListener::bind(bind)?;
                let metrics_addr = listener.local_addr()?;
                listener.set_nonblocking(true)?;
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("abp-serve-metrics".into())
                    .spawn(move || metrics_loop(&shared, listener))
                    .expect("spawn metrics listener");
                (Some(metrics_addr), Some(handle))
            }
            None => (None, None),
        };

        Ok(Daemon {
            addr,
            metrics_addr,
            shared,
            accept: Some(accept),
            workers,
            rebuilder: Some(rebuilder),
            metrics_listener,
            state_open,
        })
    }

    /// How the warm-restart state file was resolved at boot
    /// ([`StateOpen::Fresh`] when no `--state` was configured). The CLI
    /// prints [`StateOpen::describe`] on stderr.
    pub fn state_open(&self) -> &StateOpen {
        &self.state_open
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound address of the `/metrics` HTTP listener, when
    /// configured ([`ServeConfig::metrics_addr`]).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch_hint()
    }

    /// A handle to the currently published snapshot (for tests and the
    /// bench identity gate; takes the cell's read lock once).
    pub fn snapshot(&self) -> Arc<WorldSnapshot> {
        self.shared.cell.load()
    }

    /// Orderly shutdown: stop accepting, let every worker finish its
    /// current frame and notice the flag, join the rebuilder, return the
    /// final stats.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.rebuilder.take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_listener.take() {
            let _ = h.join();
        }
        let s = &self.shared.stats;
        let m = &self.shared.metrics;
        let mut opcodes = [OpcodeSummary::default(); OP_CLASSES];
        for (&class, op) in ALL_CLASSES.iter().zip(opcodes.iter_mut()) {
            let snap = m.class_snapshot(class);
            *op = OpcodeSummary {
                count: m.class_count(class),
                p50_ns: snap.quantile_ns(0.50).unwrap_or(0),
                p95_ns: snap.quantile_ns(0.95).unwrap_or(0),
                p99_ns: snap.quantile_ns(0.99).unwrap_or(0),
            };
        }
        StatsSnapshot {
            requests: s.requests.load(Ordering::Relaxed),
            localize: s.localize.load(Ordering::Relaxed),
            place: s.place.load(Ordering::Relaxed),
            info: s.info.load(Ordering::Relaxed),
            stats: s.stats.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
            applies: s.applies.load(Ordering::Relaxed),
            connections: s.connections.load(Ordering::Relaxed),
            final_epoch: self.shared.cell.epoch_hint(),
            measured_requests: s.measured_requests.load(Ordering::Relaxed),
            measured_allocs: s.measured_allocs.load(Ordering::Relaxed),
            measured_bytes: s.measured_bytes.load(Ordering::Relaxed),
            alloc_counting: abp_trace::counting(),
            opcodes,
            flight_dropped: m.flight.dropped(),
            rebuilds_total: m.rebuilds_total(),
            rebuilds_pending: m.rebuilds_pending(),
            shed: m.shed(),
            deadline_exceeded: m.deadline_exceeded(),
            panics: m.panics(),
            quarantines: m.quarantines(),
            state_saves: m.state_saves(),
            state_loads: m.state_loads(),
            worker_respawns: s.worker_respawns.load(Ordering::Relaxed),
        }
    }
}

/// Persists the currently published world to the configured state file
/// (no-op without one). Control-plane only: runs at boot and on the
/// rebuilder thread after each publish; allocates freely.
fn persist_state(shared: &Shared) {
    let Some(path) = &shared.state_path else {
        return;
    };
    let snap = shared.cell.load();
    let positions: Vec<Point> = snap.field().iter().map(|b| b.pos()).collect();
    match state::save_state(path, shared.state_fingerprint, snap.epoch(), &positions) {
        Ok(()) => shared.metrics.note_state_save(),
        Err(e) => eprintln!("abp-serve: state save to {} failed: {e}", path.display()),
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // Admission gate: live + queued against the cap. A shed
                // connection gets one typed Overloaded frame (a stack
                // constant — no allocation) and is closed; it is not
                // counted as accepted.
                if shared.max_conns > 0 {
                    let load =
                        shared.metrics.connections_live() + shared.queued.load(Ordering::Relaxed);
                    if load >= shared.max_conns as u64 {
                        shared.metrics.note_shed();
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.write_all(&OVERLOADED_FRAME);
                        continue;
                    }
                }
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                shared.queued.fetch_add(1, Ordering::Relaxed);
                let mut q = lock_unpoisoned(&shared.queue);
                q.push_back(stream);
                drop(q);
                shared.queue_cv.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn rebuild_loop(shared: &Shared, apply_rx: mpsc::Receiver<Point>) {
    loop {
        match apply_rx.recv_timeout(POLL_INTERVAL) {
            Ok(point) => {
                let _span = abp_trace::span!("serve_rebuild");
                let started = Instant::now();
                let current = shared.cell.load();
                let next = current.with_beacon_added(point);
                shared.cell.publish(next);
                shared.stats.applies.fetch_add(1, Ordering::Relaxed);
                shared.metrics.rebuild_finished(started.elapsed());
                crate::APPLIES.add(1);
                crate::EPOCHS_PUBLISHED.add(1);
                // Persist the world the readers now serve; a SIGKILL
                // after this line restarts warm at exactly this epoch.
                persist_state(shared);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// The side `/metrics` listener: a deliberately tiny HTTP/1.0 responder
/// (read one request head, answer, close) — enough for Prometheus, curl,
/// and the CI smoke job without an HTTP dependency. It runs entirely on
/// the control plane: scrapes allocate freely and never touch a worker.
fn metrics_loop(shared: &Shared, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _peer)) => serve_metrics_scrape(shared, &mut stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn serve_metrics_scrape(shared: &Shared, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(SCRAPE_TIMEOUT));
    // Read the request head (scrapers send a short GET; stop at the
    // blank line or a full buffer).
    let mut buf = [0u8; 1024];
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => {
                got += n;
                if buf[..got].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = &buf[..got];
    let (status, body) = if head.starts_with(b"GET /metrics") {
        ("200 OK", render_exposition(shared))
    } else {
        ("404 Not Found", String::from("scrape GET /metrics\n"))
    };
    let response = format!(
        "HTTP/1.0 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Builds the Prometheus text-exposition document for one daemon from
/// its per-daemon instruments (never the global `abp_trace` registry, so
/// co-resident daemons stay separate).
fn render_exposition(shared: &Shared) -> String {
    use abp_trace::{CounterSnapshot, GaugeSnapshot};
    let s = &shared.stats;
    let m = &shared.metrics;
    let mut counters = vec![
        CounterSnapshot {
            name: "serve_requests",
            total: s.requests.load(Ordering::Relaxed),
        },
        CounterSnapshot {
            name: "serve_protocol_errors",
            total: s.errors.load(Ordering::Relaxed),
        },
        CounterSnapshot {
            name: "serve_applies",
            total: s.applies.load(Ordering::Relaxed),
        },
        CounterSnapshot {
            name: "serve_connections",
            total: s.connections.load(Ordering::Relaxed),
        },
        CounterSnapshot {
            name: "serve_rebuilds",
            total: m.rebuilds_total(),
        },
        CounterSnapshot {
            name: "serve_flight_dropped",
            total: m.flight.dropped(),
        },
        CounterSnapshot {
            name: "serve_shed",
            total: m.shed(),
        },
        CounterSnapshot {
            name: "serve_deadline_exceeded",
            total: m.deadline_exceeded(),
        },
        CounterSnapshot {
            name: "serve_panics",
            total: m.panics(),
        },
        CounterSnapshot {
            name: "serve_quarantines",
            total: m.quarantines(),
        },
        CounterSnapshot {
            name: "serve_state_saves",
            total: m.state_saves(),
        },
        CounterSnapshot {
            name: "serve_state_loads",
            total: m.state_loads(),
        },
        CounterSnapshot {
            name: "serve_worker_respawns",
            total: s.worker_respawns.load(Ordering::Relaxed),
        },
    ];
    for &class in &ALL_CLASSES {
        counters.push(CounterSnapshot {
            name: class.counter_name(),
            total: m.class_count(class),
        });
    }
    let gauges = vec![
        GaugeSnapshot {
            name: "serve_epoch",
            value: shared.cell.epoch_hint() as f64,
        },
        GaugeSnapshot {
            name: "serve_connections_live",
            value: m.connections_live() as f64,
        },
        GaugeSnapshot {
            name: "serve_rebuilds_pending",
            value: m.rebuilds_pending() as f64,
        },
        GaugeSnapshot {
            name: "serve_uptime_seconds",
            value: m.uptime().as_secs_f64(),
        },
        GaugeSnapshot {
            name: "serve_last_rebuild_seconds",
            value: m.last_rebuild_ns() as f64 * 1e-9,
        },
    ];
    let hists: Vec<_> = ALL_CLASSES.iter().map(|&c| m.class_snapshot(c)).collect();
    abp_trace::render_prometheus(&counters, &gauges, &hists)
}

fn worker_loop(shared: &Shared) {
    let mut scratch = ServeScratch::new();
    let mut reader = shared.cell.reader();
    loop {
        let stream = {
            let mut q = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(s) = q.pop_front() {
                    break s;
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let (guard, _timeout) = shared
                    .queue_cv
                    .wait_timeout(q, POLL_INTERVAL)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let _ = shared
            .queued
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
        serve_connection(shared, &mut reader, stream, &mut scratch);
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
    }
}

enum ReadOutcome {
    Frame,
    CleanEof,
    Stop,
    /// The connection sat at a frame boundary past the idle timeout.
    /// Closed silently: idle keep-alive clients are absent, not hostile.
    IdleExpired,
    /// The peer started a frame but failed to deliver it within the
    /// frame window — the slow-loris signature. Quarantined by the
    /// caller: counted and dropped without a response.
    FrameExpired,
}

/// Fills `buf` completely, polling the shutdown flag on read timeouts.
/// `allow_eof` marks a frame boundary where a peer may hang up cleanly.
///
/// Deadlines are checked only on the (POLL_INTERVAL-timed) blocked-read
/// branch, so a peer that streams bytes promptly never pays for an
/// `Instant::now()`:
///
/// * `idle_deadline` applies while `buf` is still empty — time a peer
///   may sit between frames (header reads only),
/// * `frame_deadline` applies once any byte has arrived. The header read
///   passes `None` and arms it at its first byte from
///   `shared.frame_window`; the payload read carries the header's value
///   forward (second return), so one window covers the whole frame.
fn read_full(
    shared: &Shared,
    stream: &mut TcpStream,
    buf: &mut [u8],
    allow_eof: bool,
    idle_deadline: Option<Instant>,
    mut frame_deadline: Option<Instant>,
) -> (ReadOutcome, Option<Instant>) {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                let outcome = if allow_eof && got == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Stop
                };
                return (outcome, frame_deadline);
            }
            Ok(n) => {
                if got == 0 && frame_deadline.is_none() {
                    frame_deadline = Some(Instant::now() + shared.frame_window);
                }
                got += n;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return (ReadOutcome::Stop, frame_deadline);
                }
                let now = Instant::now();
                if got == 0 && frame_deadline.is_none() {
                    if let Some(idle) = idle_deadline {
                        if now > idle {
                            return (ReadOutcome::IdleExpired, frame_deadline);
                        }
                    }
                } else if let Some(frame) = frame_deadline {
                    if now > frame {
                        return (ReadOutcome::FrameExpired, frame_deadline);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return (ReadOutcome::Stop, frame_deadline),
        }
    }
    (ReadOutcome::Frame, frame_deadline)
}

fn serve_connection(
    shared: &Shared,
    reader: &mut crate::snapshot::SnapshotReader<'_>,
    mut stream: TcpStream,
    scratch: &mut ServeScratch,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(shared.frame_window));
    shared.metrics.connection_opened();
    let mut served = 0u64;
    let mut alloc_base: Option<AllocSnapshot> = None;
    let mut header = [0u8; 4];
    loop {
        // Header read: the idle clock runs until the first byte, then
        // the frame window takes over.
        let idle_deadline = Instant::now() + shared.idle_timeout;
        let (outcome, frame_deadline) = read_full(
            shared,
            &mut stream,
            &mut header,
            true,
            Some(idle_deadline),
            None,
        );
        match outcome {
            ReadOutcome::Frame => {}
            ReadOutcome::CleanEof | ReadOutcome::Stop | ReadOutcome::IdleExpired => break,
            ReadOutcome::FrameExpired => {
                shared.metrics.note_quarantine();
                break;
            }
        }
        let len = u32::from_le_bytes(header);
        if len > MAX_FRAME {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            crate::PROTOCOL_ERRORS.add(1);
            protocol::encode_error_response(&mut scratch.out_buf, Status::Oversize);
            let _ = stream.write_all(&scratch.out_buf);
            // The unread payload cannot be resynchronized past; drop
            // the connection.
            break;
        }
        scratch.in_buf.clear();
        scratch.in_buf.resize(len as usize, 0);
        // Payload read: same frame deadline the header armed — one
        // window covers the complete frame.
        let (outcome, _) = read_full(
            shared,
            &mut stream,
            &mut scratch.in_buf,
            false,
            None,
            frame_deadline,
        );
        match outcome {
            ReadOutcome::Frame => {}
            ReadOutcome::FrameExpired => {
                shared.metrics.note_quarantine();
                break;
            }
            ReadOutcome::CleanEof | ReadOutcome::Stop | ReadOutcome::IdleExpired => break,
        }

        if served == ALLOC_WARMUP_REQUESTS {
            alloc_base = Some(abp_trace::thread_snapshot());
        }
        let started = Instant::now();
        let _span = abp_trace::span!("serve_request");
        // Work-budget shed: under queue pressure, answer cheap classes
        // Overloaded instead of doing the work. Place/Info/Stats go
        // first; Localize — the service's reason to exist — holds out
        // to twice the watermark.
        let (class, heard) = if should_shed_request(shared, &scratch.in_buf) {
            shared.metrics.note_shed();
            protocol::encode_error_response(&mut scratch.out_buf, Status::Overloaded);
            (OpClass::Error, 0)
        } else {
            // Panic isolation: a poisoned request unwinds to here, kills
            // only this connection (counted, flight-recorded below), and
            // the worker carries on with fresh scratch.
            match catch_unwind(AssertUnwindSafe(|| handle_request(shared, reader, scratch))) {
                Ok(pair) => pair,
                Err(_) => {
                    shared.metrics.note_panic();
                    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    crate::REQUESTS.add(1);
                    let elapsed = started.elapsed();
                    crate::REQUEST_NS.record(elapsed);
                    if shared.telemetry {
                        let latency_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
                        shared.metrics.record(OpClass::Error, latency_ns);
                        shared.metrics.flight.offer(FlightEntry {
                            class: OpClass::Error as u8,
                            heard: 0,
                            latency_ns,
                            epoch: shared.cell.epoch_hint(),
                        });
                    }
                    // The handler may have unwound mid-encode; discard
                    // the torn scratch (allocates — panics are far off
                    // the steady-state path).
                    *scratch = ServeScratch::new();
                    break;
                }
            }
        };
        let mut class = class;
        let mut heard = heard;
        let elapsed = started.elapsed();
        // Deadline: the work is done but took too long to be useful —
        // discard the response and tell the client so.
        if let Some(deadline) = shared.deadline {
            if elapsed > deadline {
                shared.metrics.note_deadline_exceeded();
                protocol::encode_error_response(&mut scratch.out_buf, Status::DeadlineExceeded);
                class = OpClass::Error;
                heard = 0;
            }
        }
        crate::REQUEST_NS.record(elapsed);
        crate::REQUESTS.add(1);
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        if shared.telemetry {
            let latency_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            shared.metrics.record(class, latency_ns);
            shared.metrics.flight.offer(FlightEntry {
                class: class as u8,
                heard,
                latency_ns,
                epoch: shared.cell.epoch_hint(),
            });
        }
        served += 1;

        if stream.write_all(&scratch.out_buf).is_err() {
            break;
        }
    }
    shared.metrics.connection_closed();
    if let Some(base) = alloc_base {
        let delta = abp_trace::thread_snapshot().delta_since(base);
        let s = &shared.stats;
        s.measured_requests
            .fetch_add(served - ALLOC_WARMUP_REQUESTS, Ordering::Relaxed);
        s.measured_allocs.fetch_add(delta.allocs, Ordering::Relaxed);
        s.measured_bytes.fetch_add(delta.bytes, Ordering::Relaxed);
    }
}

/// Work-budget admission: decide from the opcode byte alone — before
/// any decode work — whether this request should be answered
/// [`Status::Overloaded`] instead of served. Cheap/ancillary classes
/// (place, info, stats) shed at the watermark; localize, the service's
/// core duty, holds out to twice the watermark. A watermark of zero
/// disables shedding. Unknown opcodes are never shed: they must reach
/// the decoder to be counted as protocol errors.
fn should_shed_request(shared: &Shared, in_buf: &[u8]) -> bool {
    if shared.shed_watermark == 0 {
        return false;
    }
    let queued = shared.queued.load(Ordering::Relaxed);
    match in_buf.first().copied().and_then(Opcode::from_wire) {
        Some(Opcode::Localize) => queued >= 2 * shared.shed_watermark as u64,
        Some(Opcode::Place) | Some(Opcode::Info) | Some(Opcode::Stats) => {
            queued >= shared.shed_watermark as u64
        }
        None => false,
    }
}

/// Decodes `scratch.in_buf`, dispatches, and leaves the complete
/// response frame in `scratch.out_buf`. Never allocates beyond scratch
/// growth. Returns the request's telemetry class and (for localize) the
/// heard-beacon count, for the caller's per-request recording.
fn handle_request(
    shared: &Shared,
    reader: &mut crate::snapshot::SnapshotReader<'_>,
    scratch: &mut ServeScratch,
) -> (OpClass, u32) {
    let request = match protocol::decode_request(&scratch.in_buf, &mut scratch.ids) {
        Ok(req) => req,
        Err(status) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            crate::PROTOCOL_ERRORS.add(1);
            protocol::encode_error_response(&mut scratch.out_buf, status);
            return (OpClass::Error, 0);
        }
    };
    let snap = reader.current();
    match request {
        Request::Localize => {
            shared.stats.localize.fetch_add(1, Ordering::Relaxed);
            crate::LOCALIZE_REQUESTS.add(1);
            match engine::localize(snap, &scratch.ids, &mut scratch.slots) {
                Ok(reply) => {
                    protocol::encode_localize_response(&mut scratch.out_buf, &reply);
                    (OpClass::Localize, reply.heard)
                }
                Err(_unknown_id) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    crate::PROTOCOL_ERRORS.add(1);
                    protocol::encode_error_response(&mut scratch.out_buf, Status::UnknownBeacon);
                    (OpClass::Error, 0)
                }
            }
        }
        Request::Place { algo, seed, apply } => {
            shared.stats.place.fetch_add(1, Ordering::Relaxed);
            crate::PLACE_REQUESTS.add(1);
            let position = engine::place(snap, algo, seed);
            // Applying is control-plane: enqueue for the rebuilder and
            // answer immediately from the current epoch. (The send
            // allocates a channel node; applies are intentionally
            // outside the zero-alloc steady-state invariant.)
            if shared.panic_seed == Some(seed) {
                // Test-only seam: a designated seed simulates a bug deep
                // in request handling so the chaos harness can prove the
                // worker survives it.
                panic!("injected panic for chaos seed {seed}");
            }
            let applied = apply && lock_unpoisoned(&shared.apply_tx).send(position).is_ok();
            if applied {
                shared.metrics.rebuild_enqueued();
            }
            protocol::encode_place_response(
                &mut scratch.out_buf,
                &protocol::PlaceReply {
                    epoch: snap.epoch(),
                    algo,
                    applied,
                    position,
                },
            );
            (OpClass::Place, 0)
        }
        Request::Info => {
            shared.stats.info.fetch_add(1, Ordering::Relaxed);
            crate::INFO_REQUESTS.add(1);
            protocol::encode_info_response(
                &mut scratch.out_buf,
                snap.epoch(),
                snap.terrain().side(),
                snap.model().nominal_range(),
                snap.field().len() as u32,
                snap.field().iter().map(|b| (b.id().0, b.pos())),
            );
            (OpClass::Info, 0)
        }
        Request::Stats => {
            shared.stats.stats.fetch_add(1, Ordering::Relaxed);
            let mut flight = [FlightEntry::default(); FLIGHT_SLOTS];
            let n = shared.metrics.flight.copy_into(&mut flight);
            protocol::encode_stats_response(
                &mut scratch.out_buf,
                &StatsView {
                    epoch: snap.epoch(),
                    connections_total: shared.stats.connections.load(Ordering::Relaxed),
                    metrics: &shared.metrics,
                    flight: &flight[..n],
                },
            );
            (OpClass::Stats, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{self as wire, PlaceAlgo};

    fn roundtrip(stream: &mut TcpStream, out: &[u8], frame: &mut Vec<u8>) {
        stream.write_all(out).unwrap();
        assert!(wire::read_frame(stream, frame).unwrap());
    }

    #[test]
    fn daemon_serves_all_opcodes_and_shuts_down_cleanly() {
        let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut out = Vec::new();
        let mut frame = Vec::new();

        wire::encode_info_request(&mut out);
        roundtrip(&mut conn, &out, &mut frame);
        let info = wire::decode_info_response(&frame).unwrap();
        assert_eq!(info.epoch, 0);
        assert_eq!(info.terrain_side, 100.0);
        assert_eq!(info.beacons.len(), 25);

        // Localize from the first three roster ids and check the served
        // estimate against the client-side centroid, bit for bit.
        let ids: Vec<u64> = info.beacons.iter().take(3).map(|&(id, _)| id).collect();
        wire::encode_localize_request(&mut out, &ids);
        roundtrip(&mut conn, &out, &mut frame);
        let reply = wire::decode_localize_response(&frame).unwrap();
        assert_eq!(reply.heard, 3);
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        for &(_, p) in info.beacons.iter().take(3) {
            sum_x += p.x;
            sum_y += p.y;
        }
        let est = reply.estimate.unwrap();
        assert_eq!(est.x.to_bits(), (sum_x / 3.0).to_bits());
        assert_eq!(est.y.to_bits(), (sum_y / 3.0).to_bits());

        // Empty heard set: degraded terrain-center estimate.
        wire::encode_localize_request(&mut out, &[]);
        roundtrip(&mut conn, &out, &mut frame);
        let reply = wire::decode_localize_response(&frame).unwrap();
        assert!(reply.degraded);
        assert_eq!(reply.estimate, Some(Point::new(50.0, 50.0)));

        // Placement without apply: deterministic, in-terrain, epoch 0.
        wire::encode_place_request(&mut out, PlaceAlgo::Max, 0, false);
        roundtrip(&mut conn, &out, &mut frame);
        let place = wire::decode_place_response(&frame).unwrap();
        assert!(!place.applied);
        assert_eq!(place.epoch, 0);
        assert!(place.position.x >= 0.0 && place.position.x <= 100.0);

        // Unknown beacon id answers UnknownBeacon, connection survives.
        wire::encode_localize_request(&mut out, &[u64::MAX]);
        roundtrip(&mut conn, &out, &mut frame);
        assert_eq!(
            wire::decode_localize_response(&frame),
            Err(Status::UnknownBeacon)
        );
        wire::encode_info_request(&mut out);
        roundtrip(&mut conn, &out, &mut frame);
        assert!(wire::decode_info_response(&frame).is_ok());

        drop(conn);
        let stats = daemon.shutdown();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.localize, 3);
        assert_eq!(stats.place, 1);
        assert_eq!(stats.info, 2);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.final_epoch, 0);
    }

    #[test]
    fn apply_triggers_resurvey_and_epoch_bump() {
        let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut out = Vec::new();
        let mut frame = Vec::new();

        wire::encode_place_request(&mut out, PlaceAlgo::Max, 0, true);
        roundtrip(&mut conn, &out, &mut frame);
        let place = wire::decode_place_response(&frame).unwrap();
        assert!(place.applied);

        // The rebuilder publishes asynchronously; poll INFO until the
        // epoch moves (bounded).
        let deadline = Instant::now() + Duration::from_secs(10);
        let info = loop {
            wire::encode_info_request(&mut out);
            roundtrip(&mut conn, &out, &mut frame);
            let info = wire::decode_info_response(&frame).unwrap();
            if info.epoch >= 1 || Instant::now() > deadline {
                break info;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(info.epoch, 1, "apply must publish the next epoch");
        assert_eq!(info.beacons.len(), 26, "the applied beacon is deployed");
        // The new beacon sits exactly where the proposal pointed.
        assert!(info.beacons.iter().any(|&(_, p)| p == place.position));

        drop(conn);
        let stats = daemon.shutdown();
        assert_eq!(stats.applies, 1);
        assert_eq!(stats.final_epoch, 1);
    }

    #[test]
    fn malformed_frames_get_error_statuses() {
        let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut frame = Vec::new();

        // Unknown opcode.
        conn.write_all(&1u32.to_le_bytes()).unwrap();
        conn.write_all(&[200u8]).unwrap();
        assert!(wire::read_frame(&mut conn, &mut frame).unwrap());
        assert_eq!(frame, vec![Status::BadOpcode as u8]);

        // Truncated localize.
        let payload = [1u8, 5, 0, 0, 0]; // announces 5 ids, carries none
        conn.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        conn.write_all(&payload).unwrap();
        assert!(wire::read_frame(&mut conn, &mut frame).unwrap());
        assert_eq!(frame, vec![Status::BadFrame as u8]);

        drop(conn);
        let stats = daemon.shutdown();
        assert_eq!(stats.errors, 2);
    }

    #[test]
    fn stats_opcode_reports_live_telemetry() {
        let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut out = Vec::new();
        let mut frame = Vec::new();

        wire::encode_info_request(&mut out);
        roundtrip(&mut conn, &out, &mut frame);
        let info = wire::decode_info_response(&frame).unwrap();
        let ids: Vec<u64> = info.beacons.iter().take(4).map(|&(id, _)| id).collect();
        for _ in 0..3 {
            wire::encode_localize_request(&mut out, &ids);
            roundtrip(&mut conn, &out, &mut frame);
            wire::decode_localize_response(&frame).unwrap();
        }

        wire::encode_stats_request(&mut out);
        roundtrip(&mut conn, &out, &mut frame);
        let stats = wire::decode_stats_response(&frame).unwrap();
        assert_eq!(stats.epoch, 0);
        assert_eq!(stats.connections_total, 1);
        assert_eq!(stats.connections_live, 1);
        assert_eq!(stats.classes.len(), crate::metrics::OP_CLASSES);
        let loc = &stats.classes[OpClass::Localize as usize];
        assert_eq!(loc.count, 3);
        assert!(loc.min_ns > 0 && loc.max_ns >= loc.min_ns);
        assert_eq!(loc.buckets.iter().sum::<u64>(), 3);
        assert_eq!(stats.classes[OpClass::Info as usize].count, 1);
        // The stats request itself is recorded *after* it is answered,
        // so the first reply reports zero of its own class.
        assert_eq!(stats.classes[OpClass::Stats as usize].count, 0);
        assert_eq!(stats.requests_total(), 4);
        // The flight recorder saw every request so far (ring not full).
        assert_eq!(stats.flight.len(), 4);
        assert!(stats
            .flight
            .windows(2)
            .all(|w| w[0].latency_ns >= w[1].latency_ns));
        assert!(stats
            .flight
            .iter()
            .any(|e| e.class == OpClass::Localize as u8 && e.heard == 4));
        assert_eq!(stats.flight_dropped, 0);

        // A second stats request sees the first one counted.
        wire::encode_stats_request(&mut out);
        roundtrip(&mut conn, &out, &mut frame);
        let stats2 = wire::decode_stats_response(&frame).unwrap();
        assert_eq!(stats2.classes[OpClass::Stats as usize].count, 1);
        assert!(stats2.uptime_ns >= stats.uptime_ns);

        drop(conn);
        let snap = daemon.shutdown();
        assert_eq!(snap.stats, 2);
        assert_eq!(snap.opcodes[OpClass::Localize as usize].count, 3);
        assert!(snap.opcodes[OpClass::Localize as usize].p50_ns > 0);
        assert!(
            snap.opcodes[OpClass::Localize as usize].p99_ns
                >= snap.opcodes[OpClass::Localize as usize].p50_ns
        );
        assert!(!snap.summary_table().is_empty());
        assert!(snap.summary_table().contains("localize"));
    }

    #[test]
    fn telemetry_off_serves_but_records_nothing() {
        let cfg = ServeConfig {
            telemetry: false,
            ..ServeConfig::tiny()
        };
        let daemon = Daemon::start(&cfg).unwrap();
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut out = Vec::new();
        let mut frame = Vec::new();
        wire::encode_info_request(&mut out);
        roundtrip(&mut conn, &out, &mut frame);
        wire::encode_stats_request(&mut out);
        roundtrip(&mut conn, &out, &mut frame);
        let stats = wire::decode_stats_response(&frame).unwrap();
        // The opcode still answers (gauges live), but per-request
        // classes and the flight recorder stay empty.
        assert_eq!(stats.requests_total(), 0);
        assert!(stats.flight.is_empty());
        assert_eq!(stats.connections_live, 1);
        drop(conn);
        let snap = daemon.shutdown();
        assert_eq!(snap.requests, 2);
        assert!(snap.summary_table().is_empty());
    }

    /// Satellite regression: an unknown opcode's payload is consumed in
    /// full (frames are length-delimited), so a *pipelined* write of
    /// unknown-then-localize yields BadOpcode then a normal answer on a
    /// stream that never desynchronizes.
    #[test]
    fn unknown_opcode_consumes_its_payload_and_keeps_the_stream_synced() {
        let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut frame = Vec::new();

        // One write, two frames: opcode 200 with a 12-byte body whose
        // bytes would decode as a plausible frame start if the server
        // lost sync, then a valid empty localize.
        let mut pipelined = Vec::new();
        let body = [200u8, 9, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8];
        pipelined.extend_from_slice(&(body.len() as u32).to_le_bytes());
        pipelined.extend_from_slice(&body);
        let mut localize = Vec::new();
        wire::encode_localize_request(&mut localize, &[]);
        pipelined.extend_from_slice(&localize);
        conn.write_all(&pipelined).unwrap();

        assert!(wire::read_frame(&mut conn, &mut frame).unwrap());
        assert_eq!(frame, vec![Status::BadOpcode as u8]);
        assert!(wire::read_frame(&mut conn, &mut frame).unwrap());
        let reply = wire::decode_localize_response(&frame).unwrap();
        assert!(
            reply.degraded,
            "the pipelined localize is answered normally"
        );

        drop(conn);
        let stats = daemon.shutdown();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.localize, 1);
    }

    #[test]
    fn metrics_http_listener_serves_prometheus_text() {
        let cfg = ServeConfig {
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServeConfig::tiny()
        };
        let daemon = Daemon::start(&cfg).unwrap();
        let metrics_addr = daemon.metrics_addr().expect("metrics listener bound");

        // Drive some traffic first.
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut out = Vec::new();
        let mut frame = Vec::new();
        wire::encode_info_request(&mut out);
        roundtrip(&mut conn, &out, &mut frame);
        wire::encode_place_request(&mut out, PlaceAlgo::Max, 0, false);
        roundtrip(&mut conn, &out, &mut frame);

        let scrape = |path: &str| -> String {
            let mut http = TcpStream::connect(metrics_addr).unwrap();
            http.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
                .unwrap();
            let mut response = String::new();
            http.read_to_string(&mut response).unwrap();
            response
        };

        let response = scrape("/metrics");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("# TYPE serve_requests_total counter"));
        assert!(body.contains("serve_requests_total 2"));
        assert!(body.contains("serve_epoch 0"));
        assert!(body.contains("serve_connections_live 1"));
        assert!(body.contains("# TYPE serve_localize_seconds histogram"));
        assert!(body.contains("serve_place_seconds_count 1"));
        // The resilience counters are exported even when every defense
        // is disarmed — a dashboard alerting on them must see zeros, not
        // missing series.
        assert!(body.contains("serve_shed_total 0"));
        assert!(body.contains("serve_deadline_exceeded_total 0"));
        assert!(body.contains("serve_panics_total 0"));
        assert!(body.contains("serve_quarantines_total 0"));
        assert!(body.contains("serve_state_loads_total 0"));
        assert!(body.contains("serve_worker_respawns_total 0"));

        let missing = scrape("/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

        drop(conn);
        daemon.shutdown();
    }

    #[test]
    fn oversize_frame_is_rejected_and_disconnected() {
        let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
        let mut conn = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut frame = Vec::new();
        conn.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        assert!(wire::read_frame(&mut conn, &mut frame).unwrap());
        assert_eq!(frame, vec![Status::Oversize as u8]);
        // The server hangs up; the next read sees EOF.
        assert!(!wire::read_frame(&mut conn, &mut frame).unwrap());
        daemon.shutdown();
    }
}
