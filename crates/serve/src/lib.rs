//! Online localization serving — the deployment story of the paper's
//! pipeline.
//!
//! Everything up to this crate is *batch*: generate a field, survey it,
//! place a beacon, repeat. `abp-serve` turns that pipeline into a
//! long-lived daemon a fielded client can actually talk to:
//!
//! * [`protocol`] — a dependency-free length-prefixed TCP wire format
//!   with four requests: **localize** (heard-beacon ids → position
//!   estimate + confidence), **place** (current error map → next-beacon
//!   suggestion via Random/Max/Grid), **info** (epoch + terrain +
//!   beacon roster), and **stats** (a live telemetry snapshot),
//! * [`snapshot`] — the [`WorldSnapshot`](snapshot::WorldSnapshot):
//!   an immutable bundle of `BeaconField` + `ErrorMap` + `CellIndex` +
//!   `BeaconSoA` published through an epoch-stamped
//!   [`SnapshotCell`](snapshot::SnapshotCell), so background re-surveys
//!   rebuild off to the side while request workers never block,
//! * [`engine`] — the per-request compute, bit-identical to the batch
//!   localizers (see [`engine::localize`]) and allocation-free on reused
//!   [`engine::ServeScratch`] workspaces,
//! * [`daemon`] — thread-per-core accept/worker loop with graceful
//!   shutdown and per-connection allocation accounting,
//! * [`metrics`] — the daemon's embedded live telemetry: per-opcode
//!   request counters and latency histograms on ungated atomics, the
//!   connection/rebuild gauges, and the never-blocks-a-worker
//!   slowest-requests flight recorder (served over the **stats**
//!   opcode and the optional `/metrics` HTTP exposition listener —
//!   see `docs/OBSERVABILITY.md`),
//! * [`mod@bench`] — the `abp serve-bench` load harness: N client threads,
//!   client-observed p50/p95/p99, server-side allocs/request, and
//!   `/metrics` scrape latency under load,
//! * [`signal`] — a minimal SIGTERM/SIGINT hook for the CLI daemon,
//! * [`state`] — warm-restart persistence: the published world's
//!   *inputs* (epoch + beacon roster) in a CRC-framed state file the
//!   daemon rewrites on every epoch publish and reloads at boot for a
//!   bit-identical error map after a crash,
//! * [`chaos`] — the `abp serve-chaos` battery: hostile clients (torn
//!   frames, garbage opcodes, absurd prefixes, slowloris, floods) and
//!   an injected in-handler panic thrown at a live daemon, asserting
//!   it sheds, quarantines, and survives without leaking connections.
//!
//! # The zero-alloc serving invariant
//!
//! The request path — decode, snapshot lookup, localize/place, encode —
//! performs **zero heap allocations** in steady state (after a short
//! per-connection warm-up that sizes the reused buffers). Under
//! `--features count-allocs` the daemon measures this per connection with
//! thread-local allocator deltas and reports allocs/request in
//! [`daemon::StatsSnapshot`]; the bench gate holds it at exactly 0.
//! Control-plane work (applying a placement, re-surveying, publishing a
//! new epoch) happens on the rebuilder thread and may allocate freely.
//!
//! # Example
//!
//! ```
//! use abp_serve::daemon::{Daemon, ServeConfig};
//! use abp_serve::protocol as wire;
//! use std::io::Write;
//!
//! let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
//! let mut conn = std::net::TcpStream::connect(daemon.local_addr()).unwrap();
//! let mut buf = Vec::new();
//! wire::encode_info_request(&mut buf);
//! conn.write_all(&buf).unwrap();
//! let mut frame = Vec::new();
//! wire::read_frame(&mut conn, &mut frame).unwrap();
//! let info = wire::decode_info_response(&frame).unwrap();
//! assert_eq!(info.epoch, 0);
//! assert!(!info.beacons.is_empty());
//! drop(conn);
//! let stats = daemon.shutdown();
//! assert_eq!(stats.info, 1);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod chaos;
pub mod daemon;
pub mod engine;
pub mod metrics;
pub mod protocol;
pub mod signal;
pub mod snapshot;
pub mod state;

use abp_trace::{Counter, DurationHistogram};

/// Telemetry: requests served, all opcodes (one per decoded frame).
pub static REQUESTS: Counter = Counter::new("serve_requests");
/// Telemetry: localize requests served.
pub static LOCALIZE_REQUESTS: Counter = Counter::new("serve_localize");
/// Telemetry: place requests served.
pub static PLACE_REQUESTS: Counter = Counter::new("serve_place");
/// Telemetry: info requests served.
pub static INFO_REQUESTS: Counter = Counter::new("serve_info");
/// Telemetry: malformed frames answered with an error status.
pub static PROTOCOL_ERRORS: Counter = Counter::new("serve_protocol_errors");
/// Telemetry: placement proposals applied (enqueued to the rebuilder).
pub static APPLIES: Counter = Counter::new("serve_applies");
/// Telemetry: world snapshots published (epoch bumps past the initial).
pub static EPOCHS_PUBLISHED: Counter = Counter::new("serve_epochs_published");
/// Telemetry: request latency, decode through encode (excludes socket
/// reads/writes), in log₂ nanosecond buckets with exact min/max.
pub static REQUEST_NS: DurationHistogram = DurationHistogram::new("serve_request_ns");
