//! Warm-restart state: the published world, persisted across crashes.
//!
//! A [`WorldSnapshot`](crate::snapshot::WorldSnapshot) is pure: it is
//! fully determined by the terrain, the survey step, the propagation
//! model, the epoch, and the beacon roster. So crash recovery does not
//! need to persist the (large) error map at all — it persists the tiny
//! generating inputs and **rebuilds** the snapshot at boot, which is
//! guaranteed bit-identical because the build path is deterministic.
//! This is the same discipline as `SweepCheckpoint` v2: a versioned,
//! CRC-guarded little-endian file written atomically (tmp + rename), and
//! a typed [`StateOpen`] report instead of silent fallbacks when an
//! existing file cannot be honoured.
//!
//! # File format (version 1, all little-endian)
//!
//! | bytes | field |
//! |-------|-------|
//! | 4 | magic `0x4142_5053` ("ABPS") |
//! | 2 | version (`1`) |
//! | 8 | config fingerprint ([`config_fingerprint`]) |
//! | 8 | epoch |
//! | 4 | beacon count `n` |
//! | 16·n | per beacon: `x` bits, `y` bits (slot order) |
//! | 4 | CRC32 (IEEE) over everything above |
//!
//! Beacon ids are implicit: the roster is written in slot order and
//! [`abp_field::BeaconField::from_positions`] reassigns the same
//! monotonic ids on load, exactly as the daemon's own boot path does.
//!
//! The config fingerprint folds the serve parameters that shape the
//! rebuild (terrain side, survey step, nominal range). A file written
//! under different parameters *would* rebuild to a different world, so
//! it is reported ([`StateOpen::IgnoredFingerprint`]) and the daemon
//! boots fresh rather than serving a silently inconsistent map.

use crate::snapshot::mix;
use abp_geom::{Point, Terrain};
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// State-file magic: "ABPS" little-endian.
pub const STATE_MAGIC: u32 = 0x4142_5053;

/// Current state-file format version.
pub const STATE_VERSION: u16 = 1;

/// What the daemon should boot from, as decided by [`load_state`].
#[derive(Debug, Clone, PartialEq)]
pub enum StateOpen {
    /// No state file exists — first boot, start fresh.
    Fresh,
    /// A valid file matched the config: boot warm from this roster.
    Loaded {
        /// The epoch the killed daemon had published.
        epoch: u64,
        /// Beacon positions in slot order.
        positions: Vec<Point>,
    },
    /// A file exists but is torn, truncated, bit-rotted, or malformed;
    /// it is ignored (and will be overwritten on the next save).
    IgnoredCorrupt(String),
    /// A file exists but was written by an incompatible format version.
    IgnoredVersion(u16),
    /// A file exists but was written under different serve parameters;
    /// rebuilding from it would publish a different world than it saved.
    IgnoredFingerprint {
        /// The fingerprint recorded in the file.
        found: u64,
        /// The fingerprint of the booting configuration.
        expected: u64,
    },
}

impl StateOpen {
    /// A one-line human description for the daemon's stderr boot report.
    pub fn describe(&self) -> String {
        match self {
            StateOpen::Fresh => "no state file, booting fresh".into(),
            StateOpen::Loaded { epoch, positions } => format!(
                "restored epoch {epoch} with {} beacons (warm restart)",
                positions.len()
            ),
            StateOpen::IgnoredCorrupt(why) => {
                format!("existing state file ignored: {why}; booting fresh")
            }
            StateOpen::IgnoredVersion(v) => {
                format!("existing state file ignored: unsupported version {v}; booting fresh")
            }
            StateOpen::IgnoredFingerprint { found, expected } => format!(
                "existing state file ignored: config fingerprint {found:#018x} \
                 does not match {expected:#018x}; booting fresh"
            ),
        }
    }
}

/// Folds the serve parameters that determine the rebuilt world into one
/// fingerprint. Two configs with equal fingerprints rebuild a saved
/// roster into bit-identical snapshots.
pub fn config_fingerprint(side: f64, step: f64, nominal_range: f64) -> u64 {
    let mut h = mix(0x5345_5256_4531u64); // "SERVE1"
    h = mix(h ^ side.to_bits());
    h = mix(h ^ step.to_bits());
    h = mix(h ^ nominal_range.to_bits());
    h
}

// ---------------------------------------------------------------------
// CRC32 (IEEE, reflected) — same table discipline as SweepCheckpoint v2.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Save.
// ---------------------------------------------------------------------

/// Serializes one published world generation.
fn encode_state(fingerprint: u64, epoch: u64, positions: &[Point]) -> Vec<u8> {
    let mut out = Vec::with_capacity(30 + positions.len() * 16);
    out.extend_from_slice(&STATE_MAGIC.to_le_bytes());
    out.extend_from_slice(&STATE_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(positions.len() as u32).to_le_bytes());
    for p in positions {
        out.extend_from_slice(&p.x.to_bits().to_le_bytes());
        out.extend_from_slice(&p.y.to_bits().to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Atomically persists `epoch` + `positions` under `fingerprint` to
/// `path`: the bytes land in `path.tmp` first and are renamed into
/// place, so a crash mid-save leaves the previous good file intact.
///
/// Control-plane only (runs on the rebuilder thread and at boot) — it
/// allocates and does file I/O, and must never be called from a worker.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, rename failure).
pub fn save_state(
    path: &Path,
    fingerprint: u64,
    epoch: u64,
    positions: &[Point],
) -> io::Result<()> {
    let bytes = encode_state(fingerprint, epoch, positions);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------
// Load.
// ---------------------------------------------------------------------

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Some(head)
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

/// Decodes `bytes` as a state file, honouring only files that match
/// `expected_fingerprint` and whose roster fits inside `terrain`.
fn decode_state(bytes: &[u8], expected_fingerprint: u64, terrain: Terrain) -> StateOpen {
    // CRC trailer first: everything else is untrustworthy until then.
    if bytes.len() < 4 {
        return StateOpen::IgnoredCorrupt("file shorter than its CRC trailer".into());
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let recorded = u32::from_le_bytes(trailer.try_into().unwrap());
    let actual = crc32(body);
    if recorded != actual {
        return StateOpen::IgnoredCorrupt(format!(
            "CRC mismatch (recorded {recorded:#010x}, computed {actual:#010x})"
        ));
    }
    let mut r = Reader(body);
    match r.u32() {
        Some(STATE_MAGIC) => {}
        _ => return StateOpen::IgnoredCorrupt("bad magic".into()),
    }
    let version = match r.u16() {
        Some(v) => v,
        None => return StateOpen::IgnoredCorrupt("truncated header".into()),
    };
    if version != STATE_VERSION {
        return StateOpen::IgnoredVersion(version);
    }
    let Some(found) = r.u64() else {
        return StateOpen::IgnoredCorrupt("truncated header".into());
    };
    if found != expected_fingerprint {
        return StateOpen::IgnoredFingerprint {
            found,
            expected: expected_fingerprint,
        };
    }
    let Some(epoch) = r.u64() else {
        return StateOpen::IgnoredCorrupt("truncated header".into());
    };
    let Some(count) = r.u32() else {
        return StateOpen::IgnoredCorrupt("truncated header".into());
    };
    if (count as u64) * 16 != r.0.len() as u64 {
        return StateOpen::IgnoredCorrupt(format!(
            "roster count {count} does not match {} payload bytes",
            r.0.len()
        ));
    }
    let mut positions = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let x = f64::from_bits(r.u64().expect("length checked"));
        let y = f64::from_bits(r.u64().expect("length checked"));
        let p = Point::new(x, y);
        if !p.is_finite() || !terrain.contains(p) {
            return StateOpen::IgnoredCorrupt(format!(
                "beacon position {p} outside the configured terrain"
            ));
        }
        positions.push(p);
    }
    StateOpen::Loaded { epoch, positions }
}

/// Opens `path` and decides what the daemon should boot from. Never
/// fails hard: a missing file is [`StateOpen::Fresh`] and every damaged
/// or mismatched file is a typed `Ignored*` variant the daemon reports
/// and overwrites on its next save.
pub fn load_state(path: &Path, expected_fingerprint: u64, terrain: Terrain) -> StateOpen {
    let mut f = match fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return StateOpen::Fresh,
        Err(e) => return StateOpen::IgnoredCorrupt(format!("open failed: {e}")),
    };
    let mut bytes = Vec::new();
    if let Err(e) = f.read_to_end(&mut bytes) {
        return StateOpen::IgnoredCorrupt(format!("read failed: {e}"));
    }
    decode_state(&bytes, expected_fingerprint, terrain)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roster() -> Vec<Point> {
        vec![
            Point::new(1.5, 2.5),
            Point::new(40.0, 59.999),
            Point::new(0.25 + 0.5, 33.0 / 7.0),
        ]
    }

    fn fingerprint() -> u64 {
        config_fingerprint(60.0, 4.0, 15.0)
    }

    #[test]
    fn save_load_roundtrips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("abp-state-rt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.state");
        save_state(&path, fingerprint(), 7, &roster()).unwrap();
        let open = load_state(&path, fingerprint(), Terrain::square(60.0));
        let StateOpen::Loaded { epoch, positions } = open else {
            panic!("expected Loaded, got {open:?}");
        };
        assert_eq!(epoch, 7);
        assert_eq!(positions.len(), 3);
        for (a, b) in positions.iter().zip(roster().iter()) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
        }
        // No stray tmp file after a clean save.
        assert!(!path.with_extension("tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_fresh() {
        let path = std::env::temp_dir().join("abp-state-definitely-missing.state");
        assert_eq!(
            load_state(&path, fingerprint(), Terrain::square(60.0)),
            StateOpen::Fresh
        );
    }

    #[test]
    fn corruption_version_and_fingerprint_are_typed() {
        let dir = std::env::temp_dir().join(format!("abp-state-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.state");
        let terrain = Terrain::square(60.0);

        // Bit flip in the body → CRC mismatch.
        save_state(&path, fingerprint(), 3, &roster()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_state(&path, fingerprint(), terrain),
            StateOpen::IgnoredCorrupt(_)
        ));

        // Truncation → CRC mismatch or short file, never a panic.
        save_state(&path, fingerprint(), 3, &roster()).unwrap();
        let bytes = fs::read(&path).unwrap();
        for cut in [0, 1, 3, bytes.len() / 2, bytes.len() - 1] {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert!(matches!(
                load_state(&path, fingerprint(), terrain),
                StateOpen::IgnoredCorrupt(_)
            ));
        }

        // Future version (re-CRC'd so only the version differs).
        let mut future = encode_state(fingerprint(), 3, &roster());
        future.truncate(future.len() - 4);
        future[4..6].copy_from_slice(&(STATE_VERSION + 1).to_le_bytes());
        let crc = crc32(&future);
        future.extend_from_slice(&crc.to_le_bytes());
        fs::write(&path, &future).unwrap();
        assert_eq!(
            load_state(&path, fingerprint(), terrain),
            StateOpen::IgnoredVersion(STATE_VERSION + 1)
        );

        // Different serve parameters.
        save_state(&path, fingerprint(), 3, &roster()).unwrap();
        let other = config_fingerprint(100.0, 1.0, 15.0);
        assert!(matches!(
            load_state(&path, other, terrain),
            StateOpen::IgnoredFingerprint { .. }
        ));

        // A roster outside the configured terrain is corrupt, not a
        // panic in BeaconField::add_beacon later.
        save_state(&path, fingerprint(), 3, &[Point::new(999.0, 1.0)]).unwrap();
        assert!(matches!(
            load_state(&path, fingerprint(), terrain),
            StateOpen::IgnoredCorrupt(_)
        ));

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_fingerprint_separates_parameters() {
        let base = config_fingerprint(100.0, 1.0, 15.0);
        assert_eq!(base, config_fingerprint(100.0, 1.0, 15.0));
        assert_ne!(base, config_fingerprint(100.0, 2.0, 15.0));
        assert_ne!(base, config_fingerprint(60.0, 1.0, 15.0));
        assert_ne!(base, config_fingerprint(100.0, 1.0, 20.0));
    }

    #[test]
    fn describe_lines_are_informative() {
        assert!(StateOpen::Fresh.describe().contains("fresh"));
        let loaded = StateOpen::Loaded {
            epoch: 4,
            positions: roster(),
        };
        assert!(loaded.describe().contains("epoch 4"));
        assert!(loaded.describe().contains("3 beacons"));
        assert!(StateOpen::IgnoredVersion(9)
            .describe()
            .contains("version 9"));
    }
}
