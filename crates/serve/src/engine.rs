//! Per-request compute: localize and place against a pinned snapshot.
//!
//! # Bit-identity with the batch path
//!
//! A served localization must equal what the batch pipeline
//! (`CentroidLocalizer::try_localize_via`) computes for the same heard
//! set — not approximately, **bit for bit** — so a fielded client and an
//! offline replay of its logs can never disagree. The batch localizer
//! accumulates `sum += pos` over heard beacons in *insertion order* (the
//! `ConnectivityOracle::for_each_heard` ordering contract) and divides
//! once. [`localize`] reproduces that exactly: ids resolve to slots
//! (`BeaconField::slot_of`; slot order *is* insertion order because ids
//! are monotonic and never reused), slots are sorted ascending and
//! deduplicated, and the sums run in slot order with the same `+=` /
//! single-divide arithmetic. f64 addition is not associative, so the
//! order is the contract — [`served_matches_batch`] checks the equality
//! over entire lattices and runs in both the test suite and the bench
//! gate.
//!
//! # Allocation discipline
//!
//! Everything here works in caller-provided scratch ([`ServeScratch`])
//! or fixed-size locals; after a connection's first few requests size
//! the scratch, the request path allocates nothing.

use crate::protocol::{LocalizeReply, PlaceAlgo};
use crate::snapshot::{WorldSnapshot, SERVE_POLICY};
use abp_field::BeaconId;
use abp_geom::Point;
use abp_localize::Localizer;
use abp_placement::{PlacementAlgorithm, RandomPlacement, SurveyView};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimum heard beacons for a full-method (non-degraded) answer —
/// matches `Localizer::min_beacons` for the centroid localizer.
pub const MIN_BEACONS: usize = 1;

/// Reused per-worker buffers: request/response bytes plus the id and
/// slot workspaces of [`localize`]. Pre-sized so the steady state of a
/// well-behaved connection allocates nothing.
#[derive(Debug)]
pub struct ServeScratch {
    /// Incoming frame payload.
    pub in_buf: Vec<u8>,
    /// Outgoing frame (prefix + payload).
    pub out_buf: Vec<u8>,
    /// Heard-beacon ids decoded from the request.
    pub ids: Vec<u64>,
    /// Resolved field slots, sorted and deduplicated.
    pub slots: Vec<usize>,
}

impl ServeScratch {
    /// Creates scratch with capacities covering typical requests (4 KiB
    /// frames, 256 heard beacons) so no growth happens in steady state.
    pub fn new() -> Self {
        ServeScratch {
            in_buf: Vec::with_capacity(4096),
            out_buf: Vec::with_capacity(4096),
            ids: Vec::with_capacity(256),
            slots: Vec::with_capacity(256),
        }
    }
}

impl Default for ServeScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Localizes a client that heard exactly the beacons in `ids` (wire
/// order, duplicates tolerated) against `snap`, using `slots` as the
/// resolution workspace.
///
/// # Errors
///
/// Returns the first id that is not a beacon of this epoch. (A client
/// acting on a roster from epoch `N` can race a publish of `N+1`; ids
/// are never reused, so a stale id is *detected*, not silently
/// misresolved.)
pub fn localize(
    snap: &WorldSnapshot,
    ids: &[u64],
    slots: &mut Vec<usize>,
) -> Result<LocalizeReply, u64> {
    slots.clear();
    for &id in ids {
        slots.push(snap.field().slot_of(BeaconId(id)).ok_or(id)?);
    }
    // Ascending slot order == insertion order == the order the batch
    // localizer's oracle visits heard beacons in. `sort_unstable` and
    // `dedup` are in-place: no allocation.
    slots.sort_unstable();
    slots.dedup();
    let beacons = snap.field().beacons();
    let mut sum_x = 0.0;
    let mut sum_y = 0.0;
    for &slot in slots.iter() {
        let pos = beacons[slot].pos();
        sum_x += pos.x;
        sum_y += pos.y;
    }
    let heard = slots.len();
    let estimate = if heard == 0 {
        SERVE_POLICY.estimate(snap.terrain())
    } else {
        Some(Point::new(sum_x / heard as f64, sum_y / heard as f64))
    };
    let confidence = estimate.and_then(|e| snap.map().error_near(e));
    Ok(LocalizeReply {
        epoch: snap.epoch(),
        estimate,
        heard: heard as u32,
        degraded: heard < MIN_BEACONS,
        confidence,
    })
}

/// Proposes the next beacon position. Max and Grid return the answers
/// precomputed at snapshot build; Random runs the paper's `O(1)`
/// algorithm live with a request-supplied seed. All three paths are
/// allocation-free.
pub fn place(snap: &WorldSnapshot, algo: PlaceAlgo, seed: u64) -> Point {
    match algo {
        PlaceAlgo::Max => snap.max_point(),
        PlaceAlgo::Grid => snap.grid_point(),
        PlaceAlgo::Random => {
            let view = SurveyView {
                map: snap.map(),
                field: snap.field(),
                model: snap.model(),
            };
            let mut rng = StdRng::seed_from_u64(seed);
            RandomPlacement::new(snap.terrain()).propose(&view, &mut rng)
        }
    }
}

/// Verifies the bit-identity contract over every lattice point of
/// `snap` (stride 1) or a strided sample: at each point, gather the
/// heard set through the snapshot's oracle, localize it through
/// [`localize`] as if the ids had arrived on the wire, and compare
/// against the batch `try_localize_via` — estimates by exact bit
/// pattern, heard counts and degraded flags by value.
///
/// Returns `true` iff every sampled point matches.
pub fn served_matches_batch(snap: &WorldSnapshot, stride: usize) -> bool {
    let stride = stride.max(1);
    let oracle = snap.oracle();
    let localizer = snap.batch_localizer();
    let mut ids = Vec::new();
    let mut slots = Vec::new();
    for (k, at) in snap.map().lattice().points().enumerate() {
        if k % stride != 0 {
            continue;
        }
        ids.clear();
        oracle.for_each_heard(at, |b| ids.push(b.id().0));
        let served = match localize(snap, &ids, &mut slots) {
            Ok(reply) => reply,
            Err(_) => return false,
        };
        let batch = localizer.try_localize_via(&oracle, at);
        let fix = batch.fix();
        let estimates_match = match (served.estimate, fix.estimate) {
            (Some(s), Some(b)) => s.x.to_bits() == b.x.to_bits() && s.y.to_bits() == b.y.to_bits(),
            (None, None) => true,
            _ => false,
        };
        if !estimates_match
            || served.heard as usize != fix.heard
            || served.degraded != batch.is_degraded()
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_field::BeaconField;
    use abp_geom::Terrain;
    use abp_radio::{IdealDisk, PerBeaconNoise};
    use std::sync::Arc;

    fn snapshot(beacons: usize, seed: u64) -> WorldSnapshot {
        let terrain = Terrain::square(100.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let field = BeaconField::random_uniform(beacons, terrain, &mut rng);
        WorldSnapshot::build(0, field, Arc::new(IdealDisk::new(15.0)), 5.0)
    }

    #[test]
    fn localize_matches_hand_centroid() {
        let terrain = Terrain::square(100.0);
        let field = BeaconField::from_positions(
            terrain,
            [
                Point::new(45.0, 45.0),
                Point::new(55.0, 45.0),
                Point::new(50.0, 55.0),
            ],
        );
        let snap = WorldSnapshot::build(0, field, Arc::new(IdealDisk::new(15.0)), 5.0);
        let mut slots = Vec::new();
        // Wire order scrambled and with a duplicate: resolution must
        // sort into insertion order and dedup before accumulating.
        let reply = localize(&snap, &[2, 0, 1, 0], &mut slots).unwrap();
        assert_eq!(reply.heard, 3);
        assert!(!reply.degraded);
        let est = reply.estimate.unwrap();
        assert_eq!(est.x.to_bits(), (50.0f64).to_bits());
        assert_eq!(est.y.to_bits(), (145.0f64 / 3.0).to_bits());
        assert!(reply.confidence.is_some());
    }

    #[test]
    fn empty_heard_set_is_degraded_terrain_center() {
        let snap = snapshot(6, 1);
        let mut slots = Vec::new();
        let reply = localize(&snap, &[], &mut slots).unwrap();
        assert_eq!(reply.heard, 0);
        assert!(reply.degraded);
        assert_eq!(reply.estimate, Some(Point::new(50.0, 50.0)));
    }

    #[test]
    fn unknown_id_is_reported_not_misresolved() {
        let snap = snapshot(4, 2);
        let mut slots = Vec::new();
        assert_eq!(localize(&snap, &[0, 999], &mut slots), Err(999));
    }

    #[test]
    fn served_localization_is_bit_identical_to_batch() {
        // The satellite's core guarantee, over full lattices, for both a
        // disk-exact and a noisy (per-beacon range) model.
        for beacons in [5usize, 40, 120] {
            let snap = snapshot(beacons, beacons as u64);
            assert!(
                served_matches_batch(&snap, 1),
                "ideal disk, {beacons} beacons"
            );
        }
        let terrain = Terrain::square(100.0);
        let mut rng = StdRng::seed_from_u64(77);
        let field = BeaconField::random_uniform(60, terrain, &mut rng);
        let noisy =
            WorldSnapshot::build(0, field, Arc::new(PerBeaconNoise::new(15.0, 0.4, 13)), 5.0);
        assert!(served_matches_batch(&noisy, 1), "noisy model");
    }

    #[test]
    fn place_is_deterministic_and_in_terrain() {
        let snap = snapshot(20, 5);
        for algo in [PlaceAlgo::Random, PlaceAlgo::Max, PlaceAlgo::Grid] {
            let a = place(&snap, algo, 42);
            let b = place(&snap, algo, 42);
            assert_eq!(a, b, "{algo:?} must be deterministic per seed");
            assert!(snap.terrain().contains(a));
        }
        // Random varies with the seed; Max/Grid ignore it.
        assert_ne!(
            place(&snap, PlaceAlgo::Random, 1),
            place(&snap, PlaceAlgo::Random, 2)
        );
        assert_eq!(
            place(&snap, PlaceAlgo::Max, 1),
            place(&snap, PlaceAlgo::Max, 2)
        );
    }

    #[test]
    fn localize_steady_state_allocates_nothing() {
        let snap = snapshot(50, 8);
        let mut slots = Vec::with_capacity(64);
        let ids: Vec<u64> = (0..20).collect();
        // Warm up, then measure.
        for _ in 0..4 {
            localize(&snap, &ids, &mut slots).unwrap();
            place(&snap, PlaceAlgo::Random, 3);
        }
        let before = abp_trace::thread_snapshot();
        for seed in 0..100 {
            localize(&snap, &ids, &mut slots).unwrap();
            place(&snap, PlaceAlgo::Random, seed);
            place(&snap, PlaceAlgo::Max, seed);
            place(&snap, PlaceAlgo::Grid, seed);
        }
        let delta = abp_trace::thread_snapshot().delta_since(before);
        if abp_trace::counting() {
            assert_eq!(delta.allocs, 0, "request compute must not allocate");
        }
    }
}
