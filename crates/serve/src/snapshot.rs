//! The published world state and its epoch-stamped swap cell.
//!
//! A [`WorldSnapshot`] is everything a request needs, built **once** per
//! epoch off the hot path: the beacon field, its surveyed [`ErrorMap`],
//! the [`CellIndex`] spatial index, the [`BeaconSoA`] dense mirror, and
//! the deterministic placement answers (Max and Grid) precomputed so a
//! place request is a field read instead of an `O(map)` scan.
//!
//! Publication is a generation swap: the [`SnapshotCell`] holds the
//! current `Arc<WorldSnapshot>` behind a lock that is only ever touched
//! on epoch *change*. Readers keep their own cached `Arc` (see
//! [`SnapshotReader`]) and compare a lock-free epoch hint per request;
//! as long as the world is stable — the overwhelmingly common case — a
//! request touches no lock and performs no allocation. When the
//! rebuilder publishes epoch `N+1`, in-flight requests finish on epoch
//! `N` (their `Arc` keeps it alive) and the next request refreshes.
//!
//! Every snapshot carries a fingerprint folded over all of its parts at
//! build time; [`WorldSnapshot::is_consistent`] refolds and compares, so
//! the churn tests can prove a reader never observes a torn mix of one
//! epoch's map with another's index.

use abp_field::{BeaconField, BeaconSoA, CellIndex};
use abp_geom::{Lattice, Point, Terrain};
use abp_localize::{CentroidLocalizer, ConnectivityOracle, UnheardPolicy};
use abp_placement::{GridPlacement, MaxPlacement, PlacementAlgorithm, SurveyView};
use abp_radio::Propagation;
use abp_survey::ErrorMap;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The unheard policy every snapshot surveys and serves with. Pinned so
/// served estimates are bit-identical to the batch
/// [`CentroidLocalizer`] under the same policy.
pub const SERVE_POLICY: UnheardPolicy = UnheardPolicy::TerrainCenter;

/// One immutable epoch of world state. Built by the rebuilder thread,
/// shared with request workers via `Arc`, never mutated.
pub struct WorldSnapshot {
    epoch: u64,
    field: BeaconField,
    map: ErrorMap,
    index: CellIndex,
    soa: BeaconSoA,
    model: Arc<dyn Propagation>,
    step: f64,
    /// Survey tile threads for rebuilds of *this* world (0 = all cores):
    /// successor epochs built via [`WorldSnapshot::with_beacon_added`]
    /// inherit it, so one daemon setting governs every rebuild.
    survey_threads: usize,
    max_point: Point,
    grid_point: Point,
    fingerprint: u64,
}

impl WorldSnapshot {
    /// Surveys `field` under `model` on a lattice of spacing `step` and
    /// bundles the result as epoch `epoch`. This is the expensive
    /// control-plane build — `O(beacons · lattice)` — that the snapshot
    /// swap keeps off the request path. Runs the survey single-threaded;
    /// use [`WorldSnapshot::build_with_threads`] to tile it.
    pub fn build(epoch: u64, field: BeaconField, model: Arc<dyn Propagation>, step: f64) -> Self {
        Self::build_with_threads(epoch, field, model, step, 1)
    }

    /// [`WorldSnapshot::build`] with the survey sweep tiled across
    /// `survey_threads` workers (`0` = all cores, `1` = sequential) via
    /// `abp-survey`'s intra-survey tile scheduler. The survey is
    /// bit-identical at any thread count, so the snapshot fingerprint —
    /// which folds the map — is too; thread count is a throughput knob,
    /// never a state change (and it is deliberately *not* part of the
    /// warm-restart config fingerprint).
    pub fn build_with_threads(
        epoch: u64,
        field: BeaconField,
        model: Arc<dyn Propagation>,
        step: f64,
        survey_threads: usize,
    ) -> Self {
        let lattice = Lattice::new(field.terrain(), step);
        // The rebuilder allocates freely (it is off the hot path), so a
        // fresh scratch per build is fine; what matters is the tiled
        // sweep inside.
        let mut scratch = abp_survey::SurveyScratch::new();
        let map = ErrorMap::survey_indexed_with_threads(
            &lattice,
            &field,
            &*model,
            SERVE_POLICY,
            &mut scratch,
            survey_threads,
        );
        let index = ConnectivityOracle::build_index(&field, &*model);
        let mut soa = BeaconSoA::new();
        soa.rebuild_with(&field, |b| {
            let r = model.max_range(b.tx(), b.pos());
            r * r
        });
        // Precompute the deterministic placement answers so a place
        // request is O(1). Both algorithms ignore the rng.
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &*model,
        };
        let mut rng = StdRng::seed_from_u64(epoch);
        let max_point = MaxPlacement::new().propose(&view, &mut rng);
        let grid_point =
            GridPlacement::paper(field.terrain(), model.nominal_range()).propose(&view, &mut rng);
        let fingerprint =
            fold_fingerprint(epoch, &field, &map, &index, &soa, max_point, grid_point);
        WorldSnapshot {
            epoch,
            field,
            map,
            index,
            soa,
            model,
            step,
            survey_threads,
            max_point,
            grid_point,
            fingerprint,
        }
    }

    /// Rebuilds the successor epoch after `point` received a beacon:
    /// same model, lattice spacing, and survey thread count, epoch
    /// advanced by one.
    pub fn with_beacon_added(&self, point: Point) -> WorldSnapshot {
        let mut field = self.field.clone();
        field.add_beacon(self.field.terrain().bounds().clamp_point(point));
        WorldSnapshot::build_with_threads(
            self.epoch + 1,
            field,
            Arc::clone(&self.model),
            self.step,
            self.survey_threads,
        )
    }

    /// The epoch this snapshot was published as.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The beacon field of this epoch.
    #[inline]
    pub fn field(&self) -> &BeaconField {
        &self.field
    }

    /// The surveyed error map of this epoch.
    #[inline]
    pub fn map(&self) -> &ErrorMap {
        &self.map
    }

    /// The spatial index built over exactly this epoch's beacons.
    #[inline]
    pub fn index(&self) -> &CellIndex {
        &self.index
    }

    /// The dense structure-of-arrays mirror of this epoch's beacons.
    #[inline]
    pub fn soa(&self) -> &BeaconSoA {
        &self.soa
    }

    /// The propagation model in effect.
    #[inline]
    pub fn model(&self) -> &dyn Propagation {
        &*self.model
    }

    /// The terrain being served.
    #[inline]
    pub fn terrain(&self) -> Terrain {
        self.field.terrain()
    }

    /// The precomputed Max-placement answer for this epoch.
    #[inline]
    pub fn max_point(&self) -> Point {
        self.max_point
    }

    /// The precomputed Grid-placement answer for this epoch.
    #[inline]
    pub fn grid_point(&self) -> Point {
        self.grid_point
    }

    /// A connectivity oracle over this epoch's field, routed through its
    /// spatial index. Allocation-free to construct.
    #[inline]
    pub fn oracle(&self) -> ConnectivityOracle<'_> {
        ConnectivityOracle::with_index(&self.field, self.model(), &self.index)
    }

    /// The fingerprint folded over every part of this snapshot at build
    /// time. Two snapshots built from the same inputs fold to the same
    /// value, so equality here certifies a bit-identical world — the
    /// warm-restart tests use it to prove a restored daemon serves the
    /// exact error map the killed one published.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The batch localizer this snapshot's serving path must match
    /// bit-for-bit.
    #[inline]
    pub fn batch_localizer(&self) -> CentroidLocalizer {
        CentroidLocalizer::new(SERVE_POLICY)
    }

    /// Refolds the fingerprint over the current parts and compares it to
    /// the one recorded at build time. A reader holding a torn mix of
    /// epochs (impossible under the `Arc` swap, which is what the churn
    /// test proves) would fail this.
    pub fn is_consistent(&self) -> bool {
        fold_fingerprint(
            self.epoch,
            &self.field,
            &self.map,
            &self.index,
            &self.soa,
            self.max_point,
            self.grid_point,
        ) == self.fingerprint
    }
}

impl std::fmt::Debug for WorldSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldSnapshot")
            .field("epoch", &self.epoch)
            .field("beacons", &self.field.len())
            .field("lattice_points", &self.map.len())
            .field("mean_error", &self.map.mean_error())
            .finish()
    }
}

/// splitmix64's finalizer: a cheap, well-mixed 64-bit fold step. Shared
/// with the state-file config fingerprint (see [`crate::state`]).
pub(crate) fn mix(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

fn fold_fingerprint(
    epoch: u64,
    field: &BeaconField,
    map: &ErrorMap,
    index: &CellIndex,
    soa: &BeaconSoA,
    max_point: Point,
    grid_point: Point,
) -> u64 {
    let mut h = mix(epoch);
    h = mix(h ^ field.len() as u64);
    for b in field {
        h = mix(h ^ b.id().0);
        h = mix(h ^ b.pos().x.to_bits());
        h = mix(h ^ b.pos().y.to_bits());
    }
    h = mix(h ^ map.len() as u64);
    h = mix(h ^ map.valid_count() as u64);
    h = mix(h ^ map.mean_error().to_bits());
    h = mix(h ^ index.len() as u64);
    h = mix(h ^ index.cell_size().to_bits());
    h = mix(h ^ soa.len() as u64);
    h = mix(h ^ max_point.x.to_bits() ^ max_point.y.to_bits());
    h = mix(h ^ grid_point.x.to_bits() ^ grid_point.y.to_bits());
    h
}

/// The publication point: holds the current snapshot generation.
///
/// Writers ([`SnapshotCell::publish`]) swap in a new `Arc` and then
/// advance the epoch hint; readers compare the hint (one relaxed-cost
/// atomic load) against their cached snapshot's epoch and take the lock
/// only on an actual change. The hint is advanced *after* the swap under
/// the write lock, so a reader that observes the new hint is guaranteed
/// to load the new snapshot; a reader that observes the old hint serves
/// at most one more request from the previous epoch — staleness is
/// bounded and monotonic, and never torn.
pub struct SnapshotCell {
    epoch: AtomicU64,
    current: RwLock<Arc<WorldSnapshot>>,
}

impl SnapshotCell {
    /// Creates the cell publishing `initial`.
    pub fn new(initial: WorldSnapshot) -> Self {
        SnapshotCell {
            epoch: AtomicU64::new(initial.epoch()),
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// Publishes `next` as the current generation and returns its epoch.
    ///
    /// # Panics
    ///
    /// Panics if `next.epoch()` does not advance the published epoch —
    /// regressions here would break the readers' change detection.
    pub fn publish(&self, next: WorldSnapshot) -> u64 {
        let epoch = next.epoch();
        let mut slot = self.current.write().expect("snapshot lock poisoned");
        assert!(
            epoch > slot.epoch(),
            "epoch must advance: {} -> {epoch}",
            slot.epoch()
        );
        *slot = Arc::new(next);
        // Advance the hint while still holding the write lock: any
        // reader that sees the new hint will find the new snapshot.
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// The epoch hint — the epoch of the currently published snapshot.
    #[inline]
    pub fn epoch_hint(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Loads (a handle to) the current snapshot. Takes the read lock;
    /// request paths should go through a [`SnapshotReader`] instead,
    /// which only calls this on epoch change.
    pub fn load(&self) -> Arc<WorldSnapshot> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    /// Creates a per-worker cached reader.
    pub fn reader(&self) -> SnapshotReader<'_> {
        SnapshotReader {
            cell: self,
            cached: self.load(),
        }
    }
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("epoch", &self.epoch_hint())
            .finish()
    }
}

/// A worker-local snapshot handle: one atomic load per request in steady
/// state, a lock + `Arc` refresh only when the epoch actually changed.
pub struct SnapshotReader<'a> {
    cell: &'a SnapshotCell,
    cached: Arc<WorldSnapshot>,
}

impl SnapshotReader<'_> {
    /// The current snapshot, refreshing the cache iff the published
    /// epoch moved. The returned borrow is pinned to this reader, so the
    /// snapshot cannot change under an in-flight request.
    #[inline]
    pub fn current(&mut self) -> &WorldSnapshot {
        if self.cached.epoch() != self.cell.epoch_hint() {
            self.cached = self.cell.load();
        }
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_radio::IdealDisk;

    fn snapshot(epoch: u64, beacons: usize) -> WorldSnapshot {
        let terrain = Terrain::square(60.0);
        let mut rng = StdRng::seed_from_u64(9);
        let field = BeaconField::random_uniform(beacons, terrain, &mut rng);
        WorldSnapshot::build(epoch, field, Arc::new(IdealDisk::new(15.0)), 4.0)
    }

    #[test]
    fn build_is_consistent_and_precomputes_placements() {
        let snap = snapshot(0, 12);
        assert!(snap.is_consistent());
        assert_eq!(snap.index().len(), snap.field().len());
        assert_eq!(snap.soa().len(), snap.field().len());
        // Precomputed answers equal a live run of the real algorithms.
        let view = SurveyView {
            map: snap.map(),
            field: snap.field(),
            model: snap.model(),
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            snap.max_point(),
            MaxPlacement::new().propose(&view, &mut rng)
        );
        assert_eq!(
            snap.grid_point(),
            GridPlacement::paper(snap.terrain(), snap.model().nominal_range())
                .propose(&view, &mut rng)
        );
    }

    #[test]
    fn with_beacon_added_advances_epoch_and_grows_field() {
        let snap = snapshot(3, 5);
        let next = snap.with_beacon_added(Point::new(30.0, 30.0));
        assert_eq!(next.epoch(), 4);
        assert_eq!(next.field().len(), 6);
        assert!(next.is_consistent());
        // The parent is untouched (immutable generations).
        assert_eq!(snap.field().len(), 5);
        assert!(snap.is_consistent());
    }

    #[test]
    fn cell_publish_swaps_and_readers_refresh() {
        let cell = SnapshotCell::new(snapshot(0, 4));
        let mut reader = cell.reader();
        assert_eq!(reader.current().epoch(), 0);
        let old = cell.load();
        cell.publish(snapshot(1, 5));
        assert_eq!(cell.epoch_hint(), 1);
        assert_eq!(reader.current().epoch(), 1);
        assert_eq!(reader.current().field().len(), 5);
        // The displaced generation stays alive and intact for holders.
        assert_eq!(old.epoch(), 0);
        assert!(old.is_consistent());
    }

    #[test]
    #[should_panic(expected = "epoch must advance")]
    fn cell_rejects_epoch_regression() {
        let cell = SnapshotCell::new(snapshot(2, 4));
        cell.publish(snapshot(2, 4));
    }
}
