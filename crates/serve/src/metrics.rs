//! Per-daemon live telemetry: opcode-class counters and latency
//! histograms, operational gauges, and a slow-request flight recorder.
//!
//! Unlike the crate-level [`abp_trace`] statics (which sit behind the
//! global instrumentation gate and a process-wide registry), these
//! instruments are owned by one [`Daemon`](crate::daemon::Daemon): every
//! in-process daemon — tests and bench harnesses routinely run several —
//! gets its own numbers, nothing depends on the global gate, and the
//! record path is a handful of relaxed atomic stores with **zero heap
//! allocations**, so it rides inside the serving invariant measured by
//! `serve-bench --features count-allocs`.
//!
//! The three consumers are:
//!
//! * the **Stats wire opcode** ([`crate::protocol::encode_stats_response`])
//!   — a compact binary snapshot `abp top` polls,
//! * the **`/metrics` HTTP listener** — Prometheus text exposition built
//!   from the same instruments via [`abp_trace::render_prometheus`],
//! * the **shutdown summary** — per-opcode counts and quantiles in
//!   [`StatsSnapshot`](crate::daemon::StatsSnapshot).

use abp_trace::{HistogramSnapshot, RawHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Slots in the flight recorder: the N slowest requests retained.
pub const FLIGHT_SLOTS: usize = 16;

/// Number of opcode classes tracked (one per [`OpClass`] variant).
pub const OP_CLASSES: usize = 5;

/// The request classes telemetry is broken down by: one per wire opcode,
/// plus one class for frames answered with an error status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpClass {
    /// Localize requests (opcode 1).
    Localize = 0,
    /// Place requests (opcode 2).
    Place = 1,
    /// Info requests (opcode 3).
    Info = 2,
    /// Stats requests (opcode 4).
    Stats = 3,
    /// Frames answered with a non-Ok status (any opcode).
    Error = 4,
}

/// All classes, in index order (`OpClass::ALL[i] as usize == i`).
pub const ALL_CLASSES: [OpClass; OP_CLASSES] = [
    OpClass::Localize,
    OpClass::Place,
    OpClass::Info,
    OpClass::Stats,
    OpClass::Error,
];

impl OpClass {
    /// The class with index `i`, if any (inverse of `self as usize`).
    pub fn from_index(i: usize) -> Option<OpClass> {
        ALL_CLASSES.get(i).copied()
    }

    /// Lower-case display name (`"localize"`, ..., `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Localize => "localize",
            OpClass::Place => "place",
            OpClass::Info => "info",
            OpClass::Stats => "stats",
            OpClass::Error => "error",
        }
    }

    /// The per-class request-counter instrument name for exposition.
    pub fn counter_name(self) -> &'static str {
        match self {
            OpClass::Localize => "serve_localize_requests",
            OpClass::Place => "serve_place_requests",
            OpClass::Info => "serve_info_requests",
            OpClass::Stats => "serve_stats_requests",
            OpClass::Error => "serve_error_requests",
        }
    }

    /// The latency-histogram instrument name, `_ns`-suffixed so the
    /// Prometheus renderer exports it as `*_seconds`.
    pub fn metric_name(self) -> &'static str {
        match self {
            OpClass::Localize => "serve_localize_ns",
            OpClass::Place => "serve_place_ns",
            OpClass::Info => "serve_info_ns",
            OpClass::Stats => "serve_stats_ns",
            OpClass::Error => "serve_error_ns",
        }
    }
}

/// One slow request captured by the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightEntry {
    /// The request's [`OpClass`] index.
    pub class: u8,
    /// Beacons heard (localize requests; 0 otherwise).
    pub heard: u32,
    /// Handler latency, decode through encode, in nanoseconds.
    pub latency_ns: u64,
    /// The epoch current when the request was served.
    pub epoch: u64,
}

struct FlightSlots {
    entries: [FlightEntry; FLIGHT_SLOTS],
    len: usize,
}

/// A bounded ring of the slowest requests seen so far.
///
/// The steady-state cost per request is one relaxed load: once the ring
/// is full, only a request slower than the current floor (the fastest
/// retained entry) takes the lock at all. The lock itself is `try_lock`
/// — a contended offer is *dropped* (and counted) rather than ever
/// blocking a worker, and nothing on this path allocates.
pub struct FlightRecorder {
    /// Admission floor: 0 until the ring fills, then the smallest
    /// retained latency. Requests at or below it skip the lock.
    floor_ns: AtomicU64,
    dropped: AtomicU64,
    slots: Mutex<FlightSlots>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            floor_ns: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: Mutex::new(FlightSlots {
                entries: [FlightEntry::default(); FLIGHT_SLOTS],
                len: 0,
            }),
        }
    }

    /// Offers a request for retention. Keeps the entry iff it is slower
    /// than the current floor; never blocks, never allocates.
    #[inline]
    pub fn offer(&self, entry: FlightEntry) {
        if entry.latency_ns <= self.floor_ns.load(Ordering::Relaxed) {
            return;
        }
        let Ok(mut slots) = self.slots.try_lock() else {
            // Contended: losing one slow-request sample beats stalling
            // the request path. Account for it instead.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if slots.len < FLIGHT_SLOTS {
            let at = slots.len;
            slots.entries[at] = entry;
            slots.len += 1;
            if slots.len < FLIGHT_SLOTS {
                return; // floor stays 0 until the ring fills
            }
        } else {
            // Replace the fastest retained entry if we beat it. (The
            // floor check above is advisory — relaxed, possibly stale —
            // so re-check under the lock.)
            let (min_at, min_entry) = slots
                .entries
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|(_, e)| e.latency_ns)
                .expect("ring is non-empty");
            if entry.latency_ns <= min_entry.latency_ns {
                return;
            }
            slots.entries[min_at] = entry;
        }
        let new_floor = slots
            .entries
            .iter()
            .map(|e| e.latency_ns)
            .min()
            .expect("ring is full");
        self.floor_ns.store(new_floor, Ordering::Relaxed);
    }

    /// Offers dropped to `try_lock` contention.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies the retained entries into `out` (slowest first) and
    /// returns how many were written. Alloc-free: `out` is
    /// caller-provided, and sorting is in-place.
    pub fn copy_into(&self, out: &mut [FlightEntry; FLIGHT_SLOTS]) -> usize {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let n = slots.len;
        out[..n].copy_from_slice(&slots.entries[..n]);
        drop(slots);
        out[..n].sort_unstable_by_key(|e| std::cmp::Reverse(e.latency_ns));
        n
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

struct ClassMetrics {
    count: AtomicU64,
    latency: RawHistogram,
}

impl ClassMetrics {
    const fn new() -> ClassMetrics {
        ClassMetrics {
            count: AtomicU64::new(0),
            latency: RawHistogram::new(),
        }
    }
}

/// The full per-daemon telemetry block: per-class counts and latency
/// histograms, operational gauges, and the flight recorder.
pub struct ServeMetrics {
    started: Instant,
    classes: [ClassMetrics; OP_CLASSES],
    connections_live: AtomicU64,
    rebuilds_pending: AtomicU64,
    rebuilds_total: AtomicU64,
    last_rebuild_ns: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics: AtomicU64,
    quarantines: AtomicU64,
    state_saves: AtomicU64,
    state_loads: AtomicU64,
    /// The slowest-request ring.
    pub flight: FlightRecorder,
}

impl ServeMetrics {
    /// A fresh telemetry block; `uptime` counts from here.
    pub fn new() -> ServeMetrics {
        ServeMetrics {
            started: Instant::now(),
            classes: [
                ClassMetrics::new(),
                ClassMetrics::new(),
                ClassMetrics::new(),
                ClassMetrics::new(),
                ClassMetrics::new(),
            ],
            connections_live: AtomicU64::new(0),
            rebuilds_pending: AtomicU64::new(0),
            rebuilds_total: AtomicU64::new(0),
            last_rebuild_ns: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            state_saves: AtomicU64::new(0),
            state_loads: AtomicU64::new(0),
            flight: FlightRecorder::new(),
        }
    }

    /// Records one served request: bumps the class count and its latency
    /// histogram. Six relaxed atomic ops, no allocation.
    #[inline]
    pub fn record(&self, class: OpClass, latency_ns: u64) {
        let c = &self.classes[class as usize];
        c.count.fetch_add(1, Ordering::Relaxed);
        c.latency.record_ns(latency_ns);
    }

    /// Requests served in `class`.
    pub fn class_count(&self, class: OpClass) -> u64 {
        self.classes[class as usize].count.load(Ordering::Relaxed)
    }

    /// The latency histogram for `class` (for alloc-free bucket walks;
    /// see [`ServeMetrics::class_snapshot`] for the owned form).
    pub fn class_histogram(&self, class: OpClass) -> &RawHistogram {
        &self.classes[class as usize].latency
    }

    /// An owned snapshot of `class`'s latency histogram, named for the
    /// Prometheus renderer. Allocates — control-plane only.
    pub fn class_snapshot(&self, class: OpClass) -> HistogramSnapshot {
        self.classes[class as usize]
            .latency
            .snapshot(class.metric_name())
    }

    /// Requests served across all classes.
    pub fn requests_total(&self) -> u64 {
        ALL_CLASSES.iter().map(|&c| self.class_count(c)).sum()
    }

    /// Wall-clock time since the daemon started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// A connection was accepted.
    #[inline]
    pub fn connection_opened(&self) {
        self.connections_live.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection finished (clean or not).
    #[inline]
    pub fn connection_closed(&self) {
        let _ = self
            .connections_live
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Connections currently being served.
    pub fn connections_live(&self) -> u64 {
        self.connections_live.load(Ordering::Relaxed)
    }

    /// A placement apply was enqueued for the rebuilder.
    #[inline]
    pub fn rebuild_enqueued(&self) {
        self.rebuilds_pending.fetch_add(1, Ordering::Relaxed);
    }

    /// The rebuilder finished (and published) one rebuild.
    pub fn rebuild_finished(&self, took: Duration) {
        let _ = self
            .rebuilds_pending
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
        self.rebuilds_total.fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(took.as_nanos()).unwrap_or(u64::MAX);
        self.last_rebuild_ns.store(ns, Ordering::Relaxed);
    }

    /// Applies enqueued but not yet rebuilt.
    pub fn rebuilds_pending(&self) -> u64 {
        self.rebuilds_pending.load(Ordering::Relaxed)
    }

    /// Rebuilds completed since start.
    pub fn rebuilds_total(&self) -> u64 {
        self.rebuilds_total.load(Ordering::Relaxed)
    }

    /// Duration of the most recent rebuild, in nanoseconds (0 before the
    /// first).
    pub fn last_rebuild_ns(&self) -> u64 {
        self.last_rebuild_ns.load(Ordering::Relaxed)
    }

    // -----------------------------------------------------------------
    // Resilience counters. All bump paths are one relaxed atomic add —
    // safe on the request path, no allocation.
    // -----------------------------------------------------------------

    /// Admission control shed a connection or request with
    /// [`Status::Overloaded`](crate::protocol::Status::Overloaded).
    #[inline]
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections/requests shed by admission control.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// A request's handling blew the per-request deadline.
    #[inline]
    pub fn note_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests answered with
    /// [`Status::DeadlineExceeded`](crate::protocol::Status::DeadlineExceeded).
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// A request handler panicked (the connection died, the worker
    /// survived).
    #[inline]
    pub fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Request-handler panics contained so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// A connection was quarantined for dribbling one frame slower than
    /// the daemon's frame window (slow-loris defense).
    #[inline]
    pub fn note_quarantine(&self) {
        self.quarantines.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections quarantined by the dribble detector.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }

    /// A world snapshot was persisted to the `--state` file.
    #[inline]
    pub fn note_state_save(&self) {
        self.state_saves.fetch_add(1, Ordering::Relaxed);
    }

    /// World snapshots persisted to the state file.
    pub fn state_saves(&self) -> u64 {
        self.state_saves.load(Ordering::Relaxed)
    }

    /// A world snapshot was restored from the `--state` file at boot.
    #[inline]
    pub fn note_state_load(&self) {
        self.state_loads.fetch_add(1, Ordering::Relaxed);
    }

    /// World snapshots restored from the state file.
    pub fn state_loads(&self) -> u64 {
        self.state_loads.load(Ordering::Relaxed)
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_indexing_roundtrips() {
        for (i, &class) in ALL_CLASSES.iter().enumerate() {
            assert_eq!(class as usize, i);
            assert_eq!(OpClass::from_index(i), Some(class));
        }
        assert_eq!(OpClass::from_index(OP_CLASSES), None);
        assert_eq!(OpClass::Localize.name(), "localize");
        assert!(OpClass::Error.metric_name().ends_with("_ns"));
    }

    #[test]
    fn record_counts_per_class_and_sums_total() {
        let m = ServeMetrics::new();
        m.record(OpClass::Localize, 1_000);
        m.record(OpClass::Localize, 2_000);
        m.record(OpClass::Error, 50);
        assert_eq!(m.class_count(OpClass::Localize), 2);
        assert_eq!(m.class_count(OpClass::Error), 1);
        assert_eq!(m.class_count(OpClass::Place), 0);
        assert_eq!(m.requests_total(), 3);
        let snap = m.class_snapshot(OpClass::Localize);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum_ns, 3_000);
        assert_eq!(snap.name, "serve_localize_ns");
    }

    #[test]
    fn gauges_move_and_saturate() {
        let m = ServeMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        assert_eq!(m.connections_live(), 1);
        m.connection_closed();
        m.connection_closed(); // saturates at 0, never wraps
        assert_eq!(m.connections_live(), 0);

        m.rebuild_enqueued();
        m.rebuild_enqueued();
        assert_eq!(m.rebuilds_pending(), 2);
        m.rebuild_finished(Duration::from_micros(125));
        assert_eq!(m.rebuilds_pending(), 1);
        assert_eq!(m.rebuilds_total(), 1);
        assert_eq!(m.last_rebuild_ns(), 125_000);
    }

    #[test]
    fn resilience_counters_bump_independently() {
        let m = ServeMetrics::new();
        m.note_shed();
        m.note_shed();
        m.note_deadline_exceeded();
        m.note_panic();
        m.note_quarantine();
        m.note_state_save();
        m.note_state_save();
        m.note_state_load();
        assert_eq!(m.shed(), 2);
        assert_eq!(m.deadline_exceeded(), 1);
        assert_eq!(m.panics(), 1);
        assert_eq!(m.quarantines(), 1);
        assert_eq!(m.state_saves(), 2);
        assert_eq!(m.state_loads(), 1);
        // Defenses never fired: everything else stays untouched.
        assert_eq!(m.requests_total(), 0);
        assert_eq!(m.connections_live(), 0);
    }

    #[test]
    fn flight_recorder_keeps_the_slowest_n() {
        let rec = FlightRecorder::new();
        // Fill with latencies 1..=FLIGHT_SLOTS, then offer slower ones.
        for i in 1..=FLIGHT_SLOTS as u64 {
            rec.offer(FlightEntry {
                class: 0,
                heard: 0,
                latency_ns: i,
                epoch: 0,
            });
        }
        // Ring full: floor is 1, so an equal-or-faster offer is skipped.
        rec.offer(FlightEntry {
            latency_ns: 1,
            ..FlightEntry::default()
        });
        // A slower one evicts the fastest.
        rec.offer(FlightEntry {
            class: 1,
            heard: 7,
            latency_ns: 1_000,
            epoch: 3,
        });
        let mut out = [FlightEntry::default(); FLIGHT_SLOTS];
        let n = rec.copy_into(&mut out);
        assert_eq!(n, FLIGHT_SLOTS);
        assert_eq!(out[0].latency_ns, 1_000, "sorted slowest-first");
        assert_eq!(out[0].heard, 7);
        assert_eq!(out[0].epoch, 3);
        assert!(
            out[..n].iter().all(|e| e.latency_ns >= 2),
            "latency-1 entry was evicted: {:?}",
            &out[..n]
        );
        assert!(out.windows(2).all(|w| w[0].latency_ns >= w[1].latency_ns));
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn flight_recorder_partial_ring_keeps_everything() {
        let rec = FlightRecorder::new();
        rec.offer(FlightEntry {
            latency_ns: 5,
            ..FlightEntry::default()
        });
        rec.offer(FlightEntry {
            latency_ns: 3,
            ..FlightEntry::default()
        });
        let mut out = [FlightEntry::default(); FLIGHT_SLOTS];
        let n = rec.copy_into(&mut out);
        assert_eq!(n, 2);
        assert_eq!(out[0].latency_ns, 5);
        assert_eq!(out[1].latency_ns, 3);
    }
}
