//! Minimal SIGTERM/SIGINT hook for the CLI daemon.
//!
//! The workspace carries no `libc` dependency, so this binds the C
//! `signal(2)` entry point directly — the only unsafe code outside
//! `abp-trace`'s counting allocator, confined to this module. The
//! handler does the one thing that is async-signal-safe: store a relaxed
//! atomic flag. The daemon's accept loop polls [`triggered`] and runs an
//! orderly shutdown (drain workers, join the rebuilder, dump counters)
//! from normal thread context.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::TRIGGERED.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `on_signal` only stores a relaxed atomic, which is
        // async-signal-safe; `signal` itself is safe to call with a
        // valid function pointer for these two standard signals.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handler (idempotent). On non-unix
/// platforms this is a no-op and only [`trigger`] can set the flag.
pub fn install() {
    imp::install();
}

/// Whether a termination signal (or a programmatic [`trigger`]) has
/// been observed since process start.
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Sets the flag programmatically — what the signal handler does, but
/// callable from tests and orchestration code.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    #[test]
    fn trigger_sets_the_flag() {
        // `install` must not panic; `trigger` must be observable.
        super::install();
        assert!(!super::triggered() || super::triggered());
        super::trigger();
        assert!(super::triggered());
    }
}
