//! The wire protocol: length-prefixed little-endian frames over TCP.
//!
//! Every message — request or response — is one *frame*: a `u32`
//! little-endian payload length followed by that many payload bytes.
//! Frames are capped at [`MAX_FRAME`] bytes; a peer announcing more is
//! answered with [`Status::Oversize`] and disconnected (the stream cannot
//! be resynchronized past an unread oversized payload).
//!
//! # Requests
//!
//! The first payload byte is the opcode:
//!
//! | opcode | request | body |
//! |--------|----------|------|
//! | `1` | localize | `u32` count, then count × `u64` heard beacon ids |
//! | `2` | place | `u8` algorithm ([`PlaceAlgo`]), `u64` seed, `u8` apply flag |
//! | `3` | info | empty |
//! | `4` | stats | empty |
//!
//! **Forward compatibility:** a frame whose opcode the server does not
//! recognize is answered with [`Status::BadOpcode`] — after the server
//! has consumed the *entire* declared payload. The length prefix, not
//! the opcode, delimits frames, so a pipelined stream stays in sync
//! across unknown opcodes and the connection survives (the daemon test
//! `unknown_opcode_consumes_its_payload_and_keeps_the_stream_synced`
//! pins this).
//!
//! # Responses
//!
//! The first payload byte is a [`Status`]; error responses are that
//! single byte. Success bodies are fixed-layout (localize/place) or
//! length-driven (info):
//!
//! * localize: `u64` epoch, `u8` flags ([`FLAG_ESTIMATE`] /
//!   [`FLAG_DEGRADED`] / [`FLAG_CONFIDENCE`]), `u32` heard count,
//!   `f64` x, `f64` y, `f64` confidence (fields not covered by a set
//!   flag are encoded as zero),
//! * place: `u64` epoch, `u8` algorithm, `u8` applied flag, `f64` x,
//!   `f64` y,
//! * info: `u64` epoch, `f64` terrain side, `f64` nominal range,
//!   `u32` beacon count, then count × (`u64` id, `f64` x, `f64` y) in
//!   insertion (slot) order — the order every localizer accumulates in,
//!   so a client can reproduce served centroids bit-for-bit,
//! * stats: fourteen `u64` header fields (epoch, uptime ns, connections
//!   total/live, rebuilds pending/total, last rebuild ns, flight
//!   drops, shed, deadline-exceeded, panics, quarantines, state
//!   saves/loads), then a `u8` class count of per-opcode-class blocks (`u64`
//!   count/sum/min/max ns, `u8` bucket count, then that many `u64`
//!   log₂-bucket counts — the [`abp_trace::HistogramSnapshot`] layout),
//!   then a `u8` flight-entry count of slow-request records (`u8`
//!   class, `u32` heard, `u64` latency ns, `u64` epoch), slowest first.
//!   Classes arrive in [`crate::metrics::ALL_CLASSES`] index order.
//!
//! All integers and floats are little-endian; floats travel as their
//! IEEE-754 bit patterns, so estimates survive the wire bit-identically.
//!
//! # Hostile-input hardening
//!
//! Every decode path treats its input as adversarial: announced element
//! counts (localize ids, info roster entries, stats buckets/flight
//! entries) are validated against the bytes actually present **before**
//! any allocation or element loop, so a 12-byte frame announcing
//! `u32::MAX` ids costs O(1) to reject. Combined with the [`MAX_FRAME`]
//! cap enforced by [`read_frame`] and the server's header check, no
//! frame — however malformed — can drive unbounded allocation, and the
//! proptest suite pins that no codec ever panics on arbitrary bytes.
//!
//! The encode helpers write a complete frame (prefix included) into a
//! caller-owned buffer and the decode helpers read from caller-owned
//! slices, so a connection loop that reuses its buffers allocates
//! nothing per request.

use abp_geom::Point;
use std::io::{self, Read};

/// Maximum frame payload size (1 MiB) — comfortably above the largest
/// legitimate message (an info response for tens of thousands of
/// beacons) while bounding per-connection buffer growth.
pub const MAX_FRAME: u32 = 1 << 20;

/// Localize response flag: an estimate is present (`x`/`y` meaningful).
pub const FLAG_ESTIMATE: u8 = 1;
/// Localize response flag: fewer beacons were heard than the estimator's
/// full method needs; the estimate is the degraded fallback.
pub const FLAG_DEGRADED: u8 = 2;
/// Localize response flag: a confidence value is present — the surveyed
/// localization error (meters) at the lattice point nearest the estimate.
pub const FLAG_CONFIDENCE: u8 = 4;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Heard-beacon ids → position estimate.
    Localize = 1,
    /// Error map → next-beacon suggestion.
    Place = 2,
    /// Epoch, terrain, beacon roster.
    Info = 3,
    /// Live telemetry snapshot: per-opcode counters/histograms, gauges,
    /// and the slow-request flight recorder.
    Stats = 4,
}

impl Opcode {
    /// Decodes the wire tag. Used by the daemon's admission control to
    /// classify a request from its first byte without decoding the
    /// frame.
    pub fn from_wire(tag: u8) -> Option<Opcode> {
        match tag {
            1 => Some(Opcode::Localize),
            2 => Some(Opcode::Place),
            3 => Some(Opcode::Info),
            4 => Some(Opcode::Stats),
            _ => None,
        }
    }
}

/// Placement algorithm selector for place requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PlaceAlgo {
    /// The paper's Random baseline (uses the request's seed).
    Random = 0,
    /// The paper's Max algorithm (deterministic; seed ignored).
    Max = 1,
    /// The paper's Grid algorithm (deterministic; seed ignored).
    Grid = 2,
}

impl PlaceAlgo {
    /// Decodes the wire tag.
    pub fn from_wire(tag: u8) -> Option<PlaceAlgo> {
        match tag {
            0 => Some(PlaceAlgo::Random),
            1 => Some(PlaceAlgo::Max),
            2 => Some(PlaceAlgo::Grid),
            _ => None,
        }
    }

    /// The algorithm's report name, matching
    /// `abp_placement::PlacementAlgorithm::name`.
    pub fn name(self) -> &'static str {
        match self {
            PlaceAlgo::Random => "random",
            PlaceAlgo::Max => "max",
            PlaceAlgo::Grid => "grid",
        }
    }
}

/// Response status codes; `Ok` is followed by an opcode-specific body,
/// everything else is a single-byte error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success.
    Ok = 0,
    /// The payload was truncated or malformed for its opcode.
    BadFrame = 1,
    /// Unknown opcode byte.
    BadOpcode = 2,
    /// A localize request named a beacon id not in the current epoch.
    UnknownBeacon = 3,
    /// A place request named an unknown algorithm tag.
    BadAlgo = 4,
    /// The announced frame length exceeds [`MAX_FRAME`].
    Oversize = 5,
    /// The daemon is at capacity and shed this connection or request
    /// instead of queueing it unboundedly. Retry later.
    Overloaded = 6,
    /// The request's handling exceeded the daemon's per-request deadline;
    /// any result was discarded.
    DeadlineExceeded = 7,
}

impl Status {
    /// Decodes the wire tag.
    pub fn from_wire(tag: u8) -> Option<Status> {
        match tag {
            0 => Some(Status::Ok),
            1 => Some(Status::BadFrame),
            2 => Some(Status::BadOpcode),
            3 => Some(Status::UnknownBeacon),
            4 => Some(Status::BadAlgo),
            5 => Some(Status::Oversize),
            6 => Some(Status::Overloaded),
            7 => Some(Status::DeadlineExceeded),
            _ => None,
        }
    }
}

/// A decoded request. Localize ids are returned through the caller's
/// scratch vector (see [`decode_request`]) so decoding allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Localize from the heard ids now in the scratch vector.
    Localize,
    /// Propose (and optionally apply) the next beacon position.
    Place {
        /// Which placement algorithm to run.
        algo: PlaceAlgo,
        /// Seed for randomized algorithms.
        seed: u64,
        /// Whether to enqueue the proposal for deployment + re-survey.
        apply: bool,
    },
    /// Describe the current world snapshot.
    Info,
    /// Report live telemetry.
    Stats,
}

// ---------------------------------------------------------------------
// Little-endian cursor helpers over caller-owned storage.
// ---------------------------------------------------------------------

struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Some(head)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
    fn done(&self) -> bool {
        self.0.is_empty()
    }
    fn remaining(&self) -> usize {
        self.0.len()
    }
}

/// Validates an announced element count against the bytes actually left
/// in the payload **before** any allocation or element loop runs. A
/// hostile peer announcing `u32::MAX` ids backed by a 12-byte payload is
/// rejected in O(1) instead of driving a huge reserve/push loop.
fn count_fits(count: u32, elem_bytes: usize, cur: &Cursor<'_>) -> bool {
    (count as u64) * (elem_bytes as u64) <= cur.remaining() as u64
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Begins a frame: clears `out`, reserves the length prefix.
fn begin_frame(out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
}

/// Finishes a frame: patches the length prefix over the payload written
/// since [`begin_frame`].
fn end_frame(out: &mut [u8]) {
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
}

// ---------------------------------------------------------------------
// Server-side decode.
// ---------------------------------------------------------------------

/// Decodes a request payload. Localize ids are appended to `ids` (which
/// is cleared first), so a reused vector makes decoding allocation-free.
///
/// # Errors
///
/// Returns the [`Status`] the server should answer with: `BadOpcode` for
/// an unknown opcode byte, `BadAlgo` for an unknown placement tag, and
/// `BadFrame` for anything truncated, trailing, or empty.
pub fn decode_request(payload: &[u8], ids: &mut Vec<u64>) -> Result<Request, Status> {
    let mut cur = Cursor(payload);
    let opcode = cur.u8().ok_or(Status::BadFrame)?;
    match opcode {
        1 => {
            let count = cur.u32().ok_or(Status::BadFrame)?;
            if !count_fits(count, 8, &cur) {
                return Err(Status::BadFrame);
            }
            ids.clear();
            for _ in 0..count {
                ids.push(cur.u64().ok_or(Status::BadFrame)?);
            }
            if !cur.done() {
                return Err(Status::BadFrame);
            }
            Ok(Request::Localize)
        }
        2 => {
            let algo_tag = cur.u8().ok_or(Status::BadFrame)?;
            let seed = cur.u64().ok_or(Status::BadFrame)?;
            let apply = cur.u8().ok_or(Status::BadFrame)?;
            if !cur.done() {
                return Err(Status::BadFrame);
            }
            let algo = PlaceAlgo::from_wire(algo_tag).ok_or(Status::BadAlgo)?;
            Ok(Request::Place {
                algo,
                seed,
                apply: apply != 0,
            })
        }
        3 => {
            if !cur.done() {
                return Err(Status::BadFrame);
            }
            Ok(Request::Info)
        }
        4 => {
            if !cur.done() {
                return Err(Status::BadFrame);
            }
            Ok(Request::Stats)
        }
        // Unknown opcode: the caller has already consumed the declared
        // payload (frames are length-delimited), so answering BadOpcode
        // leaves the stream in sync — any trailing body bytes here are
        // the unknown request's, not garbage.
        _ => Err(Status::BadOpcode),
    }
}

// ---------------------------------------------------------------------
// Client-side encode (requests).
// ---------------------------------------------------------------------

/// Encodes a localize request frame into `out` (cleared first).
pub fn encode_localize_request(out: &mut Vec<u8>, ids: &[u64]) {
    begin_frame(out);
    out.push(Opcode::Localize as u8);
    put_u32(out, ids.len() as u32);
    for &id in ids {
        put_u64(out, id);
    }
    end_frame(out);
}

/// Encodes a place request frame into `out` (cleared first).
pub fn encode_place_request(out: &mut Vec<u8>, algo: PlaceAlgo, seed: u64, apply: bool) {
    begin_frame(out);
    out.push(Opcode::Place as u8);
    out.push(algo as u8);
    put_u64(out, seed);
    out.push(apply as u8);
    end_frame(out);
}

/// Encodes an info request frame into `out` (cleared first).
pub fn encode_info_request(out: &mut Vec<u8>) {
    begin_frame(out);
    out.push(Opcode::Info as u8);
    end_frame(out);
}

/// Encodes a stats request frame into `out` (cleared first).
pub fn encode_stats_request(out: &mut Vec<u8>) {
    begin_frame(out);
    out.push(Opcode::Stats as u8);
    end_frame(out);
}

// ---------------------------------------------------------------------
// Server-side encode (responses).
// ---------------------------------------------------------------------

/// A localize result as it travels the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalizeReply {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Position estimate, absent under the `Exclude` unheard policy.
    pub estimate: Option<Point>,
    /// How many distinct heard beacons the estimate used.
    pub heard: u32,
    /// Whether the estimator fell below its full-method beacon minimum.
    pub degraded: bool,
    /// Surveyed localization error near the estimate, if measured.
    pub confidence: Option<f64>,
}

/// Encodes a successful localize response frame into `out`.
pub fn encode_localize_response(out: &mut Vec<u8>, reply: &LocalizeReply) {
    begin_frame(out);
    out.push(Status::Ok as u8);
    put_u64(out, reply.epoch);
    let mut flags = 0u8;
    if reply.estimate.is_some() {
        flags |= FLAG_ESTIMATE;
    }
    if reply.degraded {
        flags |= FLAG_DEGRADED;
    }
    if reply.confidence.is_some() {
        flags |= FLAG_CONFIDENCE;
    }
    out.push(flags);
    put_u32(out, reply.heard);
    let p = reply.estimate.unwrap_or(Point::ORIGIN);
    put_f64(out, p.x);
    put_f64(out, p.y);
    put_f64(out, reply.confidence.unwrap_or(0.0));
    end_frame(out);
}

/// A place result as it travels the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceReply {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// The algorithm that produced the proposal.
    pub algo: PlaceAlgo,
    /// Whether the proposal was enqueued for deployment.
    pub applied: bool,
    /// The proposed beacon position.
    pub position: Point,
}

/// Encodes a successful place response frame into `out`.
pub fn encode_place_response(out: &mut Vec<u8>, reply: &PlaceReply) {
    begin_frame(out);
    out.push(Status::Ok as u8);
    put_u64(out, reply.epoch);
    out.push(reply.algo as u8);
    out.push(reply.applied as u8);
    put_f64(out, reply.position.x);
    put_f64(out, reply.position.y);
    end_frame(out);
}

/// Encodes a successful info response frame into `out`. `beacons` must
/// yield `(id, position)` in insertion (slot) order.
pub fn encode_info_response<I>(
    out: &mut Vec<u8>,
    epoch: u64,
    terrain_side: f64,
    nominal_range: f64,
    count: u32,
    beacons: I,
) where
    I: IntoIterator<Item = (u64, Point)>,
{
    begin_frame(out);
    out.push(Status::Ok as u8);
    put_u64(out, epoch);
    put_f64(out, terrain_side);
    put_f64(out, nominal_range);
    put_u32(out, count);
    for (id, pos) in beacons {
        put_u64(out, id);
        put_f64(out, pos.x);
        put_f64(out, pos.y);
    }
    end_frame(out);
}

/// Everything a stats response is encoded from, borrowed from the
/// daemon: the live [`ServeMetrics`](crate::metrics::ServeMetrics)
/// block plus the few fields only the daemon knows.
///
/// Encoding walks the instruments' atomics directly
/// ([`abp_trace::RawHistogram::bucket`]), so building a response
/// allocates nothing beyond (warmed) output-buffer growth — the Stats
/// opcode rides the same zero-alloc request path as every other opcode.
pub struct StatsView<'a> {
    /// The currently published epoch.
    pub epoch: u64,
    /// Connections accepted since start.
    pub connections_total: u64,
    /// The daemon's telemetry block.
    pub metrics: &'a crate::metrics::ServeMetrics,
    /// Flight-recorder entries to ship, slowest first (from
    /// [`FlightRecorder::copy_into`](crate::metrics::FlightRecorder::copy_into)).
    pub flight: &'a [crate::metrics::FlightEntry],
}

/// Encodes a successful stats response frame into `out`.
pub fn encode_stats_response(out: &mut Vec<u8>, view: &StatsView<'_>) {
    let m = view.metrics;
    begin_frame(out);
    out.push(Status::Ok as u8);
    put_u64(out, view.epoch);
    let uptime = u64::try_from(m.uptime().as_nanos()).unwrap_or(u64::MAX);
    put_u64(out, uptime);
    put_u64(out, view.connections_total);
    put_u64(out, m.connections_live());
    put_u64(out, m.rebuilds_pending());
    put_u64(out, m.rebuilds_total());
    put_u64(out, m.last_rebuild_ns());
    put_u64(out, m.flight.dropped());
    put_u64(out, m.shed());
    put_u64(out, m.deadline_exceeded());
    put_u64(out, m.panics());
    put_u64(out, m.quarantines());
    put_u64(out, m.state_saves());
    put_u64(out, m.state_loads());
    out.push(crate::metrics::OP_CLASSES as u8);
    for &class in &crate::metrics::ALL_CLASSES {
        let hist = m.class_histogram(class);
        put_u64(out, m.class_count(class));
        put_u64(out, hist.sum_ns());
        put_u64(out, hist.min_ns());
        put_u64(out, hist.max_ns());
        out.push(abp_trace::HIST_BUCKETS as u8);
        for b in 0..abp_trace::HIST_BUCKETS {
            put_u64(out, hist.bucket(b));
        }
    }
    out.push(view.flight.len().min(u8::MAX as usize) as u8);
    for e in view.flight.iter().take(u8::MAX as usize) {
        out.push(e.class);
        put_u32(out, e.heard);
        put_u64(out, e.latency_ns);
        put_u64(out, e.epoch);
    }
    end_frame(out);
}

/// Encodes a single-byte error response frame into `out`.
pub fn encode_error_response(out: &mut Vec<u8>, status: Status) {
    begin_frame(out);
    out.push(status as u8);
    end_frame(out);
}

// ---------------------------------------------------------------------
// Client-side decode (responses).
// ---------------------------------------------------------------------

/// A decoded info response.
#[derive(Debug, Clone, PartialEq)]
pub struct InfoReply {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Terrain side length (square terrain).
    pub terrain_side: f64,
    /// The propagation model's nominal range `R`.
    pub nominal_range: f64,
    /// `(id, position)` per beacon, in insertion (slot) order.
    pub beacons: Vec<(u64, Point)>,
}

fn expect_ok(cur: &mut Cursor<'_>) -> Result<(), Status> {
    match cur.u8().and_then(Status::from_wire) {
        Some(Status::Ok) => Ok(()),
        Some(err) => Err(err),
        None => Err(Status::BadFrame),
    }
}

/// Decodes a localize response payload.
///
/// # Errors
///
/// Returns the server's error [`Status`], or [`Status::BadFrame`] if the
/// payload itself is malformed.
pub fn decode_localize_response(payload: &[u8]) -> Result<LocalizeReply, Status> {
    let mut cur = Cursor(payload);
    expect_ok(&mut cur)?;
    let epoch = cur.u64().ok_or(Status::BadFrame)?;
    let flags = cur.u8().ok_or(Status::BadFrame)?;
    let heard = cur.u32().ok_or(Status::BadFrame)?;
    let x = cur.f64().ok_or(Status::BadFrame)?;
    let y = cur.f64().ok_or(Status::BadFrame)?;
    let confidence = cur.f64().ok_or(Status::BadFrame)?;
    if !cur.done() {
        return Err(Status::BadFrame);
    }
    Ok(LocalizeReply {
        epoch,
        estimate: (flags & FLAG_ESTIMATE != 0).then_some(Point::new(x, y)),
        heard,
        degraded: flags & FLAG_DEGRADED != 0,
        confidence: (flags & FLAG_CONFIDENCE != 0).then_some(confidence),
    })
}

/// Decodes a place response payload (errors as in
/// [`decode_localize_response`]).
pub fn decode_place_response(payload: &[u8]) -> Result<PlaceReply, Status> {
    let mut cur = Cursor(payload);
    expect_ok(&mut cur)?;
    let epoch = cur.u64().ok_or(Status::BadFrame)?;
    let algo = cur
        .u8()
        .and_then(PlaceAlgo::from_wire)
        .ok_or(Status::BadFrame)?;
    let applied = cur.u8().ok_or(Status::BadFrame)? != 0;
    let x = cur.f64().ok_or(Status::BadFrame)?;
    let y = cur.f64().ok_or(Status::BadFrame)?;
    if !cur.done() {
        return Err(Status::BadFrame);
    }
    Ok(PlaceReply {
        epoch,
        algo,
        applied,
        position: Point::new(x, y),
    })
}

/// Decodes an info response payload (errors as in
/// [`decode_localize_response`]).
pub fn decode_info_response(payload: &[u8]) -> Result<InfoReply, Status> {
    let mut cur = Cursor(payload);
    expect_ok(&mut cur)?;
    let epoch = cur.u64().ok_or(Status::BadFrame)?;
    let terrain_side = cur.f64().ok_or(Status::BadFrame)?;
    let nominal_range = cur.f64().ok_or(Status::BadFrame)?;
    let count = cur.u32().ok_or(Status::BadFrame)?;
    if !count_fits(count, 24, &cur) {
        return Err(Status::BadFrame);
    }
    let mut beacons = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let id = cur.u64().ok_or(Status::BadFrame)?;
        let x = cur.f64().ok_or(Status::BadFrame)?;
        let y = cur.f64().ok_or(Status::BadFrame)?;
        beacons.push((id, Point::new(x, y)));
    }
    if !cur.done() {
        return Err(Status::BadFrame);
    }
    Ok(InfoReply {
        epoch,
        terrain_side,
        nominal_range,
        beacons,
    })
}

/// One opcode class's telemetry as decoded from a stats response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpClassStats {
    /// Requests served in this class.
    pub count: u64,
    /// Sum of handler latencies, nanoseconds.
    pub sum_ns: u64,
    /// Exact fastest request, nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Exact slowest request, nanoseconds (0 when empty).
    pub max_ns: u64,
    /// Log₂ latency buckets (bucket `b` covers `(2^(b-1), 2^b]` ns).
    pub buckets: Vec<u64>,
}

impl OpClassStats {
    /// Rehydrates the class as an [`abp_trace::HistogramSnapshot`] so
    /// the snapshot-diff and quantile machinery applies to wire data.
    pub fn histogram(&self, name: &'static str) -> abp_trace::HistogramSnapshot {
        abp_trace::HistogramSnapshot {
            name,
            count: self.count,
            sum_ns: self.sum_ns,
            min_ns: self.min_ns,
            max_ns: self.max_ns,
            buckets: self.buckets.clone(),
        }
    }
}

/// A decoded stats response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReply {
    /// The currently published epoch.
    pub epoch: u64,
    /// Daemon uptime, nanoseconds.
    pub uptime_ns: u64,
    /// Connections accepted since start.
    pub connections_total: u64,
    /// Connections currently being served.
    pub connections_live: u64,
    /// Applies enqueued but not yet rebuilt.
    pub rebuilds_pending: u64,
    /// Rebuilds completed since start.
    pub rebuilds_total: u64,
    /// Duration of the most recent rebuild, nanoseconds (0 before the
    /// first).
    pub last_rebuild_ns: u64,
    /// Flight-recorder offers dropped to lock contention.
    pub flight_dropped: u64,
    /// Connections/requests shed by admission control ([`Status::Overloaded`]).
    pub shed: u64,
    /// Requests whose handling blew the per-request deadline
    /// ([`Status::DeadlineExceeded`]).
    pub deadline_exceeded: u64,
    /// Requests whose handler panicked (connection killed, worker kept).
    pub panics: u64,
    /// Connections quarantined for dribbling a frame slower than the
    /// daemon's frame window.
    pub quarantines: u64,
    /// World-state snapshots persisted to the `--state` file.
    pub state_saves: u64,
    /// World-state snapshots restored from the `--state` file at boot.
    pub state_loads: u64,
    /// Per-class telemetry, indexed like
    /// [`crate::metrics::ALL_CLASSES`].
    pub classes: Vec<OpClassStats>,
    /// Slowest retained requests, slowest first.
    pub flight: Vec<crate::metrics::FlightEntry>,
}

impl StatsReply {
    /// Requests served across all classes.
    pub fn requests_total(&self) -> u64 {
        self.classes.iter().map(|c| c.count).sum()
    }
}

/// Decodes a stats response payload (errors as in
/// [`decode_localize_response`]).
pub fn decode_stats_response(payload: &[u8]) -> Result<StatsReply, Status> {
    let mut cur = Cursor(payload);
    expect_ok(&mut cur)?;
    let epoch = cur.u64().ok_or(Status::BadFrame)?;
    let uptime_ns = cur.u64().ok_or(Status::BadFrame)?;
    let connections_total = cur.u64().ok_or(Status::BadFrame)?;
    let connections_live = cur.u64().ok_or(Status::BadFrame)?;
    let rebuilds_pending = cur.u64().ok_or(Status::BadFrame)?;
    let rebuilds_total = cur.u64().ok_or(Status::BadFrame)?;
    let last_rebuild_ns = cur.u64().ok_or(Status::BadFrame)?;
    let flight_dropped = cur.u64().ok_or(Status::BadFrame)?;
    let shed = cur.u64().ok_or(Status::BadFrame)?;
    let deadline_exceeded = cur.u64().ok_or(Status::BadFrame)?;
    let panics = cur.u64().ok_or(Status::BadFrame)?;
    let quarantines = cur.u64().ok_or(Status::BadFrame)?;
    let state_saves = cur.u64().ok_or(Status::BadFrame)?;
    let state_loads = cur.u64().ok_or(Status::BadFrame)?;
    let class_count = cur.u8().ok_or(Status::BadFrame)?;
    let mut classes = Vec::with_capacity(class_count as usize);
    for _ in 0..class_count {
        let count = cur.u64().ok_or(Status::BadFrame)?;
        let sum_ns = cur.u64().ok_or(Status::BadFrame)?;
        let min_ns = cur.u64().ok_or(Status::BadFrame)?;
        let max_ns = cur.u64().ok_or(Status::BadFrame)?;
        let bucket_count = cur.u8().ok_or(Status::BadFrame)?;
        if !count_fits(bucket_count as u32, 8, &cur) {
            return Err(Status::BadFrame);
        }
        let mut buckets = Vec::with_capacity(bucket_count as usize);
        for _ in 0..bucket_count {
            buckets.push(cur.u64().ok_or(Status::BadFrame)?);
        }
        classes.push(OpClassStats {
            count,
            sum_ns,
            min_ns,
            max_ns,
            buckets,
        });
    }
    let flight_len = cur.u8().ok_or(Status::BadFrame)?;
    if !count_fits(flight_len as u32, 21, &cur) {
        return Err(Status::BadFrame);
    }
    let mut flight = Vec::with_capacity(flight_len as usize);
    for _ in 0..flight_len {
        let class = cur.u8().ok_or(Status::BadFrame)?;
        let heard = cur.u32().ok_or(Status::BadFrame)?;
        let latency_ns = cur.u64().ok_or(Status::BadFrame)?;
        let entry_epoch = cur.u64().ok_or(Status::BadFrame)?;
        flight.push(crate::metrics::FlightEntry {
            class,
            heard,
            latency_ns,
            epoch: entry_epoch,
        });
    }
    if !cur.done() {
        return Err(Status::BadFrame);
    }
    Ok(StatsReply {
        epoch,
        uptime_ns,
        connections_total,
        connections_live,
        rebuilds_pending,
        rebuilds_total,
        last_rebuild_ns,
        flight_dropped,
        shed,
        deadline_exceeded,
        panics,
        quarantines,
        state_saves,
        state_loads,
        classes,
        flight,
    })
}

// ---------------------------------------------------------------------
// Blocking frame reader (client side).
// ---------------------------------------------------------------------

/// Reads one complete frame payload into `buf` (cleared and resized),
/// blocking until it arrives. Returns `false` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Propagates socket errors; EOF mid-frame and oversize announcements
/// surface as [`io::ErrorKind::UnexpectedEof`] /
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame<R: Read>(stream: &mut R, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = stream.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(false);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside frame header",
            ));
        }
        got += n;
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    stream.read_exact(buf)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(frame: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(frame.len(), 4 + len, "prefix must cover the payload");
        &frame[4..]
    }

    #[test]
    fn localize_request_roundtrip() {
        let mut out = Vec::new();
        let mut ids = Vec::new();
        encode_localize_request(&mut out, &[7, 3, 3, 99]);
        let req = decode_request(payload(&out), &mut ids).unwrap();
        assert_eq!(req, Request::Localize);
        assert_eq!(ids, vec![7, 3, 3, 99]);

        encode_localize_request(&mut out, &[]);
        assert_eq!(
            decode_request(payload(&out), &mut ids).unwrap(),
            Request::Localize
        );
        assert!(ids.is_empty());
    }

    #[test]
    fn place_and_info_request_roundtrip() {
        let mut out = Vec::new();
        let mut ids = Vec::new();
        for (algo, apply) in [
            (PlaceAlgo::Random, false),
            (PlaceAlgo::Max, true),
            (PlaceAlgo::Grid, false),
        ] {
            encode_place_request(&mut out, algo, 0xDEAD_BEEF, apply);
            assert_eq!(
                decode_request(payload(&out), &mut ids).unwrap(),
                Request::Place {
                    algo,
                    seed: 0xDEAD_BEEF,
                    apply
                }
            );
        }
        encode_info_request(&mut out);
        assert_eq!(
            decode_request(payload(&out), &mut ids).unwrap(),
            Request::Info
        );
        encode_stats_request(&mut out);
        assert_eq!(
            decode_request(payload(&out), &mut ids).unwrap(),
            Request::Stats
        );
    }

    #[test]
    fn unknown_opcode_wins_over_body_shape() {
        // Forward compatibility: a future opcode with a body the current
        // server cannot parse must still be classified BadOpcode — the
        // body belongs to the unknown request and is not frame garbage.
        let mut ids = Vec::new();
        assert_eq!(
            decode_request(&[200, 1, 2, 3, 4, 5], &mut ids),
            Err(Status::BadOpcode)
        );
        assert_eq!(decode_request(&[42], &mut ids), Err(Status::BadOpcode));
    }

    #[test]
    fn stats_response_roundtrip() {
        use crate::metrics::{FlightEntry, OpClass, ServeMetrics, ALL_CLASSES};
        let metrics = ServeMetrics::new();
        metrics.record(OpClass::Localize, 1_000);
        metrics.record(OpClass::Localize, 3_000);
        metrics.record(OpClass::Place, 10_000);
        metrics.record(OpClass::Error, 100);
        metrics.connection_opened();
        metrics.rebuild_enqueued();
        metrics.note_shed();
        metrics.note_shed();
        metrics.note_deadline_exceeded();
        metrics.note_panic();
        metrics.note_quarantine();
        metrics.note_state_save();
        metrics.note_state_load();
        let flight = [
            FlightEntry {
                class: OpClass::Place as u8,
                heard: 0,
                latency_ns: 10_000,
                epoch: 2,
            },
            FlightEntry {
                class: OpClass::Localize as u8,
                heard: 5,
                latency_ns: 3_000,
                epoch: 2,
            },
        ];
        let mut out = Vec::new();
        encode_stats_response(
            &mut out,
            &StatsView {
                epoch: 2,
                connections_total: 9,
                metrics: &metrics,
                flight: &flight,
            },
        );
        let reply = decode_stats_response(payload(&out)).unwrap();
        assert_eq!(reply.epoch, 2);
        assert_eq!(reply.connections_total, 9);
        assert_eq!(reply.connections_live, 1);
        assert_eq!(reply.rebuilds_pending, 1);
        assert_eq!(reply.rebuilds_total, 0);
        assert_eq!(reply.flight_dropped, 0);
        assert_eq!(reply.shed, 2);
        assert_eq!(reply.deadline_exceeded, 1);
        assert_eq!(reply.panics, 1);
        assert_eq!(reply.quarantines, 1);
        assert_eq!(reply.state_saves, 1);
        assert_eq!(reply.state_loads, 1);
        assert_eq!(reply.classes.len(), ALL_CLASSES.len());
        let loc = &reply.classes[OpClass::Localize as usize];
        assert_eq!(loc.count, 2);
        assert_eq!(loc.sum_ns, 4_000);
        assert_eq!(loc.min_ns, 1_000);
        assert_eq!(loc.max_ns, 3_000);
        assert_eq!(loc.buckets.len(), abp_trace::HIST_BUCKETS);
        assert_eq!(loc.buckets.iter().sum::<u64>(), 2);
        assert_eq!(reply.classes[OpClass::Info as usize].count, 0);
        assert_eq!(reply.requests_total(), 4);
        assert_eq!(reply.flight, flight.to_vec());
        // The rehydrated histogram carries the wire data verbatim.
        let hist = loc.histogram("serve_localize_ns");
        assert_eq!(hist.count, 2);
        assert_eq!(hist.max_ns, 3_000);
    }

    #[test]
    fn malformed_requests_map_to_statuses() {
        let mut ids = Vec::new();
        assert_eq!(decode_request(&[], &mut ids), Err(Status::BadFrame));
        assert_eq!(decode_request(&[42], &mut ids), Err(Status::BadOpcode));
        // Localize announcing 2 ids but carrying 1.
        let mut out = Vec::new();
        encode_localize_request(&mut out, &[1, 2]);
        let p = payload(&out);
        assert_eq!(
            decode_request(&p[..p.len() - 8], &mut ids),
            Err(Status::BadFrame)
        );
        // Trailing garbage.
        let mut with_trailer = p.to_vec();
        with_trailer.push(0);
        assert_eq!(
            decode_request(&with_trailer, &mut ids),
            Err(Status::BadFrame)
        );
        // Unknown placement algorithm tag.
        encode_place_request(&mut out, PlaceAlgo::Grid, 1, false);
        let mut bad_algo = payload(&out).to_vec();
        bad_algo[1] = 9;
        assert_eq!(decode_request(&bad_algo, &mut ids), Err(Status::BadAlgo));
    }

    #[test]
    fn absurd_count_prefixes_are_rejected_before_allocation() {
        let mut ids = Vec::new();
        // Localize announcing u32::MAX ids backed by 8 payload bytes:
        // rejected up front, no reserve/push loop runs.
        let mut bad = vec![Opcode::Localize as u8];
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.extend_from_slice(&[0u8; 8]);
        assert_eq!(decode_request(&bad, &mut ids), Err(Status::BadFrame));
        assert!(
            ids.capacity() < 1024,
            "decode must not reserve for an absurd announced count"
        );
        // Info response announcing a giant roster with no bytes behind it.
        let mut info = vec![Status::Ok as u8];
        info.extend_from_slice(&0u64.to_le_bytes());
        info.extend_from_slice(&100.0f64.to_bits().to_le_bytes());
        info.extend_from_slice(&15.0f64.to_bits().to_le_bytes());
        info.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_info_response(&info), Err(Status::BadFrame));
        // Stats response whose flight count byte lies about what follows.
        let metrics = crate::metrics::ServeMetrics::new();
        let mut out = Vec::new();
        encode_stats_response(
            &mut out,
            &StatsView {
                epoch: 0,
                connections_total: 0,
                metrics: &metrics,
                flight: &[],
            },
        );
        let mut lying = payload(&out).to_vec();
        *lying.last_mut().unwrap() = 255; // flight count with zero bytes behind it
        assert_eq!(decode_stats_response(&lying), Err(Status::BadFrame));
    }

    #[test]
    fn resilience_statuses_roundtrip_the_wire() {
        for status in [Status::Overloaded, Status::DeadlineExceeded] {
            assert_eq!(Status::from_wire(status as u8), Some(status));
            let mut out = Vec::new();
            encode_error_response(&mut out, status);
            assert_eq!(payload(&out), &[status as u8]);
            assert_eq!(decode_localize_response(payload(&out)), Err(status));
        }
        assert_eq!(Status::from_wire(8), None);
    }

    #[test]
    fn localize_response_roundtrip_bitwise() {
        let mut out = Vec::new();
        let reply = LocalizeReply {
            epoch: 41,
            estimate: Some(Point::new(145.0 / 3.0, 0.1 + 0.2)),
            heard: 3,
            degraded: false,
            confidence: Some(2.75),
        };
        encode_localize_response(&mut out, &reply);
        let back = decode_localize_response(payload(&out)).unwrap();
        assert_eq!(back.epoch, 41);
        assert_eq!(back.heard, 3);
        // Estimates must survive the wire bit-for-bit.
        assert_eq!(
            back.estimate.unwrap().x.to_bits(),
            reply.estimate.unwrap().x.to_bits()
        );
        assert_eq!(
            back.estimate.unwrap().y.to_bits(),
            reply.estimate.unwrap().y.to_bits()
        );
        assert_eq!(back.confidence, Some(2.75));

        // No-estimate (Exclude policy) and degraded shapes.
        let none = LocalizeReply {
            epoch: 0,
            estimate: None,
            heard: 0,
            degraded: true,
            confidence: None,
        };
        encode_localize_response(&mut out, &none);
        let back = decode_localize_response(payload(&out)).unwrap();
        assert_eq!(back.estimate, None);
        assert!(back.degraded);
        assert_eq!(back.confidence, None);
    }

    #[test]
    fn place_and_info_response_roundtrip() {
        let mut out = Vec::new();
        let reply = PlaceReply {
            epoch: 7,
            algo: PlaceAlgo::Grid,
            applied: true,
            position: Point::new(12.5, 99.0),
        };
        encode_place_response(&mut out, &reply);
        assert_eq!(decode_place_response(payload(&out)).unwrap(), reply);

        let roster = [(0u64, Point::new(1.0, 2.0)), (5, Point::new(3.0, 4.0))];
        encode_info_response(&mut out, 2, 100.0, 15.0, 2, roster.iter().copied());
        let info = decode_info_response(payload(&out)).unwrap();
        assert_eq!(info.epoch, 2);
        assert_eq!(info.terrain_side, 100.0);
        assert_eq!(info.nominal_range, 15.0);
        assert_eq!(info.beacons, roster.to_vec());
    }

    #[test]
    fn error_response_roundtrip() {
        let mut out = Vec::new();
        encode_error_response(&mut out, Status::UnknownBeacon);
        assert_eq!(payload(&out), &[Status::UnknownBeacon as u8]);
        assert_eq!(
            decode_localize_response(payload(&out)),
            Err(Status::UnknownBeacon)
        );
        assert_eq!(
            decode_place_response(payload(&out)),
            Err(Status::UnknownBeacon)
        );
    }

    #[test]
    fn read_frame_handles_eof_and_oversize() {
        let mut out = Vec::new();
        encode_info_request(&mut out);
        let mut stream = io::Cursor::new(out.clone());
        let mut buf = Vec::new();
        assert!(read_frame(&mut stream, &mut buf).unwrap());
        assert_eq!(buf, payload(&out));
        // Clean EOF at the boundary.
        assert!(!read_frame(&mut stream, &mut buf).unwrap());
        // EOF inside the header.
        let mut stream = io::Cursor::new(vec![1u8, 0]);
        assert_eq!(
            read_frame(&mut stream, &mut buf).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Oversize announcement.
        let mut oversize = (MAX_FRAME + 1).to_le_bytes().to_vec();
        oversize.extend_from_slice(&[0; 8]);
        let mut stream = io::Cursor::new(oversize);
        assert_eq!(
            read_frame(&mut stream, &mut buf).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
