//! The `abp serve-chaos` resilience battery.
//!
//! Every defense the daemon carries — admission control, request
//! shedding, the dribble detector, per-request panic isolation,
//! deadlines, warm restart — is exercised here against a *live* daemon
//! over real TCP sockets, the same way a hostile or broken client
//! would hit it in the field:
//!
//! * **torn frames** — a header cut off mid-write, a payload abandoned
//!   mid-frame,
//! * **garbage opcodes and absurd prefixes** — unknown opcode bytes,
//!   a `u32::MAX` length prefix, a `u32::MAX` element-count prefix
//!   (rejected by the codec before any allocation),
//! * **floods** — more concurrent connections than `max_conns`, shed
//!   at accept with one [`Status::Overloaded`] frame,
//! * **work-budget shedding** — queued connections past the watermark
//!   turn Place answers into `Overloaded` while Localize still serves,
//! * **slowloris** — a client dribbling one frame slower than the
//!   frame window is quarantined without a response,
//! * **an injected handler panic** — via [`ServeConfig::panic_seed`]:
//!   the connection dies, the worker (and daemon) survive,
//! * **deadlines** — a handler outliving [`ServeConfig::deadline`] is
//!   answered [`Status::DeadlineExceeded`],
//! * **warm restart** — a second daemon booted from the first one's
//!   state file republishes a bit-identical world (equal snapshot
//!   fingerprints) at the same epoch.
//!
//! Each scenario asserts both the client-observed behavior *and* the
//! daemon's own counters at shutdown, and the hostile-input group ends
//! with a well-behaved connection proving the zero-alloc serving
//! invariant still holds after the abuse. [`run_chaos`] returns an
//! error naming the first scenario whose expectation failed; the CLI
//! (`abp serve-chaos`) and the CI `chaos-smoke` job fail with it.
//!
//! The injected-panic scenario intentionally lets the default panic
//! hook print one backtrace to stderr — that noise is the proof that a
//! real unwind crossed the isolation boundary and was contained.

use crate::daemon::{Daemon, ServeConfig};
use crate::protocol::{self as wire, PlaceAlgo, Status};
use crate::state::StateOpen;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side socket timeout: generous against CI jitter, tight
/// enough that a hung daemon fails the battery instead of wedging it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// The seed the panic-isolation scenario arms
/// [`ServeConfig::panic_seed`] with.
const CHAOS_PANIC_SEED: u64 = 0xDEAD_BEEF_0BAD_CAFE;

/// One scenario's verdict, for the CLI's line-per-scenario output.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Stable scenario name (used by the CI grep).
    pub name: &'static str,
    /// What was observed, one human-readable line.
    pub detail: String,
}

/// The whole battery's result: one outcome per scenario, in run order.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Scenario verdicts; the battery errors out instead of recording
    /// a failing one, so every entry here passed.
    pub outcomes: Vec<ScenarioOutcome>,
}

fn fail(scenario: &str, what: impl std::fmt::Display) -> io::Error {
    io::Error::other(format!("chaos [{scenario}]: {what}"))
}

/// Connects with the battery's client timeouts applied.
fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
    let conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    conn.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    conn.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    Ok(conn)
}

/// Sends one request and returns the response's status byte, or `None`
/// if the daemon hung up without answering.
fn round_trip(conn: &mut TcpStream, request: &[u8]) -> io::Result<Option<u8>> {
    conn.write_all(request)?;
    let mut frame = Vec::new();
    match wire::read_frame(conn, &mut frame) {
        Ok(true) => Ok(frame.first().copied()),
        Ok(false) => Ok(None),
        Err(e) if e.kind() == ErrorKind::ConnectionReset => Ok(None),
        Err(e) => Err(e),
    }
}

/// Reads until EOF (or reset), asserting the daemon sent nothing.
fn expect_silent_close(scenario: &str, conn: &mut TcpStream) -> io::Result<()> {
    let mut byte = [0u8; 1];
    match conn.read(&mut byte) {
        Ok(0) => Ok(()),
        Ok(_) => Err(fail(scenario, "daemon answered where it should hang up")),
        Err(e) if e.kind() == ErrorKind::ConnectionReset => Ok(()),
        Err(e) => Err(e),
    }
}

/// A localize request over fixed ids — valid without knowing the
/// roster (unknown ids answer `UnknownBeacon`, which is still a served
/// response, not a hang-up).
fn any_localize() -> Vec<u8> {
    let mut out = Vec::new();
    wire::encode_localize_request(&mut out, &[0, 1, 2]);
    out
}

fn info_request() -> Vec<u8> {
    let mut out = Vec::new();
    wire::encode_info_request(&mut out);
    out
}

/// Hostile-input group: torn header, garbage opcode, absurd length
/// prefix, absurd count prefix, mid-frame disconnect — all against ONE
/// daemon — then a well-behaved connection that must still see
/// zero-alloc service.
fn hostile_inputs(outcomes: &mut Vec<ScenarioOutcome>) -> io::Result<()> {
    let daemon = Daemon::start(&ServeConfig::tiny())?;
    let addr = daemon.local_addr();

    // Torn header: two of four length bytes, then hang up.
    {
        let mut conn = connect(addr)?;
        conn.write_all(&[7, 0])?;
        drop(conn);
        outcomes.push(ScenarioOutcome {
            name: "torn_header",
            detail: "daemon survived a header cut off mid-write".into(),
        });
    }

    // Garbage opcode: a well-framed request the decoder must refuse,
    // answered on a connection that stays open.
    {
        let mut conn = connect(addr)?;
        let status = round_trip(&mut conn, &[1, 0, 0, 0, 0x2A])?
            .ok_or_else(|| fail("garbage_opcode", "daemon hung up instead of answering"))?;
        if status != Status::BadOpcode as u8 {
            return Err(fail(
                "garbage_opcode",
                format!("status {status}, want BadOpcode"),
            ));
        }
        // The connection must survive a refused frame.
        match round_trip(&mut conn, &info_request())? {
            Some(0) => {}
            other => {
                return Err(fail(
                    "garbage_opcode",
                    format!("follow-up info got {other:?}"),
                ))
            }
        }
        outcomes.push(ScenarioOutcome {
            name: "garbage_opcode",
            detail: "refused with BadOpcode; connection kept serving".into(),
        });
    }

    // Absurd length prefix: u32::MAX. The daemon must answer Oversize
    // and drop the connection without ever allocating the claimed 4 GiB.
    {
        let mut conn = connect(addr)?;
        let status = round_trip(&mut conn, &u32::MAX.to_le_bytes())?
            .ok_or_else(|| fail("absurd_length", "no Oversize answer before hang-up"))?;
        if status != Status::Oversize as u8 {
            return Err(fail(
                "absurd_length",
                format!("status {status}, want Oversize"),
            ));
        }
        expect_silent_close("absurd_length", &mut conn)?;
        outcomes.push(ScenarioOutcome {
            name: "absurd_length",
            detail: "u32::MAX length prefix answered Oversize, connection dropped".into(),
        });
    }

    // Absurd count prefix: a 9-byte localize frame claiming u32::MAX
    // ids. The codec must refuse before reserving anything.
    {
        let mut conn = connect(addr)?;
        let mut frame = vec![5, 0, 0, 0, wire::Opcode::Localize as u8];
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        let status = round_trip(&mut conn, &frame)?
            .ok_or_else(|| fail("absurd_count", "daemon hung up instead of answering"))?;
        if status != Status::BadFrame as u8 {
            return Err(fail(
                "absurd_count",
                format!("status {status}, want BadFrame"),
            ));
        }
        outcomes.push(ScenarioOutcome {
            name: "absurd_count",
            detail: "u32::MAX id-count refused with BadFrame before allocation".into(),
        });
    }

    // Mid-frame disconnect: promise 100 payload bytes, deliver 10, die.
    {
        let mut conn = connect(addr)?;
        conn.write_all(&100u32.to_le_bytes())?;
        conn.write_all(&[wire::Opcode::Localize as u8; 10])?;
        drop(conn);
        outcomes.push(ScenarioOutcome {
            name: "mid_frame_disconnect",
            detail: "daemon survived a payload abandoned mid-frame".into(),
        });
    }

    // After all that: a polite client must still get allocation-free
    // service (info for the roster, then localizes past the daemon's
    // per-connection warm-up).
    {
        let mut conn = connect(addr)?;
        let mut out = Vec::new();
        let mut frame = Vec::new();
        wire::encode_info_request(&mut out);
        conn.write_all(&out)?;
        wire::read_frame(&mut conn, &mut frame)?;
        let info = wire::decode_info_response(&frame)
            .map_err(|s| fail("clean_after_chaos", format!("info decode: {s:?}")))?;
        let ids: Vec<u64> = info.beacons.iter().take(4).map(|&(id, _)| id).collect();
        wire::encode_localize_request(&mut out, &ids);
        for _ in 0..150 {
            match round_trip(&mut conn, &out)? {
                Some(0) => {}
                other => return Err(fail("clean_after_chaos", format!("localize got {other:?}"))),
            }
        }
    }

    let stats = daemon.shutdown();
    if stats.panics != 0 || stats.worker_respawns != 0 {
        return Err(fail(
            "clean_after_chaos",
            format!(
                "hostile inputs must not panic workers (panics {}, respawns {})",
                stats.panics, stats.worker_respawns
            ),
        ));
    }
    if stats.errors < 3 {
        return Err(fail(
            "clean_after_chaos",
            format!("want >= 3 refused frames counted, got {}", stats.errors),
        ));
    }
    if stats.alloc_counting && stats.allocs_per_request() != 0.0 {
        return Err(fail(
            "clean_after_chaos",
            format!(
                "zero-alloc invariant broken under chaos: {} allocs/request",
                stats.allocs_per_request()
            ),
        ));
    }
    outcomes.push(ScenarioOutcome {
        name: "clean_after_chaos",
        detail: format!(
            "polite client still served; {} refused frames counted, allocs/request {} \
             (counting {})",
            stats.errors,
            stats.allocs_per_request(),
            stats.alloc_counting
        ),
    });
    Ok(())
}

/// Accept-gate flood: with `max_conns: 2`, the third concurrent
/// connection is answered one `Overloaded` frame and closed, while the
/// earlier ones keep serving.
fn accept_flood(outcomes: &mut Vec<ScenarioOutcome>) -> io::Result<()> {
    let cfg = ServeConfig {
        workers: 1,
        max_conns: 2,
        ..ServeConfig::tiny()
    };
    let daemon = Daemon::start(&cfg)?;
    let addr = daemon.local_addr();

    let mut first = connect(addr)?;
    match round_trip(&mut first, &info_request())? {
        Some(0) => {}
        other => {
            return Err(fail(
                "accept_flood",
                format!("first conn info got {other:?}"),
            ))
        }
    }
    let second = connect(addr)?;
    // Give the accept loop a beat to register the second connection so
    // the gate's live+queued arithmetic sees both.
    std::thread::sleep(Duration::from_millis(100));
    let mut third = connect(addr)?;
    let mut frame = Vec::new();
    match wire::read_frame(&mut third, &mut frame) {
        Ok(true) if frame.first() == Some(&(Status::Overloaded as u8)) => {}
        Ok(true) => {
            return Err(fail(
                "accept_flood",
                format!("third conn got frame {frame:?}"),
            ))
        }
        Ok(false) => return Err(fail("accept_flood", "third conn closed without a frame")),
        Err(e) => return Err(fail("accept_flood", format!("third conn read: {e}"))),
    }
    expect_silent_close("accept_flood", &mut third)?;
    // The shed must not have cost the admitted connections anything.
    match round_trip(&mut first, &info_request())? {
        Some(0) => {}
        other => {
            return Err(fail(
                "accept_flood",
                format!("post-shed info got {other:?}"),
            ))
        }
    }
    drop(second);
    drop(first);

    let stats = daemon.shutdown();
    if stats.shed == 0 {
        return Err(fail("accept_flood", "gate shed nothing"));
    }
    if stats.connections != 2 {
        return Err(fail(
            "accept_flood",
            format!(
                "want exactly 2 accepted connections, got {}",
                stats.connections
            ),
        ));
    }
    outcomes.push(ScenarioOutcome {
        name: "accept_flood",
        detail: format!(
            "3rd concurrent connection shed with Overloaded ({} shed, 2 accepted)",
            stats.shed
        ),
    });
    Ok(())
}

/// Work-budget shedding: one worker, three connections queued behind
/// it, watermark 2 — a Place request on the live connection is
/// answered `Overloaded` (queued 3 ≥ 2) while Localize still serves
/// (3 < 2×2).
fn request_shed(outcomes: &mut Vec<ScenarioOutcome>) -> io::Result<()> {
    let cfg = ServeConfig {
        workers: 1,
        shed_watermark: 2,
        ..ServeConfig::tiny()
    };
    let daemon = Daemon::start(&cfg)?;
    let addr = daemon.local_addr();

    let mut live = connect(addr)?;
    match round_trip(&mut live, &info_request())? {
        Some(0) => {}
        other => {
            return Err(fail(
                "request_shed",
                format!("live conn info got {other:?}"),
            ))
        }
    }
    // These three sit in the accept queue: the only worker is parked
    // on `live`.
    let parked: Vec<TcpStream> = (0..3).map(|_| connect(addr)).collect::<io::Result<_>>()?;

    let mut place = Vec::new();
    wire::encode_place_request(&mut place, PlaceAlgo::Max, 1, false);
    // Poll until the accept loop has registered the queue depth; the
    // place answer flips to Overloaded the moment it has.
    let mut shed_seen = false;
    for _ in 0..40 {
        match round_trip(&mut live, &place)? {
            Some(s) if s == Status::Overloaded as u8 => {
                shed_seen = true;
                break;
            }
            Some(0) => std::thread::sleep(Duration::from_millis(25)),
            other => return Err(fail("request_shed", format!("place got {other:?}"))),
        }
    }
    if !shed_seen {
        return Err(fail(
            "request_shed",
            "place was never shed past the watermark",
        ));
    }
    // Localize holds out to twice the watermark — still served.
    match round_trip(&mut live, &any_localize())? {
        Some(s) if s == Status::Ok as u8 || s == Status::UnknownBeacon as u8 => {}
        other => return Err(fail("request_shed", format!("localize got {other:?}"))),
    }
    drop(parked);
    drop(live);

    let stats = daemon.shutdown();
    if stats.shed == 0 {
        return Err(fail("request_shed", "shed counter never moved"));
    }
    outcomes.push(ScenarioOutcome {
        name: "request_shed",
        detail: format!(
            "Place shed Overloaded past the watermark, Localize still served ({} shed)",
            stats.shed
        ),
    });
    Ok(())
}

/// Slowloris: a client that delivers one frame byte and stalls is
/// quarantined — closed without a response — once the frame window
/// lapses.
fn slowloris(outcomes: &mut Vec<ScenarioOutcome>) -> io::Result<()> {
    let cfg = ServeConfig {
        frame_window: Duration::from_millis(150),
        ..ServeConfig::tiny()
    };
    let daemon = Daemon::start(&cfg)?;
    let mut conn = connect(daemon.local_addr())?;
    conn.write_all(&[9])?;
    expect_silent_close("slowloris", &mut conn)?;
    let stats = daemon.shutdown();
    if stats.quarantines != 1 {
        return Err(fail(
            "slowloris",
            format!("want 1 quarantine, got {}", stats.quarantines),
        ));
    }
    outcomes.push(ScenarioOutcome {
        name: "slowloris",
        detail: "dribbling connection quarantined after the frame window".into(),
    });
    Ok(())
}

/// Panic isolation: a Place request carrying the armed seed panics
/// inside the handler. The connection dies; the worker, the daemon,
/// and every other client live.
fn handler_panic(outcomes: &mut Vec<ScenarioOutcome>) -> io::Result<()> {
    let cfg = ServeConfig {
        panic_seed: Some(CHAOS_PANIC_SEED),
        ..ServeConfig::tiny()
    };
    let daemon = Daemon::start(&cfg)?;
    let addr = daemon.local_addr();

    let mut poisoned = connect(addr)?;
    let mut place = Vec::new();
    wire::encode_place_request(&mut place, PlaceAlgo::Max, CHAOS_PANIC_SEED, false);
    match round_trip(&mut poisoned, &place)? {
        None => {}
        Some(s) => {
            return Err(fail(
                "handler_panic",
                format!("poisoned request answered {s}"),
            ))
        }
    }
    // The daemon must still be there for the next client.
    let mut fresh = connect(addr)?;
    match round_trip(&mut fresh, &info_request())? {
        Some(0) => {}
        other => {
            return Err(fail(
                "handler_panic",
                format!("post-panic info got {other:?}"),
            ))
        }
    }
    drop(fresh);

    let stats = daemon.shutdown();
    if stats.panics != 1 {
        return Err(fail(
            "handler_panic",
            format!("want 1 contained panic, got {}", stats.panics),
        ));
    }
    if stats.worker_respawns != 0 {
        return Err(fail(
            "handler_panic",
            format!(
                "panic must be contained per-request, not by respawn ({} respawns)",
                stats.worker_respawns
            ),
        ));
    }
    outcomes.push(ScenarioOutcome {
        name: "handler_panic",
        detail: "injected handler panic killed only its connection (1 contained, 0 respawns)"
            .into(),
    });
    Ok(())
}

/// Deadlines: with a 1 ns budget every handler overruns, so every
/// request is answered `DeadlineExceeded` — and the connection keeps
/// going, because a slow answer is not a protocol violation.
fn deadline_expiry(outcomes: &mut Vec<ScenarioOutcome>) -> io::Result<()> {
    let cfg = ServeConfig {
        deadline: Some(Duration::from_nanos(1)),
        ..ServeConfig::tiny()
    };
    let daemon = Daemon::start(&cfg)?;
    let mut conn = connect(daemon.local_addr())?;
    for _ in 0..3 {
        match round_trip(&mut conn, &any_localize())? {
            Some(s) if s == Status::DeadlineExceeded as u8 => {}
            other => return Err(fail("deadline_expiry", format!("got {other:?}"))),
        }
    }
    drop(conn);
    let stats = daemon.shutdown();
    if stats.deadline_exceeded < 3 {
        return Err(fail(
            "deadline_expiry",
            format!(
                "want >= 3 deadline answers counted, got {}",
                stats.deadline_exceeded
            ),
        ));
    }
    outcomes.push(ScenarioOutcome {
        name: "deadline_expiry",
        detail: format!(
            "over-budget handlers answered DeadlineExceeded ({} counted), connection survived",
            stats.deadline_exceeded
        ),
    });
    Ok(())
}

/// Warm restart: daemon A persists its world, applies one placement
/// (epoch 1), and dies; daemon B boots from the state file and must
/// publish the *bit-identical* world — equal snapshot fingerprints —
/// at the same epoch.
fn warm_restart(outcomes: &mut Vec<ScenarioOutcome>) -> io::Result<()> {
    let state_path =
        std::env::temp_dir().join(format!("abp-chaos-state-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&state_path);
    let cfg = ServeConfig {
        state_path: Some(state_path.clone()),
        ..ServeConfig::tiny()
    };

    let daemon = Daemon::start(&cfg)?;
    let mut conn = connect(daemon.local_addr())?;
    let mut place = Vec::new();
    wire::encode_place_request(&mut place, PlaceAlgo::Max, 3, true);
    match round_trip(&mut conn, &place)? {
        Some(0) => {}
        other => return Err(fail("warm_restart", format!("place+apply got {other:?}"))),
    }
    // Wait for the rebuilder to publish (and persist) epoch 1.
    let mut published = false;
    for _ in 0..200 {
        if daemon.snapshot().epoch() >= 1 {
            published = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    if !published {
        let _ = std::fs::remove_file(&state_path);
        return Err(fail("warm_restart", "rebuilder never published epoch 1"));
    }
    drop(conn);
    let first_world = daemon.snapshot();
    let stats = daemon.shutdown();
    if stats.state_saves == 0 {
        let _ = std::fs::remove_file(&state_path);
        return Err(fail("warm_restart", "no state save recorded"));
    }

    let revived = Daemon::start(&cfg)?;
    let loaded = matches!(revived.state_open(), StateOpen::Loaded { .. });
    let second_world = revived.snapshot();
    let fingerprints_match = second_world.fingerprint() == first_world.fingerprint();
    let epochs_match = second_world.epoch() == first_world.epoch();
    let stats2 = revived.shutdown();
    let _ = std::fs::remove_file(&state_path);

    if !loaded {
        return Err(fail(
            "warm_restart",
            "second boot did not load the state file",
        ));
    }
    if !epochs_match {
        return Err(fail(
            "warm_restart",
            format!(
                "epoch {} after restart, want {}",
                second_world.epoch(),
                first_world.epoch()
            ),
        ));
    }
    if !fingerprints_match {
        return Err(fail(
            "warm_restart",
            "restored world fingerprint differs — restart is not bit-identical",
        ));
    }
    if stats2.state_loads != 1 {
        return Err(fail(
            "warm_restart",
            format!("want 1 state load, got {}", stats2.state_loads),
        ));
    }
    outcomes.push(ScenarioOutcome {
        name: "warm_restart",
        detail: format!(
            "rebooted daemon republished the identical world at epoch {} (fingerprint {:#018x})",
            second_world.epoch(),
            second_world.fingerprint()
        ),
    });
    Ok(())
}

/// Runs the whole battery in a fixed order. Every scenario starts its
/// own daemon on an ephemeral port, so failures are isolated and the
/// battery can run in parallel with anything.
///
/// # Errors
///
/// The first scenario whose expectation fails aborts the battery with
/// an error naming it; socket errors propagate likewise.
pub fn run_chaos() -> io::Result<ChaosReport> {
    let mut outcomes = Vec::new();
    hostile_inputs(&mut outcomes)?;
    accept_flood(&mut outcomes)?;
    request_shed(&mut outcomes)?;
    slowloris(&mut outcomes)?;
    handler_panic(&mut outcomes)?;
    deadline_expiry(&mut outcomes)?;
    warm_restart(&mut outcomes)?;
    Ok(ChaosReport { outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_passes_end_to_end() {
        let report = run_chaos().expect("chaos battery");
        let names: Vec<&str> = report.outcomes.iter().map(|o| o.name).collect();
        assert_eq!(
            names,
            [
                "torn_header",
                "garbage_opcode",
                "absurd_length",
                "absurd_count",
                "mid_frame_disconnect",
                "clean_after_chaos",
                "accept_flood",
                "request_shed",
                "slowloris",
                "handler_panic",
                "deadline_expiry",
                "warm_restart",
            ]
        );
        for o in &report.outcomes {
            assert!(!o.detail.is_empty(), "{} carries a detail line", o.name);
        }
    }
}
