//! Property-based hostile-input tests for the wire codecs.
//!
//! The resilience contract the daemon and the chaos battery lean on:
//! **no byte sequence makes a decoder panic or allocate past the frame
//! cap** — not the server-side request decoder, not the client-side
//! response decoders, not the shared frame reader. Malice and
//! corruption must surface as typed [`Status`] errors (or
//! `io::Error`s), never as an unwind into the worker's
//! `catch_unwind` backstop.

use abp_serve::protocol::{self as wire, MAX_FRAME};
use proptest::prelude::*;

/// Feed every decoder in both codecs one payload; success or typed
/// error are both fine, panics and runaway reservations are not.
fn decode_everything(payload: &[u8]) {
    let mut ids = Vec::new();
    let _ = wire::decode_request(payload, &mut ids);
    let _ = wire::decode_localize_response(payload);
    let _ = wire::decode_place_response(payload);
    let _ = wire::decode_info_response(payload);
    let _ = wire::decode_stats_response(payload);
    assert!(
        ids.capacity() <= MAX_FRAME as usize,
        "id scratch ballooned to {} entries",
        ids.capacity()
    );
}

proptest! {
    /// Pure noise: arbitrary bytes through every decoder.
    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        decode_everything(&payload);
    }

    /// Plausible frames: a known (or near-miss) opcode/status byte in
    /// front of arbitrary bytes — deeper decode paths than pure noise
    /// reaches, since the leading byte gates the parse.
    #[test]
    fn decoders_never_panic_on_grafted_frames(
        lead in 0u8..10,
        body in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut payload = Vec::with_capacity(1 + body.len());
        payload.push(lead);
        payload.extend_from_slice(&body);
        decode_everything(&payload);
    }

    /// Truncations of a valid stats response — the deepest frame in the
    /// protocol (fourteen header fields, histograms, flight entries) —
    /// must all decode to a typed error, never a slice panic.
    #[test]
    fn truncated_stats_frames_fail_typed(cut in 0usize..200) {
        let metrics = abp_serve::metrics::ServeMetrics::new();
        metrics.record(abp_serve::metrics::OpClass::Localize, 1_000);
        let mut out = Vec::new();
        wire::encode_stats_response(
            &mut out,
            &wire::StatsView { epoch: 3, connections_total: 1, metrics: &metrics, flight: &[] },
        );
        let payload = &out[4..];
        let cut = cut.min(payload.len().saturating_sub(1));
        prop_assert!(wire::decode_stats_response(&payload[..cut]).is_err());
    }

    /// The frame reader caps its buffer at `MAX_FRAME` no matter what
    /// length prefix the bytes claim.
    #[test]
    fn read_frame_never_panics_or_overallocates(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut stream = std::io::Cursor::new(bytes);
        let mut buf = Vec::new();
        let _ = wire::read_frame(&mut stream, &mut buf);
        prop_assert!(buf.capacity() <= MAX_FRAME as usize);
    }
}
