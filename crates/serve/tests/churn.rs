//! Concurrency and bit-identity guarantees of the serving layer.
//!
//! * `readers_always_see_consistent_snapshots_under_churn` — the
//!   epoch-swap contract: while a writer publishes generation after
//!   generation, every reader observation is an internally consistent
//!   `ErrorMap`/`CellIndex`/field bundle (fingerprint-verified), epochs
//!   are monotonic per reader, and a pinned old generation stays intact.
//! * `served_tcp_localization_is_bit_identical_to_batch` — end to end
//!   over real sockets: for every lattice point, the daemon's answer to
//!   the heard-id set equals the batch `try_localize_via` fix bit for
//!   bit, including after an epoch bump.

use abp_field::BeaconField;
use abp_geom::Terrain;
use abp_localize::Localizer;
use abp_radio::IdealDisk;
use abp_serve::daemon::{Daemon, ServeConfig};
use abp_serve::protocol::{self as wire, PlaceAlgo};
use abp_serve::snapshot::{SnapshotCell, WorldSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn snapshot(epoch: u64, beacons: usize, seed: u64) -> WorldSnapshot {
    let terrain = Terrain::square(60.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let field = BeaconField::random_uniform(beacons, terrain, &mut rng);
    WorldSnapshot::build(epoch, field, Arc::new(IdealDisk::new(15.0)), 4.0)
}

#[test]
fn readers_always_see_consistent_snapshots_under_churn() {
    let cell = Arc::new(SnapshotCell::new(snapshot(0, 6, 0)));
    let stop = Arc::new(AtomicBool::new(false));
    const EPOCHS: u64 = 30;

    // A pinned handle to generation 0: must survive every publish.
    let pinned = cell.load();

    let readers: Vec<_> = (0..4)
        .map(|r| {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reader = cell.reader();
                let mut last_epoch = 0u64;
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.current();
                    let epoch = snap.epoch();
                    // Monotonic: a reader never travels back in time.
                    assert!(
                        epoch >= last_epoch,
                        "reader {r}: epoch regressed {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    // Internally consistent: the map, index, SoA, and
                    // placement answers all belong to this generation.
                    assert!(snap.is_consistent(), "reader {r}: torn snapshot");
                    assert_eq!(snap.index().len(), snap.field().len());
                    assert_eq!(snap.soa().len(), snap.field().len());
                    // The epoch encodes the churn seed: field size grows
                    // with the epoch (writer adds one beacon per epoch),
                    // so a mismatched pair would also trip this.
                    assert_eq!(snap.field().len(), 6 + epoch as usize);
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    // Writer: publish EPOCHS generations, each growing the field by one
    // deterministic beacon, with a little jitter from real survey work.
    for epoch in 1..=EPOCHS {
        let current = cell.load();
        let t = epoch as f64 / (EPOCHS + 1) as f64;
        let next = current.with_beacon_added(abp_geom::Point::new(60.0 * t, 60.0 * (1.0 - t)));
        assert_eq!(next.epoch(), epoch);
        cell.publish(next);
    }
    // Let readers chew on the final generation briefly, then stop.
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        let observations = h.join().expect("reader panicked");
        assert!(observations > 0, "every reader must have observed state");
    }

    assert_eq!(cell.epoch_hint(), EPOCHS);
    // The pinned generation 0 is still alive, intact, and unchanged.
    assert_eq!(pinned.epoch(), 0);
    assert_eq!(pinned.field().len(), 6);
    assert!(pinned.is_consistent());
}

/// Asks the daemon to localize `ids` and returns the decoded reply.
fn served_localize(
    conn: &mut TcpStream,
    out: &mut Vec<u8>,
    frame: &mut Vec<u8>,
    ids: &[u64],
) -> wire::LocalizeReply {
    wire::encode_localize_request(out, ids);
    conn.write_all(out).expect("write");
    assert!(wire::read_frame(conn, frame).expect("read"));
    wire::decode_localize_response(frame).expect("localize reply")
}

fn assert_bit_identical(daemon: &Daemon, conn: &mut TcpStream, expected_epoch: u64) {
    let snap = daemon.snapshot();
    assert_eq!(snap.epoch(), expected_epoch);
    let oracle = snap.oracle();
    let localizer = snap.batch_localizer();
    let mut out = Vec::new();
    let mut frame = Vec::new();
    let mut ids = Vec::new();
    for at in snap.map().lattice().points() {
        ids.clear();
        oracle.for_each_heard(at, |b| ids.push(b.id().0));
        let served = served_localize(conn, &mut out, &mut frame, &ids);
        let batch = localizer.try_localize_via(&oracle, at);
        let fix = batch.fix();
        assert_eq!(served.epoch, expected_epoch, "at {at}");
        assert_eq!(served.heard as usize, fix.heard, "at {at}");
        assert_eq!(served.degraded, batch.is_degraded(), "at {at}");
        match (served.estimate, fix.estimate) {
            (Some(s), Some(b)) => {
                assert_eq!(s.x.to_bits(), b.x.to_bits(), "x at {at}");
                assert_eq!(s.y.to_bits(), b.y.to_bits(), "y at {at}");
            }
            (None, None) => {}
            (s, b) => panic!("estimate presence diverged at {at}: {s:?} vs {b:?}"),
        }
    }
}

#[test]
fn served_tcp_localization_is_bit_identical_to_batch() {
    let daemon = Daemon::start(&ServeConfig::tiny()).expect("daemon");
    let mut conn = TcpStream::connect(daemon.local_addr()).expect("connect");
    let mut out = Vec::new();
    let mut frame = Vec::new();

    // Epoch 0: every lattice point agrees bit for bit.
    assert_bit_identical(&daemon, &mut conn, 0);

    // Apply a Max placement, wait for the rebuilt epoch, re-verify the
    // whole lattice against the *new* batch state.
    wire::encode_place_request(&mut out, PlaceAlgo::Max, 0, true);
    conn.write_all(&out).expect("write");
    assert!(wire::read_frame(&mut conn, &mut frame).expect("read"));
    wire::decode_place_response(&frame).expect("place reply");
    let deadline = Instant::now() + Duration::from_secs(10);
    while daemon.epoch() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(daemon.epoch(), 1, "apply must publish epoch 1");
    assert_bit_identical(&daemon, &mut conn, 1);

    drop(conn);
    daemon.shutdown();
}
