//! Ad-hoc probe comparing the three `NoiseStyle` readings (see
//! EXPERIMENTS.md, "Interpreting the noise model").
use abp_field::BeaconField;
use abp_geom::{Lattice, Terrain};
use abp_localize::UnheardPolicy;
use abp_radio::{IdealDisk, NoiseStyle, PerBeaconNoise};
use abp_survey::ErrorMap;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let trials = 60u64;
    let terrain = Terrain::square(100.0);
    let lattice = Lattice::new(terrain, 2.0);
    for beacons in [30usize, 70, 120, 240] {
        let mut ideal = 0.0;
        for s in 0..trials {
            let f = BeaconField::random_uniform(beacons, terrain, &mut StdRng::seed_from_u64(s));
            ideal += ErrorMap::survey(
                &lattice,
                &f,
                &IdealDisk::new(15.0),
                UnheardPolicy::TerrainCenter,
            )
            .mean_error();
        }
        print!("{beacons:>4} ideal {:.3}", ideal / trials as f64);
        for noise in [0.1, 0.3, 0.5] {
            for style in [
                NoiseStyle::Speckled,
                NoiseStyle::CoherentRadius,
                NoiseStyle::Lossy,
            ] {
                let mut acc = 0.0;
                for s in 0..trials {
                    let f = BeaconField::random_uniform(
                        beacons,
                        terrain,
                        &mut StdRng::seed_from_u64(s),
                    );
                    let m = PerBeaconNoise::with_style(15.0, noise, 1000 + s, style);
                    acc += ErrorMap::survey(&lattice, &f, &m, UnheardPolicy::TerrainCenter)
                        .mean_error();
                }
                print!(" | n{noise} {style}: {:.3}", acc / trials as f64);
            }
        }
        println!();
    }
}
