//! Probe: Grid improvability at moderate density under the noise styles.
use abp_radio::NoiseStyle;
use abp_sim::experiments::improvement;
use abp_sim::{AlgorithmKind, SimConfig};

fn main() {
    let mut cfg = SimConfig::paper();
    cfg.step = 2.0;
    cfg.trials = 300;
    cfg.beacon_counts = vec![50, 70, 100];
    for (label, style, noise) in [
        ("ideal", NoiseStyle::Speckled, 0.0),
        ("speckled 0.5", NoiseStyle::Speckled, 0.5),
        ("coherent 0.5", NoiseStyle::CoherentRadius, 0.5),
        ("lossy 0.5", NoiseStyle::Lossy, 0.5),
    ] {
        cfg.noise_style = style;
        let curves = improvement::run(&cfg, noise, &[AlgorithmKind::Grid, AlgorithmKind::Max]);
        print!("{label:>14}:");
        for (ai, name) in ["grid", "max"].iter().enumerate() {
            for p in &curves[ai].points {
                print!(" {name}@{}:{:.3}", p.beacons, p.mean_improvement.estimate);
            }
        }
        println!();
    }
}
