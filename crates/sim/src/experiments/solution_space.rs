//! Solution-space density (paper §1, contribution 3).
//!
//! "The efficacy of algorithms ... designed to work in noisy environments
//! is predicated on the assumption that the solution space for the problem
//! must be dense in number of satisfying solutions. For instance, if the
//! only way to improve the quality of localization in a region by adding
//! an additional beacon is to place it at a single point in the region,
//! then it is difficult to design algorithms that can identify that point
//! in the presence of so much noise."
//!
//! The paper introduces the notion but never measures it. This experiment
//! does: for each random field it evaluates the improvement achieved by a
//! large sample of candidate placements and reports
//!
//! * the best sampled improvement (an empirical optimum),
//! * the *satisfying fraction* — how many candidates reduce the field's
//!   mean error by at least `threshold` (a fraction of the current mean
//!   error, so "satisfying" means a materially better localization
//!   field), and
//! * the fraction of candidates that improve at all.
//!
//! A high satisfying fraction at low beacon density is exactly why the
//! Grid algorithm works from noisy measurements; its collapse at high
//! density explains why no algorithm helps past saturation.

use crate::config::SimConfig;
use crate::runner::parallel_map;
use abp_geom::splitmix64;
use abp_stats::{ConfidenceInterval, Welford};
use abp_survey::ErrorMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One density point of the solution-space sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolutionSpacePoint {
    /// Number of beacons in the initial field.
    pub beacons: usize,
    /// Deployment density, beacons per m².
    pub density: f64,
    /// Best improvement among the sampled candidates (m).
    pub best_improvement: ConfidenceInterval,
    /// Fraction of candidates cutting the mean error by at least
    /// `threshold · (mean error before)`.
    pub satisfying_fraction: ConfidenceInterval,
    /// Fraction of candidates with strictly positive improvement.
    pub positive_fraction: ConfidenceInterval,
}

/// Runs the sweep: `candidates` uniform-random placements per trial,
/// satisfaction threshold `threshold` (relative reduction of the field's
/// mean error; `0.02` = "cuts the error by 2 %").
///
/// # Panics
///
/// Panics if `candidates == 0` or `threshold` is outside `(0, 1]`.
pub fn run(
    cfg: &SimConfig,
    noise: f64,
    candidates: usize,
    threshold: f64,
) -> Vec<SolutionSpacePoint> {
    assert!(candidates > 0, "need at least one candidate");
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "threshold must be in (0, 1], got {threshold}"
    );
    cfg.beacon_counts
        .iter()
        .enumerate()
        .map(|(di, &beacons)| {
            let samples = parallel_map(cfg.trials, cfg.threads, |t| {
                trial(
                    cfg,
                    noise,
                    beacons,
                    cfg.trial_seed(di, t),
                    candidates,
                    threshold,
                )
            });
            let mut best_w = Welford::new();
            let mut sat_w = Welford::new();
            let mut pos_w = Welford::new();
            for (best, sat, pos) in samples {
                best_w.push(best);
                sat_w.push(sat);
                pos_w.push(pos);
            }
            let ci =
                |w: &Welford| ConfidenceInterval::from_moments(w.mean(), w.sample_std(), w.count());
            SolutionSpacePoint {
                beacons,
                density: cfg.density_of(beacons),
                best_improvement: ci(&best_w),
                satisfying_fraction: ci(&sat_w),
                positive_fraction: ci(&pos_w),
            }
        })
        .collect()
}

fn trial(
    cfg: &SimConfig,
    noise: f64,
    beacons: usize,
    trial_seed: u64,
    candidates: usize,
    threshold: f64,
) -> (f64, f64, f64) {
    let field = cfg.trial_field(beacons, trial_seed);
    let model = cfg.model(noise, splitmix64(trial_seed ^ 0x4E_01_5E));
    let lattice = cfg.lattice();
    let before = ErrorMap::survey(&lattice, &field, &*model, cfg.policy);
    let before_mean = before.mean_error();
    let mut rng = StdRng::seed_from_u64(splitmix64(trial_seed ^ 0x50_15_AC));
    let terrain = cfg.terrain();

    let mut improvements = Vec::with_capacity(candidates);
    for _ in 0..candidates {
        let pos = terrain.point_at(rng.random::<f64>(), rng.random::<f64>());
        // Every candidate is evaluated as the *same* next beacon id (the
        // field is re-cloned), isolating the effect of position from the
        // new beacon's noise personality.
        let mut extended = field.clone();
        let id = extended.add_beacon(pos);
        let mut after = before.clone();
        after.add_beacon(extended.get(id).expect("just added"), &*model);
        improvements.push(before_mean - after.mean_error());
    }
    let best = improvements
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let positive = improvements.iter().filter(|&&v| v > 0.0).count() as f64 / candidates as f64;
    let bar = threshold * before_mean;
    let satisfying = improvements.iter().filter(|&&v| v >= bar).count() as f64 / candidates as f64;
    (best, satisfying, positive)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            trials: 10,
            beacon_counts: vec![30, 240],
            ..SimConfig::tiny()
        }
    }

    #[test]
    fn solution_space_is_denser_at_low_density() {
        let points = run(&cfg(), 0.0, 60, 0.02);
        let low = &points[0];
        let high = &points[1];
        assert!(
            low.satisfying_fraction.estimate > high.satisfying_fraction.estimate,
            "satisfying fraction should shrink with density: {} vs {}",
            low.satisfying_fraction.estimate,
            high.satisfying_fraction.estimate
        );
        assert!(low.best_improvement.estimate > high.best_improvement.estimate);
        assert!(low.positive_fraction.estimate > 0.5);
    }

    #[test]
    fn fractions_are_valid_probabilities() {
        let points = run(&cfg(), 0.3, 30, 0.02);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.satisfying_fraction.estimate));
            assert!((0.0..=1.0).contains(&p.positive_fraction.estimate));
        }
    }

    #[test]
    fn deterministic() {
        let c = cfg();
        assert_eq!(run(&c, 0.0, 20, 0.02), run(&c, 0.0, 20, 0.02));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        let _ = run(&cfg(), 0.0, 10, 0.0);
    }
}
