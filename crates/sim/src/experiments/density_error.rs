//! Mean localization error vs beacon density (Figures 4 and 6).
//!
//! For each beacon count the experiment generates `trials` independent
//! random fields, surveys each under the configured propagation model, and
//! aggregates the per-field mean (and median) localization error with
//! 95 % confidence intervals — exactly the procedure behind Figure 4
//! (ideal) and Figure 6 (noise 0.1/0.3/0.5).

use crate::config::SimConfig;
use crate::runner::parallel_map;
use abp_geom::splitmix64;
use abp_stats::{ConfidenceInterval, Welford};
use abp_survey::ErrorMap;
use serde::{Deserialize, Serialize};

/// One density point of the error-vs-density curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityErrorPoint {
    /// Number of beacons deployed.
    pub beacons: usize,
    /// Deployment density, beacons per m².
    pub density: f64,
    /// Beacons per nominal radio coverage area (`density · πR²`).
    pub per_coverage: f64,
    /// Mean localization error over the terrain, averaged over trials.
    pub mean_error: ConfidenceInterval,
    /// Median localization error over the terrain, averaged over trials.
    pub median_error: ConfidenceInterval,
    /// Average fraction of lattice points hearing no beacon.
    pub unheard_fraction: f64,
}

/// Per-trial raw sample (exposed for tests and custom aggregation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialSample {
    /// Mean localization error of this field.
    pub mean: f64,
    /// Median localization error of this field.
    pub median: f64,
    /// Fraction of lattice points hearing no beacon.
    pub unheard_fraction: f64,
}

/// Runs one trial: generate a field, survey it, summarize.
pub fn run_trial(cfg: &SimConfig, noise: f64, beacons: usize, trial_seed: u64) -> TrialSample {
    let field = cfg.trial_field(beacons, trial_seed);
    let model = cfg.model(noise, splitmix64(trial_seed ^ 0x4E_01_5E));
    let lattice = cfg.lattice();
    let map = ErrorMap::survey(&lattice, &field, &*model, cfg.policy);
    TrialSample {
        mean: map.mean_error(),
        median: map.median_error(),
        unheard_fraction: map.unheard_count() as f64 / map.len() as f64,
    }
}

/// Runs the full density sweep at one noise level.
///
/// Deterministic in `cfg.seed`; parallel over trials.
pub fn run(cfg: &SimConfig, noise: f64) -> Vec<DensityErrorPoint> {
    cfg.beacon_counts
        .iter()
        .enumerate()
        .map(|(di, &beacons)| {
            let samples = parallel_map(cfg.trials, cfg.threads, |t| {
                run_trial(cfg, noise, beacons, cfg.trial_seed(di, t))
            });
            aggregate(cfg, beacons, &samples)
        })
        .collect()
}

fn aggregate(cfg: &SimConfig, beacons: usize, samples: &[TrialSample]) -> DensityErrorPoint {
    let mut mean_w = Welford::new();
    let mut median_w = Welford::new();
    let mut unheard = 0.0;
    for s in samples {
        mean_w.push(s.mean);
        median_w.push(s.median);
        unheard += s.unheard_fraction;
    }
    DensityErrorPoint {
        beacons,
        density: cfg.density_of(beacons),
        per_coverage: cfg.per_coverage(beacons),
        mean_error: ConfidenceInterval::from_moments(
            mean_w.mean(),
            mean_w.sample_std(),
            mean_w.count(),
        ),
        median_error: ConfidenceInterval::from_moments(
            median_w.mean(),
            median_w.sample_std(),
            median_w.count(),
        ),
        unheard_fraction: unheard / samples.len().max(1) as f64,
    }
}

/// The *saturation beacon density*: the lowest density whose mean error is
/// within `tolerance` (relative) of the plateau (the sweep's minimum mean
/// error). The paper reads ≈ 0.01 /m² off Figure 4 and reports it growing
/// ≈ 50 % as noise rises to 0.5.
///
/// Returns `None` for an empty sweep.
pub fn saturation_density(points: &[DensityErrorPoint], tolerance: f64) -> Option<f64> {
    let plateau = points
        .iter()
        .map(|p| p.mean_error.estimate)
        .fold(f64::INFINITY, f64::min);
    points
        .iter()
        .find(|p| p.mean_error.estimate <= plateau * (1.0 + tolerance))
        .map(|p| p.density)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            trials: 12,
            ..SimConfig::tiny()
        }
    }

    #[test]
    fn error_decreases_with_density() {
        let points = run(&cfg(), 0.0);
        assert_eq!(points.len(), 3);
        assert!(
            points[0].mean_error.estimate > points[1].mean_error.estimate,
            "20 beacons must be worse than 100"
        );
        assert!(
            points[1].mean_error.estimate > points[2].mean_error.estimate - 0.5,
            "100 -> 240 should plateau, not rise"
        );
        // Coverage improves too.
        assert!(points[0].unheard_fraction > points[2].unheard_fraction);
    }

    #[test]
    fn saturates_near_paper_value() {
        // With the paper's geometry, error at 240 beacons is a small
        // fraction of R even on a coarse lattice.
        let points = run(&cfg(), 0.0);
        let last = points.last().unwrap();
        assert!(
            last.mean_error.estimate < 0.5 * 15.0,
            "saturated error {} too high",
            last.mean_error.estimate
        );
    }

    #[test]
    fn noise_raises_error() {
        let mut c = cfg();
        c.beacon_counts = vec![100];
        let ideal = run(&c, 0.0)[0].mean_error.estimate;
        let noisy = run(&c, 0.5)[0].mean_error.estimate;
        assert!(
            noisy > ideal,
            "noise 0.5 must raise mean error ({ideal} -> {noisy})"
        );
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let mut c = cfg();
        c.beacon_counts = vec![60];
        c.trials = 10;
        let a = run(&c, 0.3);
        let b = run(&c, 0.3);
        assert_eq!(a, b);
        let mut c1 = c.clone();
        c1.threads = 1;
        let seq = run(&c1, 0.3);
        assert_eq!(a, seq, "results must not depend on thread count");
    }

    #[test]
    fn confidence_interval_shrinks_with_trials() {
        let mut few = cfg();
        few.beacon_counts = vec![60];
        few.trials = 6;
        let mut many = few.clone();
        many.trials = 48;
        let a = run(&few, 0.0)[0].mean_error.half_width;
        let b = run(&many, 0.0)[0].mean_error.half_width;
        assert!(b < a, "CI must shrink: {a} -> {b}");
    }

    #[test]
    fn saturation_density_detects_knee() {
        let points = vec![
            fake_point(20, 0.002, 20.0),
            fake_point(60, 0.006, 8.0),
            fake_point(100, 0.010, 4.2),
            fake_point(140, 0.014, 4.05),
            fake_point(240, 0.024, 4.0),
        ];
        let sat = saturation_density(&points, 0.1).unwrap();
        assert_eq!(sat, 0.010);
        assert!(saturation_density(&[], 0.1).is_none());
    }

    fn fake_point(beacons: usize, density: f64, mean: f64) -> DensityErrorPoint {
        DensityErrorPoint {
            beacons,
            density,
            per_coverage: 0.0,
            mean_error: ConfidenceInterval {
                estimate: mean,
                half_width: 0.1,
            },
            median_error: ConfidenceInterval::default(),
            unheard_fraction: 0.0,
        }
    }

    #[test]
    fn exclude_policy_also_works() {
        let mut c = cfg();
        c.policy = abp_localize::UnheardPolicy::Exclude;
        c.beacon_counts = vec![100];
        let points = run(&c, 0.0);
        // Excluding unheard points yields bounded errors (≈ within R
        // plus multi-beacon centroid effects).
        assert!(points[0].mean_error.estimate < 15.0);
    }
}
