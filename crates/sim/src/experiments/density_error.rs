//! Mean localization error vs beacon density (Figures 4 and 6).
//!
//! For each beacon count the experiment generates `trials` independent
//! random fields, surveys each under the configured propagation model, and
//! aggregates the per-field mean (and median) localization error with
//! 95 % confidence intervals — exactly the procedure behind Figure 4
//! (ideal) and Figure 6 (noise 0.1/0.3/0.5).

use crate::config::SimConfig;
use crate::progress::{Ctx, TrialFailureReport};
use crate::runner::{parallel_try_map, supervised_try_map};
use abp_geom::splitmix64;
use abp_stats::{ConfidenceInterval, Welford};
use abp_survey::ErrorMap;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// One density point of the error-vs-density curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityErrorPoint {
    /// Number of beacons deployed.
    pub beacons: usize,
    /// Deployment density, beacons per m².
    pub density: f64,
    /// Beacons per nominal radio coverage area (`density · πR²`).
    pub per_coverage: f64,
    /// Mean localization error over the terrain, averaged over trials.
    pub mean_error: ConfidenceInterval,
    /// Median localization error over the terrain, averaged over trials.
    pub median_error: ConfidenceInterval,
    /// Average fraction of lattice points hearing no beacon.
    pub unheard_fraction: f64,
}

/// Per-trial raw sample (exposed for tests and custom aggregation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialSample {
    /// Mean localization error of this field.
    pub mean: f64,
    /// Median localization error of this field.
    pub median: f64,
    /// Fraction of lattice points hearing no beacon.
    pub unheard_fraction: f64,
}

/// Runs one trial: generate a field, survey it, summarize.
///
/// The survey runs through this worker thread's [`crate::TrialScratch`]
/// (`ErrorMap::survey_indexed_with`), so the steady-state trial loop
/// reuses the error-map grids, spatial index, and quantile workspace
/// instead of reallocating them — with results **bit-identical** to the
/// historical beacon-major `ErrorMap::survey` (all sweep variants
/// accumulate each point's heard beacons in the same ascending insertion
/// order; asserted by `four_sweeps_bit_identical` in `abp-survey` and at
/// scale in `tests/indexing.rs`).
pub fn run_trial(cfg: &SimConfig, noise: f64, beacons: usize, trial_seed: u64) -> TrialSample {
    let field = cfg.trial_field(beacons, trial_seed);
    let model = cfg.model(noise, splitmix64(trial_seed ^ 0x4E_01_5E));
    let lattice = cfg.lattice();
    crate::scratch::with_trial_scratch(|scratch| {
        let map = ErrorMap::survey_indexed_with(
            &lattice,
            &field,
            &*model,
            cfg.policy,
            &mut scratch.survey,
        );
        let sample = TrialSample {
            mean: map.mean_error(),
            median: scratch.survey.median_error(&map),
            unheard_fraction: map.unheard_count() as f64 / map.len() as f64,
        };
        scratch.survey.recycle(map);
        sample
    })
}

/// The name sweeps of this experiment report to probes and checkpoints.
pub const EXPERIMENT: &str = "density-error";

/// The outcome of a fault-tolerant density sweep: one point per density
/// plus a report for every trial that panicked. Failed trials are simply
/// absent from the statistics (their density's CI reflects the surviving
/// sample count).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// One aggregated point per configured beacon count.
    pub points: Vec<DensityErrorPoint>,
    /// Every trial that panicked, in (density, trial) order.
    pub failures: Vec<TrialFailureReport>,
}

/// Runs the full density sweep at one noise level.
///
/// Deterministic in `cfg.seed`; parallel over trials. A panicking trial
/// aborts the whole run (the legacy contract); use [`run_sweep`] to
/// survive trial faults instead.
pub fn run(cfg: &SimConfig, noise: f64) -> Vec<DensityErrorPoint> {
    let outcome = run_sweep(cfg, noise, Ctx::noop());
    if let Some(first) = outcome.failures.first() {
        panic!("{first}");
    }
    outcome.points
}

/// Runs the full density sweep at one noise level, reporting progress to
/// `ctx.probe`, persisting each completed density to `ctx.checkpoint`
/// (when present), and surviving panicking trials.
///
/// Deterministic in `cfg.seed` and thread-count invariant. With a
/// checkpoint, densities completed by an earlier interrupted run are
/// restored bit for bit instead of recomputed.
pub fn run_sweep(cfg: &SimConfig, noise: f64, ctx: Ctx<'_>) -> SweepOutcome {
    run_sweep_with(cfg, noise, ctx, run_trial)
}

/// [`run_sweep`] with a custom trial function — the fault-injection seam:
/// tests substitute a trial that panics at a chosen index and assert the
/// sweep completes with the failure reported.
///
/// When `ctx.policy` is active the sweep runs on the supervised engine:
/// failed attempts are retried with [`SimConfig::retry_seed`]-derived
/// seeds after exponential backoff, and a watchdog abandons attempts
/// exceeding the per-trial timeout (recorded as structured timeouts).
/// Healthy trials always run attempt 0 with the plain trial seed, so a
/// fault-free sweep is bit-identical under any policy.
pub fn run_sweep_with<F>(cfg: &SimConfig, noise: f64, ctx: Ctx<'_>, trial: F) -> SweepOutcome
where
    F: Fn(&SimConfig, f64, usize, u64) -> TrialSample + Send + Sync + 'static,
{
    // The supervised engine's workers are detached threads, so the trial
    // function and config cross into `'static` land behind `Arc`s.
    let trial = Arc::new(trial);
    let shared_cfg = Arc::new(cfg.clone());
    let mut points = Vec::with_capacity(cfg.beacon_counts.len());
    let mut failures = Vec::new();
    // One checkpoint-row staging buffer for the whole sweep.
    let mut row = BytesMut::with_capacity(80);
    for (di, &beacons) in cfg.beacon_counts.iter().enumerate() {
        // The key carries the noise *style* as well as the level: callers
        // (e.g. the noise-style ablation) sweep styles within one run, and
        // the shared checkpoint must keep their entries apart.
        let key = format!(
            "{EXPERIMENT}/style={}/noise={noise}/di={di}/beacons={beacons}",
            cfg.noise_style
        );
        if let Some(entry) = ctx.checkpoint.and_then(|c| c.get(&key)) {
            if let Some((point, mut restored)) = decode_density_entry(&entry) {
                for f in &mut restored {
                    f.density_index = di;
                }
                ctx.probe
                    .sweep_done(EXPERIMENT, beacons, std::time::Duration::ZERO, true);
                points.push(point);
                failures.extend(restored);
                continue;
            }
        }
        ctx.probe.sweep_start(EXPERIMENT, beacons, cfg.trials);
        let started = Instant::now();
        let (samples, sweep_failures) = if ctx.policy.is_active() {
            let worker_cfg = Arc::clone(&shared_cfg);
            let worker_trial = Arc::clone(&trial);
            let outcome = supervised_try_map(
                cfg.trials,
                cfg.threads,
                ctx.policy,
                move |t, attempt| {
                    let _span = abp_trace::span!("trial.density_error");
                    worker_trial(
                        &worker_cfg,
                        noise,
                        beacons,
                        worker_cfg.retry_seed(di, t, attempt),
                    )
                },
                crate::progress::forward_trial_events(ctx.probe, EXPERIMENT, di, beacons),
            );
            let sweep_failures: Vec<TrialFailureReport> = outcome
                .failures
                .iter()
                .map(|f| TrialFailureReport {
                    experiment: EXPERIMENT,
                    density_index: di,
                    beacons,
                    trial: f.index,
                    seed: cfg.retry_seed(di, f.index, f.attempts.saturating_sub(1)),
                    message: f.fault.to_string(),
                })
                .collect();
            let samples: Vec<TrialSample> = outcome.successes.into_iter().map(|(_, s)| s).collect();
            (samples, sweep_failures)
        } else {
            let outcome = parallel_try_map(cfg.trials, cfg.threads, |t| {
                let _span = abp_trace::span!("trial.density_error");
                let begun = Instant::now();
                let sample = trial(cfg, noise, beacons, cfg.trial_seed(di, t));
                ctx.probe.trial_done(begun.elapsed());
                sample
            });
            let sweep_failures: Vec<TrialFailureReport> = outcome
                .failures
                .into_iter()
                .map(|f| TrialFailureReport {
                    experiment: EXPERIMENT,
                    density_index: di,
                    beacons,
                    trial: f.index,
                    seed: cfg.trial_seed(di, f.index),
                    message: f.message,
                })
                .collect();
            let samples: Vec<TrialSample> = outcome.successes.into_iter().map(|(_, s)| s).collect();
            (samples, sweep_failures)
        };
        for f in &sweep_failures {
            ctx.probe.trial_failed(f);
        }
        let point = aggregate(cfg, beacons, &samples);
        if let Some(ckpt) = ctx.checkpoint {
            if let Err(e) = ckpt.put(
                &key,
                encode_density_entry_into(&mut row, &point, &sweep_failures),
            ) {
                eprintln!(
                    "warning: checkpoint save to {} failed: {e}",
                    ckpt.path().display()
                );
            }
        }
        ctx.probe
            .sweep_done(EXPERIMENT, beacons, started.elapsed(), false);
        points.push(point);
        failures.extend(sweep_failures);
    }
    SweepOutcome { points, failures }
}

/// Encodes one completed density (point + its failures) for the
/// checkpoint. All floats travel as raw IEEE bits — decoding restores the
/// exact values, which is what makes resumed figures bit-identical.
/// The sweep keeps one `BytesMut` row staging buffer alive across
/// densities, so only the final owned `Vec<u8>` the checkpoint stores is
/// allocated per row.
fn encode_density_entry_into(
    buf: &mut BytesMut,
    point: &DensityErrorPoint,
    failures: &[TrialFailureReport],
) -> Vec<u8> {
    buf.clear();
    buf.put_u64(point.beacons as u64);
    buf.put_f64(point.density);
    buf.put_f64(point.per_coverage);
    buf.put_f64(point.mean_error.estimate);
    buf.put_f64(point.mean_error.half_width);
    buf.put_f64(point.median_error.estimate);
    buf.put_f64(point.median_error.half_width);
    buf.put_f64(point.unheard_fraction);
    buf.put_u32(failures.len() as u32);
    for f in failures {
        buf.put_u64(f.trial as u64);
        buf.put_u64(f.seed);
        buf.put_u32(f.message.len() as u32);
        buf.put_slice(f.message.as_bytes());
    }
    buf.to_vec()
}

fn decode_density_entry(raw: &[u8]) -> Option<(DensityErrorPoint, Vec<TrialFailureReport>)> {
    let mut buf = raw;
    if buf.remaining() < 8 * 8 + 4 {
        return None;
    }
    let beacons = buf.get_u64() as usize;
    let point = DensityErrorPoint {
        beacons,
        density: buf.get_f64(),
        per_coverage: buf.get_f64(),
        mean_error: ConfidenceInterval {
            estimate: buf.get_f64(),
            half_width: buf.get_f64(),
        },
        median_error: ConfidenceInterval {
            estimate: buf.get_f64(),
            half_width: buf.get_f64(),
        },
        unheard_fraction: buf.get_f64(),
    };
    let n_failures = buf.get_u32();
    let mut failures = Vec::with_capacity(n_failures as usize);
    for _ in 0..n_failures {
        if buf.remaining() < 8 + 8 + 4 {
            return None;
        }
        let trial = buf.get_u64() as usize;
        let seed = buf.get_u64();
        let mlen = buf.get_u32() as usize;
        if buf.remaining() < mlen {
            return None;
        }
        let message = String::from_utf8(buf[..mlen].to_vec()).ok()?;
        buf = &buf[mlen..];
        failures.push(TrialFailureReport {
            experiment: EXPERIMENT,
            // The density index is not stored; the caller patches it in
            // from the checkpoint key it used to look this entry up.
            density_index: usize::MAX,
            beacons,
            trial,
            seed,
            message,
        });
    }
    if buf.remaining() != 0 {
        return None;
    }
    Some((point, failures))
}

fn aggregate(cfg: &SimConfig, beacons: usize, samples: &[TrialSample]) -> DensityErrorPoint {
    let mut mean_w = Welford::new();
    let mut median_w = Welford::new();
    let mut unheard = 0.0;
    for s in samples {
        mean_w.push(s.mean);
        median_w.push(s.median);
        unheard += s.unheard_fraction;
    }
    DensityErrorPoint {
        beacons,
        density: cfg.density_of(beacons),
        per_coverage: cfg.per_coverage(beacons),
        mean_error: ConfidenceInterval::from_moments(
            mean_w.mean(),
            mean_w.sample_std(),
            mean_w.count(),
        ),
        median_error: ConfidenceInterval::from_moments(
            median_w.mean(),
            median_w.sample_std(),
            median_w.count(),
        ),
        unheard_fraction: unheard / samples.len().max(1) as f64,
    }
}

/// The *saturation beacon density*: the lowest density whose mean error is
/// within `tolerance` (relative) of the plateau (the sweep's minimum mean
/// error). The paper reads ≈ 0.01 /m² off Figure 4 and reports it growing
/// ≈ 50 % as noise rises to 0.5.
///
/// Returns `None` for an empty sweep.
pub fn saturation_density(points: &[DensityErrorPoint], tolerance: f64) -> Option<f64> {
    let plateau = points
        .iter()
        .map(|p| p.mean_error.estimate)
        .fold(f64::INFINITY, f64::min);
    points
        .iter()
        .find(|p| p.mean_error.estimate <= plateau * (1.0 + tolerance))
        .map(|p| p.density)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            trials: 12,
            ..SimConfig::tiny()
        }
    }

    #[test]
    fn error_decreases_with_density() {
        let points = run(&cfg(), 0.0);
        assert_eq!(points.len(), 3);
        assert!(
            points[0].mean_error.estimate > points[1].mean_error.estimate,
            "20 beacons must be worse than 100"
        );
        assert!(
            points[1].mean_error.estimate > points[2].mean_error.estimate - 0.5,
            "100 -> 240 should plateau, not rise"
        );
        // Coverage improves too.
        assert!(points[0].unheard_fraction > points[2].unheard_fraction);
    }

    #[test]
    fn saturates_near_paper_value() {
        // With the paper's geometry, error at 240 beacons is a small
        // fraction of R even on a coarse lattice.
        let points = run(&cfg(), 0.0);
        let last = points.last().unwrap();
        assert!(
            last.mean_error.estimate < 0.5 * 15.0,
            "saturated error {} too high",
            last.mean_error.estimate
        );
    }

    #[test]
    fn noise_raises_error() {
        let mut c = cfg();
        c.beacon_counts = vec![100];
        let ideal = run(&c, 0.0)[0].mean_error.estimate;
        let noisy = run(&c, 0.5)[0].mean_error.estimate;
        assert!(
            noisy > ideal,
            "noise 0.5 must raise mean error ({ideal} -> {noisy})"
        );
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let mut c = cfg();
        c.beacon_counts = vec![60];
        c.trials = 10;
        let a = run(&c, 0.3);
        let b = run(&c, 0.3);
        assert_eq!(a, b);
        let mut c1 = c.clone();
        c1.threads = 1;
        let seq = run(&c1, 0.3);
        assert_eq!(a, seq, "results must not depend on thread count");
    }

    #[test]
    fn confidence_interval_shrinks_with_trials() {
        let mut few = cfg();
        few.beacon_counts = vec![60];
        few.trials = 6;
        let mut many = few.clone();
        many.trials = 48;
        let a = run(&few, 0.0)[0].mean_error.half_width;
        let b = run(&many, 0.0)[0].mean_error.half_width;
        assert!(b < a, "CI must shrink: {a} -> {b}");
    }

    #[test]
    fn saturation_density_detects_knee() {
        let points = vec![
            fake_point(20, 0.002, 20.0),
            fake_point(60, 0.006, 8.0),
            fake_point(100, 0.010, 4.2),
            fake_point(140, 0.014, 4.05),
            fake_point(240, 0.024, 4.0),
        ];
        let sat = saturation_density(&points, 0.1).unwrap();
        assert_eq!(sat, 0.010);
        assert!(saturation_density(&[], 0.1).is_none());
    }

    fn fake_point(beacons: usize, density: f64, mean: f64) -> DensityErrorPoint {
        DensityErrorPoint {
            beacons,
            density,
            per_coverage: 0.0,
            mean_error: ConfidenceInterval {
                estimate: mean,
                half_width: 0.1,
            },
            median_error: ConfidenceInterval::default(),
            unheard_fraction: 0.0,
        }
    }

    #[test]
    fn injected_panic_is_isolated_and_reported() {
        let mut c = cfg();
        c.beacon_counts = vec![60];
        c.trials = 16;
        let bad = c.trial_seed(0, 5);
        let outcome = run_sweep_with(&c, 0.0, Ctx::noop(), move |cfg, noise, beacons, seed| {
            if seed == bad {
                panic!("injected fault");
            }
            run_trial(cfg, noise, beacons, seed)
        });
        assert_eq!(outcome.points.len(), 1, "sweep must complete");
        assert_eq!(outcome.failures.len(), 1);
        let f = &outcome.failures[0];
        assert_eq!(f.experiment, EXPERIMENT);
        assert_eq!(f.density_index, 0);
        assert_eq!(f.beacons, 60);
        assert_eq!(f.trial, 5, "report must name the failing trial");
        assert_eq!(f.seed, bad, "report must name the derived seed");
        assert!(f.message.contains("injected fault"));
        // Survivor statistics must equal aggregating the 15 good trials.
        let survivors: Vec<TrialSample> = (0..16)
            .filter(|&t| t != 5)
            .map(|t| run_trial(&c, 0.0, 60, c.trial_seed(0, t)))
            .collect();
        assert_eq!(outcome.points[0], aggregate(&c, 60, &survivors));
    }

    #[test]
    fn supervised_healthy_sweep_is_bit_identical_to_plain() {
        use crate::runner::RunPolicy;
        use std::time::Duration;
        let mut c = cfg();
        c.beacon_counts = vec![60];
        c.trials = 8;
        let plain = run_sweep(&c, 0.2, Ctx::noop());
        let policy = RunPolicy {
            retries: 3,
            trial_timeout: Some(Duration::from_secs(120)),
            backoff: Duration::from_millis(1),
        };
        let supervised = run_sweep(&c, 0.2, Ctx::noop().with_policy(policy));
        assert_eq!(
            plain.points, supervised.points,
            "a fault-free sweep must not change under an active policy"
        );
        assert!(supervised.failures.is_empty());
    }

    #[test]
    fn sweep_retries_flaky_trial_and_counts_it_exactly_once() {
        use crate::runner::RunPolicy;
        use std::time::Duration;
        let mut c = cfg();
        c.beacon_counts = vec![60];
        c.trials = 12;
        // Trial 5 panics on its first two attempts (identified by their
        // derived seeds) and succeeds on the third.
        let bad0 = c.retry_seed(0, 5, 0);
        let bad1 = c.retry_seed(0, 5, 1);
        let policy = RunPolicy {
            retries: 2,
            trial_timeout: None,
            backoff: Duration::from_millis(1),
        };
        let outcome = run_sweep_with(
            &c,
            0.0,
            Ctx::noop().with_policy(policy),
            move |cfg, noise, beacons, seed| {
                if seed == bad0 || seed == bad1 {
                    panic!("flaky trial");
                }
                run_trial(cfg, noise, beacons, seed)
            },
        );
        assert!(outcome.failures.is_empty(), "retries must absorb the fault");
        // Expected statistics: all trials at their attempt-0 seeds except
        // trial 5, which contributes its attempt-2 sample — exactly once.
        let samples: Vec<TrialSample> = (0..12)
            .map(|t| {
                let seed = if t == 5 {
                    c.retry_seed(0, 5, 2)
                } else {
                    c.trial_seed(0, t)
                };
                run_trial(&c, 0.0, 60, seed)
            })
            .collect();
        assert_eq!(outcome.points[0], aggregate(&c, 60, &samples));
    }

    #[test]
    fn sweep_reports_trial_that_exhausts_retries() {
        use crate::runner::RunPolicy;
        use std::time::Duration;
        let mut c = cfg();
        c.beacon_counts = vec![60];
        c.trials = 6;
        let victim: Vec<u64> = (0..2).map(|a| c.retry_seed(0, 2, a)).collect();
        let policy = RunPolicy {
            retries: 1,
            trial_timeout: None,
            backoff: Duration::from_millis(1),
        };
        let outcome = run_sweep_with(
            &c,
            0.0,
            Ctx::noop().with_policy(policy),
            move |cfg, noise, beacons, seed| {
                if victim.contains(&seed) {
                    panic!("always fails");
                }
                run_trial(cfg, noise, beacons, seed)
            },
        );
        assert_eq!(outcome.failures.len(), 1);
        let f = &outcome.failures[0];
        assert_eq!(f.trial, 2);
        assert_eq!(
            f.seed,
            c.retry_seed(0, 2, 1),
            "report must carry the final attempt's seed"
        );
        assert!(f.message.contains("always fails"));
        assert_eq!(outcome.points.len(), 1, "sweep still completes");
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let mut c = cfg();
        c.beacon_counts = vec![20, 60];
        c.trials = 8;
        let noise = 0.1;
        let full = run_sweep(&c, noise, Ctx::noop());

        let mut path = std::env::temp_dir();
        path.push(format!("abp-density-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // Simulate a run interrupted after the first density: seed the
        // checkpoint with only that entry, then resume the whole sweep.
        let ckpt = crate::checkpoint::SweepCheckpoint::open(&path, c.fingerprint()).unwrap();
        let key = format!(
            "{EXPERIMENT}/style={}/noise={noise}/di=0/beacons=20",
            c.noise_style
        );
        ckpt.put(
            &key,
            encode_density_entry_into(&mut BytesMut::with_capacity(80), &full.points[0], &[]),
        )
        .unwrap();

        let probe = crate::progress::NoopProbe;
        let resumed = run_sweep(&c, noise, Ctx::new(&probe).with_checkpoint(&ckpt));
        assert_eq!(
            resumed.points, full.points,
            "resumed sweep must be bit-identical to the uninterrupted one"
        );
        assert_eq!(ckpt.len(), 2, "second density must have been persisted");

        // A third run restores everything from the checkpoint.
        let replay = run_sweep(&c, noise, Ctx::new(&probe).with_checkpoint(&ckpt));
        assert_eq!(replay.points, full.points);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exclude_policy_also_works() {
        let mut c = cfg();
        c.policy = abp_localize::UnheardPolicy::Exclude;
        c.beacon_counts = vec![100];
        let points = run(&c, 0.0);
        // Excluding unheard points yields bounded errors (≈ within R
        // plus multi-beacon centroid effects).
        assert!(points[0].mean_error.estimate < 15.0);
    }
}
