//! Placement robustness to imperfect exploration (paper §3.1).
//!
//! The paper's evaluation assumes "complete terrain exploration and no
//! measurement noise" and leaves the generalization as ongoing work. This
//! experiment implements it: degrade the survey the placement algorithm
//! *sees* — by exploring only a fraction of the lattice, or by measuring
//! through a noisy GPS — then score the resulting placement against the
//! complete, noise-free truth:
//!
//! ```text
//! improvement(x) = mean LE(truth before) − mean LE(truth after placing
//!                  where the algorithm pointed, given the degraded view)
//! ```
//!
//! If the curve is flat, the algorithm is robust; where it collapses, the
//! paper's "solution space density" has run out (there are too few good
//! placements for a noisy view to still find one).

use crate::config::{AlgorithmKind, SimConfig};
use crate::progress::Ctx;
use crate::runner::parallel_map;
use abp_geom::splitmix64;
use abp_placement::SurveyView;
use abp_stats::{ConfidenceInterval, Welford};
use abp_survey::sampling::{survey_partial, SubsampleStrategy};
use abp_survey::{ErrorMap, Robot, SurveyPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One point of a robustness curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// The degradation parameter (exploration fraction, or GPS sigma in
    /// meters).
    pub x: f64,
    /// Improvement in true mean error achieved despite the degraded view.
    pub mean_improvement: ConfidenceInterval,
}

/// The name this experiment reports to probes.
pub const EXPERIMENT: &str = "robustness";

fn run_sweep<F>(
    cfg: &SimConfig,
    beacons: usize,
    xs: &[f64],
    ctx: Ctx<'_>,
    degrade: F,
) -> Vec<RobustnessPoint>
where
    F: Fn(f64, u64, &abp_field::BeaconField, &dyn abp_radio::Propagation) -> ErrorMap + Sync,
{
    xs.iter()
        .enumerate()
        .map(|(xi, &x)| {
            ctx.probe.sweep_start(EXPERIMENT, beacons, cfg.trials);
            let sweep_started = std::time::Instant::now();
            let samples = parallel_map(cfg.trials, cfg.threads, |t| {
                let begun = std::time::Instant::now();
                let trial_seed = cfg.trial_seed(xi, t);
                let field = cfg.trial_field(beacons, trial_seed);
                let model = cfg.model(0.0, splitmix64(trial_seed ^ 0x4E_01_5E));
                let lattice = cfg.lattice();
                let truth = ErrorMap::survey(&lattice, &field, &*model, cfg.policy);
                let view_map = degrade(x, trial_seed, &field, &*model);
                let algo = AlgorithmKind::Grid.build(cfg);
                let pos = {
                    let view = SurveyView {
                        map: &view_map,
                        field: &field,
                        model: &*model,
                    };
                    let mut rng = StdRng::seed_from_u64(splitmix64(trial_seed ^ 0xA160));
                    algo.propose(&view, &mut rng)
                };
                let mut extended = field.clone();
                let id = extended.add_beacon(pos);
                let mut after = truth.clone();
                after.add_beacon(extended.get(id).expect("just added"), &*model);
                let sample = truth.mean_error() - after.mean_error();
                ctx.probe.trial_done(begun.elapsed());
                sample
            });
            let w: Welford = samples.into_iter().collect();
            ctx.probe
                .sweep_done(EXPERIMENT, beacons, sweep_started.elapsed(), false);
            RobustnessPoint {
                x,
                mean_improvement: ConfidenceInterval::from_moments(
                    w.mean(),
                    w.sample_std(),
                    w.count(),
                ),
            }
        })
        .collect()
}

/// Sweeps the exploration fraction: the Grid algorithm sees only a random
/// `fraction` of the lattice measurements.
pub fn exploration_sweep(
    cfg: &SimConfig,
    beacons: usize,
    fractions: &[f64],
) -> Vec<RobustnessPoint> {
    exploration_sweep_with(cfg, beacons, fractions, Ctx::noop())
}

/// [`exploration_sweep`], reporting sweep and trial events to `ctx.probe`.
pub fn exploration_sweep_with(
    cfg: &SimConfig,
    beacons: usize,
    fractions: &[f64],
    ctx: Ctx<'_>,
) -> Vec<RobustnessPoint> {
    run_sweep(
        cfg,
        beacons,
        fractions,
        ctx,
        |fraction, trial_seed, field, model| {
            let lattice = cfg.lattice();
            let mut rng = StdRng::seed_from_u64(splitmix64(trial_seed ^ 0x5A3E));
            survey_partial(
                &lattice,
                field,
                model,
                cfg.policy,
                SubsampleStrategy::Random { fraction },
                &mut rng,
            )
        },
    )
}

/// Sweeps the GPS error: the Grid algorithm sees measurements taken by a
/// robot whose GPS has standard deviation `sigma` meters.
pub fn gps_noise_sweep(cfg: &SimConfig, beacons: usize, sigmas: &[f64]) -> Vec<RobustnessPoint> {
    gps_noise_sweep_with(cfg, beacons, sigmas, Ctx::noop())
}

/// [`gps_noise_sweep`], reporting sweep and trial events to `ctx.probe`.
pub fn gps_noise_sweep_with(
    cfg: &SimConfig,
    beacons: usize,
    sigmas: &[f64],
    ctx: Ctx<'_>,
) -> Vec<RobustnessPoint> {
    run_sweep(
        cfg,
        beacons,
        sigmas,
        ctx,
        |sigma, trial_seed, field, model| {
            let plan = SurveyPlan::from_lattice(cfg.lattice());
            let mut robot = Robot::new(sigma, 0, splitmix64(trial_seed ^ 0x9B5));
            let (map, _) = robot.survey(&plan, field, model, cfg.policy);
            map
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            trials: 24,
            ..SimConfig::tiny()
        }
    }

    #[test]
    fn full_exploration_matches_baseline_improvement() {
        let c = cfg();
        let points = exploration_sweep(&c, 40, &[1.0]);
        assert!(points[0].mean_improvement.estimate > 0.0);
    }

    #[test]
    fn grid_degrades_gracefully_with_sparse_exploration() {
        let c = cfg();
        let points = exploration_sweep(&c, 40, &[0.05, 0.25, 1.0]);
        let sparse = points[0].mean_improvement.estimate;
        let full = points[2].mean_improvement.estimate;
        // Even 5% exploration retains a substantial share of the gain:
        // the solution space at low density is dense in good placements.
        assert!(
            sparse > 0.25 * full,
            "5% exploration kept only {sparse} of {full}"
        );
        // A quarter of the terrain is nearly as good as all of it.
        assert!(points[1].mean_improvement.estimate > 0.6 * full);
    }

    #[test]
    fn gps_noise_degrades_gracefully() {
        let c = cfg();
        let points = gps_noise_sweep(&c, 40, &[0.0, 2.0]);
        let clean = points[0].mean_improvement.estimate;
        let noisy = points[1].mean_improvement.estimate;
        assert!(clean > 0.0);
        assert!(
            noisy > 0.5 * clean,
            "2 m GPS noise kept only {noisy} of {clean}"
        );
    }

    #[test]
    fn deterministic() {
        let c = cfg();
        let a = exploration_sweep(&c, 30, &[0.5]);
        let b = exploration_sweep(&c, 30, &[0.5]);
        assert_eq!(a, b);
    }
}
