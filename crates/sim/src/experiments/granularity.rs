//! Beacon density vs granularity of localization regions (Figure 1).
//!
//! Figure 1 argues the approach's premise pictorially: a 2×2 grid of
//! beacons yields "fewer and larger localization regions", a 3×3 grid
//! "more and smaller" ones, and finer regions mean lower error. This
//! experiment quantifies that with real region counts and errors for a
//! sweep of uniform `k × k` beacon grids.

use crate::config::SimConfig;
use crate::progress::Ctx;
use abp_field::generate::uniform_grid;
use abp_localize::regions::region_map;
use abp_survey::ErrorMap;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One row of the granularity table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GranularityRow {
    /// Beacons per grid side (`k` of the `k × k` grid).
    pub per_side: usize,
    /// Total beacons, `k²`.
    pub beacons: usize,
    /// Distinct localization regions over the survey lattice.
    pub regions: usize,
    /// Mean lattice points per region (region "size" proxy).
    pub mean_region_size: f64,
    /// Mean localization error over the lattice (m).
    pub mean_error: f64,
}

/// The name this experiment reports to probes.
pub const EXPERIMENT: &str = "granularity";

/// Runs the sweep for uniform `k × k` grids, `k ∈ per_sides`, under the
/// ideal radio model of `cfg`.
pub fn run(cfg: &SimConfig, per_sides: &[usize]) -> Vec<GranularityRow> {
    run_with(cfg, per_sides, Ctx::noop())
}

/// [`run`], reporting each grid survey to `ctx.probe`. The experiment is
/// deterministic (one survey per grid, no trials), so there is nothing to
/// checkpoint.
pub fn run_with(cfg: &SimConfig, per_sides: &[usize], ctx: Ctx<'_>) -> Vec<GranularityRow> {
    let lattice = cfg.lattice();
    let terrain = cfg.terrain();
    let model = cfg.model(0.0, 0);
    per_sides
        .iter()
        .map(|&k| {
            ctx.probe.sweep_start(EXPERIMENT, k * k, 1);
            let started = Instant::now();
            let field = uniform_grid(terrain, k);
            let regions = region_map(&lattice, &field, &*model);
            let map = ErrorMap::survey(&lattice, &field, &*model, cfg.policy);
            let row = GranularityRow {
                per_side: k,
                beacons: field.len(),
                regions: regions.region_count,
                mean_region_size: regions.mean_region_size(),
                mean_error: map.mean_error(),
            };
            ctx.probe.trial_done(started.elapsed());
            ctx.probe
                .sweep_done(EXPERIMENT, k * k, started.elapsed(), false);
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denser_grids_refine_regions_and_error() {
        let cfg = SimConfig::tiny();
        let rows = run(&cfg, &[2, 3, 5, 8]);
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(
                w[1].regions >= w[0].regions,
                "regions must not decrease: {:?} -> {:?}",
                w[0],
                w[1]
            );
            assert!(w[1].mean_region_size <= w[0].mean_region_size + 1e-9);
            assert!(
                w[1].mean_error <= w[0].mean_error + 1e-9,
                "error must not increase: {} -> {}",
                w[0].mean_error,
                w[1].mean_error
            );
        }
        // Figure 1's specific instances.
        assert_eq!(rows[0].beacons, 4);
        assert_eq!(rows[1].beacons, 9);
        assert!(rows[1].regions > rows[0].regions);
    }

    #[test]
    fn single_beacon_baseline() {
        let cfg = SimConfig::tiny();
        let rows = run(&cfg, &[1]);
        assert_eq!(rows[0].beacons, 1);
        // In-range vs out-of-range: exactly two regions.
        assert_eq!(rows[0].regions, 2);
    }
}
