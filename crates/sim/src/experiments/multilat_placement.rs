//! Beacon placement for multilateration-based localization (paper §6).
//!
//! "An interesting point of comparison are beacon placement algorithms
//! for multilateration based localization approaches, as the error
//! characteristics of the two are significantly different. In the former
//! approach, localization error is governed by beacon placement and
//! density, whereas in the latter approach, it is influenced by the
//! geometry of the beacon nodes. We plan to recast our existing beacon
//! placement algorithms for multilateration based localization
//! approaches."
//!
//! This experiment does the recast: the survey measures multilateration
//! error (least-squares from noisy ranges, falling back to the centroid
//! below three beacons), the same Random/Max/Grid algorithms consume the
//! resulting map, and the improvement metrics are recomputed under
//! multilateration. Because the localizer is not a centroid, the after-map
//! is a full re-survey rather than an incremental update.

use crate::config::{AlgorithmKind, SimConfig};
use crate::experiments::improvement::{AlgorithmImprovement, ImprovementPoint, TrialImprovement};
use crate::runner::parallel_map;
use abp_geom::splitmix64;
use abp_localize::MultilaterationLocalizer;
use abp_placement::SurveyView;
use abp_stats::{ConfidenceInterval, Welford};
use abp_survey::ErrorMap;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the multilateration placement sweep.
///
/// `range_sigma` is the relative range-measurement error of the
/// multilateration localizer (see
/// [`MultilaterationLocalizer::new`]).
///
/// Warning: this is the workspace's most expensive experiment per trial —
/// the localizer runs Gauss–Newton at every lattice point, twice per
/// algorithm. Use coarse steps.
pub fn run(
    cfg: &SimConfig,
    range_sigma: f64,
    algorithms: &[AlgorithmKind],
) -> Vec<AlgorithmImprovement> {
    let mut curves: Vec<AlgorithmImprovement> = algorithms
        .iter()
        .map(|&algorithm| AlgorithmImprovement {
            algorithm,
            points: Vec::with_capacity(cfg.beacon_counts.len()),
        })
        .collect();
    for (di, &beacons) in cfg.beacon_counts.iter().enumerate() {
        let samples: Vec<Vec<TrialImprovement>> = parallel_map(cfg.trials, cfg.threads, |t| {
            run_trial(cfg, range_sigma, beacons, cfg.trial_seed(di, t), algorithms)
        });
        for (ai, curve) in curves.iter_mut().enumerate() {
            let mut mean_w = Welford::new();
            let mut median_w = Welford::new();
            for trial in &samples {
                mean_w.push(trial[ai].mean);
                median_w.push(trial[ai].median);
            }
            curve.points.push(ImprovementPoint {
                beacons,
                density: cfg.density_of(beacons),
                mean_improvement: ConfidenceInterval::from_moments(
                    mean_w.mean(),
                    mean_w.sample_std(),
                    mean_w.count(),
                ),
                median_improvement: ConfidenceInterval::from_moments(
                    median_w.mean(),
                    median_w.sample_std(),
                    median_w.count(),
                ),
            });
        }
    }
    curves
}

fn run_trial(
    cfg: &SimConfig,
    range_sigma: f64,
    beacons: usize,
    trial_seed: u64,
    algorithms: &[AlgorithmKind],
) -> Vec<TrialImprovement> {
    let field = cfg.trial_field(beacons, trial_seed);
    let model = cfg.model(0.0, splitmix64(trial_seed ^ 0x4E_01_5E));
    let lattice = cfg.lattice();
    let localizer =
        MultilaterationLocalizer::new(range_sigma, splitmix64(trial_seed ^ 0x31A7), cfg.policy);
    let before = ErrorMap::survey_with_localizer(&lattice, &field, &*model, &localizer);
    let before_mean = before.mean_error();
    let before_median = before.median_error();
    algorithms
        .iter()
        .enumerate()
        .map(|(ai, kind)| {
            let algo = kind.build(cfg);
            let pos = {
                let view = SurveyView {
                    map: &before,
                    field: &field,
                    model: &*model,
                };
                let mut rng =
                    StdRng::seed_from_u64(splitmix64(trial_seed ^ (ai as u64) << 17 ^ 0xA160));
                algo.propose(&view, &mut rng)
            };
            let mut extended = field.clone();
            extended.add_beacon(pos);
            let after = ErrorMap::survey_with_localizer(&lattice, &extended, &*model, &localizer);
            TrialImprovement {
                mean: before_mean - after.mean_error(),
                median: before_median - after.median_error(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            step: 10.0, // Gauss-Newton at every point: keep it coarse
            trials: 8,
            beacon_counts: vec![30, 160],
            ..SimConfig::tiny()
        }
    }

    #[test]
    fn placement_still_helps_multilateration_at_low_density() {
        let curves = run(&cfg(), 0.05, &[AlgorithmKind::Grid]);
        let low = &curves[0].points[0];
        assert!(
            low.mean_improvement.estimate > 0.0,
            "grid placement should help multilateration too, got {}",
            low.mean_improvement.estimate
        );
    }

    #[test]
    fn gains_shrink_with_density_like_proximity() {
        let curves = run(&cfg(), 0.05, &[AlgorithmKind::Grid]);
        let low = curves[0].points[0].mean_improvement.estimate;
        let high = curves[0].points[1].mean_improvement.estimate;
        assert!(
            high < low,
            "gains must shrink with density: {low} -> {high}"
        );
    }

    #[test]
    fn runs_all_paper_algorithms() {
        let mut c = cfg();
        c.beacon_counts = vec![40];
        c.trials = 4;
        let curves = run(&c, 0.05, &AlgorithmKind::PAPER);
        assert_eq!(curves.len(), 3);
        for curve in &curves {
            assert!(curve.points[0].mean_improvement.estimate.is_finite());
        }
    }

    #[test]
    fn deterministic() {
        let mut c = cfg();
        c.beacon_counts = vec![40];
        c.trials = 4;
        let a = run(&c, 0.05, &[AlgorithmKind::Max]);
        let b = run(&c, 0.05, &[AlgorithmKind::Max]);
        assert_eq!(a, b);
    }
}
