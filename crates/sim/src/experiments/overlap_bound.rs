//! Centroid error vs range-overlap ratio (§2.2).
//!
//! Under uniform beacon placement with separation `d` the paper reports
//! (citing its reference \[2\]) that the maximum centroid-localization error
//! is bounded by `0.5 d` at range-overlap ratio `R/d = 1` and "falls off
//! considerably (to `0.25 d`)" by `R/d = 4`. This experiment measures the
//! actual maximum and mean error, normalized by `d`, over the *interior*
//! of a large uniform grid (interior, because the published bound ignores
//! terrain edges, where centroids are systematically biased inward).

use abp_field::generate::grid_with_spacing;
use abp_geom::{Lattice, Terrain};
use abp_localize::UnheardPolicy;
use abp_radio::IdealDisk;
use abp_survey::ErrorMap;
use serde::{Deserialize, Serialize};

/// Parameters of the overlap-ratio sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundConfig {
    /// Beacon separation `d` (m).
    pub spacing: f64,
    /// Terrain side (m) — large relative to `spacing` so an interior
    /// exists.
    pub side: f64,
    /// Survey step (m).
    pub step: f64,
    /// Margin from the terrain edge excluded from statistics (m); must
    /// exceed the largest `R` swept.
    pub interior_margin: f64,
    /// The `R/d` ratios to sweep.
    pub ratios: Vec<f64>,
}

impl Default for BoundConfig {
    fn default() -> Self {
        BoundConfig {
            spacing: 10.0,
            side: 200.0,
            step: 1.0,
            interior_margin: 60.0,
            ratios: (4..=16).map(|k| k as f64 * 0.25).collect(), // 1.0 ..= 4.0
        }
    }
}

/// One ratio point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundPoint {
    /// The range-overlap ratio `R/d`.
    pub ratio: f64,
    /// Maximum interior error as a fraction of `d`.
    pub max_error_over_d: f64,
    /// Mean interior error as a fraction of `d`.
    pub mean_error_over_d: f64,
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics if the margin does not leave an interior, or a swept `R`
/// exceeds the margin (edge effects would leak into the statistics).
pub fn run(cfg: &BoundConfig) -> Vec<BoundPoint> {
    assert!(
        2.0 * cfg.interior_margin < cfg.side,
        "margin {} leaves no interior in side {}",
        cfg.interior_margin,
        cfg.side
    );
    let max_r = cfg.ratios.iter().copied().fold(0.0f64, f64::max) * cfg.spacing;
    assert!(
        max_r <= cfg.interior_margin,
        "largest swept R = {max_r} exceeds the interior margin {}",
        cfg.interior_margin
    );
    let terrain = Terrain::square(cfg.side);
    let lattice = Lattice::new(terrain, cfg.step);
    let field = grid_with_spacing(terrain, cfg.spacing);
    cfg.ratios
        .iter()
        .map(|&ratio| {
            let model = IdealDisk::new(ratio * cfg.spacing);
            let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
            let lo = cfg.interior_margin;
            let hi = cfg.side - cfg.interior_margin;
            let mut max_e = 0.0f64;
            let mut sum = 0.0;
            let mut n = 0usize;
            for ix in lattice.indices() {
                let p = lattice.point(ix);
                if p.x < lo || p.x > hi || p.y < lo || p.y > hi {
                    continue;
                }
                let e = map.error_at(ix).expect("TerrainCenter never excludes");
                max_e = max_e.max(e);
                sum += e;
                n += 1;
            }
            BoundPoint {
                ratio,
                max_error_over_d: max_e / cfg.spacing,
                mean_error_over_d: sum / (n as f64 * cfg.spacing),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> BoundConfig {
        BoundConfig {
            step: 2.0,
            ratios: vec![1.0, 2.0, 4.0],
            ..BoundConfig::default()
        }
    }

    #[test]
    fn max_error_bounded_by_half_spacing_at_ratio_one() {
        let points = run(&quick_cfg());
        let at_one = &points[0];
        assert!(
            at_one.max_error_over_d <= 0.5 + 0.05,
            "R/d = 1 max error {} d exceeds the 0.5 d bound",
            at_one.max_error_over_d
        );
        assert!(at_one.max_error_over_d > 0.2, "suspiciously small");
    }

    #[test]
    fn error_falls_with_overlap_ratio() {
        let points = run(&quick_cfg());
        assert!(
            points[2].max_error_over_d < points[0].max_error_over_d,
            "max error must fall from R/d=1 ({}) to R/d=4 ({})",
            points[0].max_error_over_d,
            points[2].max_error_over_d
        );
        assert!(
            points[2].max_error_over_d <= 0.30,
            "R/d = 4 max error {} d should approach the 0.25 d figure",
            points[2].max_error_over_d
        );
        assert!(points[2].mean_error_over_d < points[0].mean_error_over_d);
    }

    #[test]
    #[should_panic(expected = "exceeds the interior margin")]
    fn rejects_radius_leaking_past_margin() {
        let cfg = BoundConfig {
            ratios: vec![10.0],
            ..quick_cfg()
        };
        let _ = run(&cfg);
    }
}
