//! Localizer comparison: how much estimator sophistication buys.
//!
//! The paper fixes the centroid estimator and varies placement; its §2.2
//! footnote and §6 sketch richer estimators (full locus information,
//! multilateration). This experiment holds the fields fixed and varies
//! the estimator instead, answering the complementary question: at a
//! given beacon density, how much error comes from *placement* and how
//! much from the *estimator*?
//!
//! Compared: the paper's centroid, the distance-weighted centroid
//! (`gamma = 1`), the polygonal locus centroid, and least-squares
//! multilateration — all on identical fields under the ideal radio.

use crate::config::SimConfig;
use crate::runner::parallel_map;
use abp_geom::splitmix64;
use abp_localize::{
    CentroidLocalizer, Localizer, LocusLocalizer, MultilaterationLocalizer,
    WeightedCentroidLocalizer,
};
use abp_stats::{ConfidenceInterval, Welford};
use abp_survey::ErrorMap;
use serde::{Deserialize, Serialize};

/// Which localizers the comparison runs, in output order.
pub const LOCALIZER_NAMES: [&str; 4] =
    ["centroid", "weighted-centroid", "locus", "multilateration"];

/// One density point: mean error per localizer, paper order
/// ([`LOCALIZER_NAMES`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalizerPoint {
    /// Number of beacons.
    pub beacons: usize,
    /// Deployment density, beacons per m².
    pub density: f64,
    /// Mean localization error per localizer, indexed like
    /// [`LOCALIZER_NAMES`].
    pub mean_errors: Vec<ConfidenceInterval>,
}

/// Runs the comparison. `range_sigma` is the relative range-proxy error
/// given to the weighted-centroid and multilateration localizers
/// (`0` = perfect ranging — their best case).
///
/// Point-major surveys (the locus and multilateration localizers cannot
/// use the beacon-major sweep), so keep `cfg.step` coarse.
pub fn run(cfg: &SimConfig, range_sigma: f64) -> Vec<LocalizerPoint> {
    cfg.beacon_counts
        .iter()
        .enumerate()
        .map(|(di, &beacons)| {
            let samples: Vec<Vec<f64>> = parallel_map(cfg.trials, cfg.threads, |t| {
                let trial_seed = cfg.trial_seed(di, t);
                let field = cfg.trial_field(beacons, trial_seed);
                let model = cfg.model(0.0, splitmix64(trial_seed ^ 0x4E_01_5E));
                let lattice = cfg.lattice();
                let seed = splitmix64(trial_seed ^ 0x10CA_712E);
                let localizers: Vec<Box<dyn Localizer>> = vec![
                    Box::new(CentroidLocalizer::new(cfg.policy)),
                    Box::new(WeightedCentroidLocalizer::new(
                        1.0,
                        range_sigma,
                        seed,
                        cfg.policy,
                    )),
                    Box::new(LocusLocalizer::new(cfg.policy).with_arc_segments(32)),
                    Box::new(MultilaterationLocalizer::new(range_sigma, seed, cfg.policy)),
                ];
                localizers
                    .iter()
                    .map(|loc| {
                        ErrorMap::survey_with_localizer(&lattice, &field, &*model, loc.as_ref())
                            .mean_error()
                    })
                    .collect()
            });
            let mut accs = vec![Welford::new(); LOCALIZER_NAMES.len()];
            for trial in &samples {
                for (acc, &v) in accs.iter_mut().zip(trial) {
                    acc.push(v);
                }
            }
            LocalizerPoint {
                beacons,
                density: cfg.density_of(beacons),
                mean_errors: accs
                    .iter()
                    .map(|w| ConfidenceInterval::from_moments(w.mean(), w.sample_std(), w.count()))
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            step: 10.0,
            trials: 6,
            beacon_counts: vec![40, 160],
            ..SimConfig::tiny()
        }
    }

    #[test]
    fn produces_all_localizers_and_sane_ordering() {
        let points = run(&cfg(), 0.0);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.mean_errors.len(), LOCALIZER_NAMES.len());
            for ci in &p.mean_errors {
                assert!(ci.estimate.is_finite() && ci.estimate >= 0.0);
            }
        }
        // At the denser field, perfect-range multilateration beats the
        // plain centroid decisively.
        let dense = &points[1];
        assert!(
            dense.mean_errors[3].estimate < dense.mean_errors[0].estimate,
            "multilateration {} should beat centroid {}",
            dense.mean_errors[3].estimate,
            dense.mean_errors[0].estimate
        );
        // The weighted centroid is no worse than the plain one.
        assert!(dense.mean_errors[1].estimate <= dense.mean_errors[0].estimate * 1.02);
    }

    #[test]
    fn every_localizer_improves_with_density() {
        let points = run(&cfg(), 0.0);
        for (k, _name) in LOCALIZER_NAMES.iter().enumerate() {
            assert!(
                points[1].mean_errors[k].estimate < points[0].mean_errors[k].estimate,
                "{} did not improve with density",
                LOCALIZER_NAMES[k]
            );
        }
    }

    #[test]
    fn deterministic() {
        let c = cfg();
        assert_eq!(run(&c, 0.05), run(&c, 0.05));
    }
}
