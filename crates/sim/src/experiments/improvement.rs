//! Improvement from one added beacon (Figures 5, 7, 8, 9).
//!
//! The paper's central experiment: for each random field, survey the
//! terrain, let a placement algorithm choose where to add **one** beacon,
//! re-survey, and record
//!
//! * *Improvement in Mean Error* — mean LE before − mean LE after, and
//! * *Improvement in Median Error* — median LE before − median LE after,
//!
//! averaged over 1000 fields per density with 95 % confidence intervals.
//! All algorithms see the *same* fields and the same before-survey
//! (paired comparison), which is also how the experiment is parallelized:
//! one survey per trial, one incremental re-survey per algorithm.

use crate::config::{AlgorithmKind, SimConfig};
use crate::runner::parallel_map;
use abp_geom::splitmix64;
use abp_placement::SurveyView;
use abp_stats::{ConfidenceInterval, Welford};
use abp_survey::ErrorMap;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One density point of an algorithm's improvement curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImprovementPoint {
    /// Number of beacons in the initial field.
    pub beacons: usize,
    /// Deployment density, beacons per m².
    pub density: f64,
    /// Improvement in mean localization error (m), with 95 % CI.
    pub mean_improvement: ConfidenceInterval,
    /// Improvement in median localization error (m), with 95 % CI.
    pub median_improvement: ConfidenceInterval,
}

/// An algorithm's full improvement curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmImprovement {
    /// Which algorithm.
    pub algorithm: AlgorithmKind,
    /// One point per configured beacon count.
    pub points: Vec<ImprovementPoint>,
}

/// Raw per-trial, per-algorithm sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialImprovement {
    /// Mean-error improvement in this trial.
    pub mean: f64,
    /// Median-error improvement in this trial.
    pub median: f64,
}

/// Runs one trial: one shared survey, then each algorithm places its own
/// beacon on a private copy. Returns one sample per algorithm, in input
/// order.
pub fn run_trial(
    cfg: &SimConfig,
    noise: f64,
    beacons: usize,
    trial_seed: u64,
    algorithms: &[AlgorithmKind],
) -> Vec<TrialImprovement> {
    let field = cfg.trial_field(beacons, trial_seed);
    let model = cfg.model(noise, splitmix64(trial_seed ^ 0x4E_01_5E));
    let lattice = cfg.lattice();
    let before = ErrorMap::survey(&lattice, &field, &*model, cfg.policy);
    let before_mean = before.mean_error();
    let before_median = before.median_error();
    algorithms
        .iter()
        .enumerate()
        .map(|(ai, kind)| {
            let algo = kind.build(cfg);
            let pos = {
                let view = SurveyView {
                    map: &before,
                    field: &field,
                    model: &*model,
                };
                // Each algorithm gets an independent RNG stream so adding
                // or reordering algorithms never shifts another's draw.
                let mut rng =
                    StdRng::seed_from_u64(splitmix64(trial_seed ^ (ai as u64) << 17 ^ 0xA160));
                algo.propose(&view, &mut rng)
            };
            let mut extended = field.clone();
            let id = extended.add_beacon(pos);
            let mut after = before.clone();
            after.add_beacon(extended.get(id).expect("just added"), &*model);
            TrialImprovement {
                mean: before_mean - after.mean_error(),
                median: before_median - after.median_error(),
            }
        })
        .collect()
}

/// Runs the full density sweep at one noise level for a set of
/// algorithms. Deterministic in `cfg.seed`; parallel over trials.
pub fn run(cfg: &SimConfig, noise: f64, algorithms: &[AlgorithmKind]) -> Vec<AlgorithmImprovement> {
    let mut curves: Vec<AlgorithmImprovement> = algorithms
        .iter()
        .map(|&algorithm| AlgorithmImprovement {
            algorithm,
            points: Vec::with_capacity(cfg.beacon_counts.len()),
        })
        .collect();
    for (di, &beacons) in cfg.beacon_counts.iter().enumerate() {
        let samples: Vec<Vec<TrialImprovement>> = parallel_map(cfg.trials, cfg.threads, |t| {
            run_trial(cfg, noise, beacons, cfg.trial_seed(di, t), algorithms)
        });
        for (ai, curve) in curves.iter_mut().enumerate() {
            let mut mean_w = Welford::new();
            let mut median_w = Welford::new();
            for trial in &samples {
                mean_w.push(trial[ai].mean);
                median_w.push(trial[ai].median);
            }
            curve.points.push(ImprovementPoint {
                beacons,
                density: cfg.density_of(beacons),
                mean_improvement: ConfidenceInterval::from_moments(
                    mean_w.mean(),
                    mean_w.sample_std(),
                    mean_w.count(),
                ),
                median_improvement: ConfidenceInterval::from_moments(
                    median_w.mean(),
                    median_w.sample_std(),
                    median_w.count(),
                ),
            });
        }
    }
    curves
}

/// One density point of a paired algorithm comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairedPoint {
    /// Number of beacons in the initial field.
    pub beacons: usize,
    /// Deployment density, beacons per m².
    pub density: f64,
    /// 95 % CI of the per-field difference in mean-error improvement
    /// (first algorithm minus second). Excluding zero = significant.
    pub diff: ConfidenceInterval,
}

/// Paired comparison of two algorithms: both run on the *same* fields and
/// the per-field difference of their mean-error improvements is
/// aggregated ([`abp_stats::paired_diff_ci`]). Because the shared
/// field-to-field variance cancels, this resolves differences an order of
/// magnitude smaller than comparing the two marginal CIs — the rigorous
/// form of Figure 5's "Grid beats Max at low density" reading.
pub fn paired_comparison(
    cfg: &SimConfig,
    noise: f64,
    first: AlgorithmKind,
    second: AlgorithmKind,
) -> Vec<PairedPoint> {
    let algorithms = [first, second];
    cfg.beacon_counts
        .iter()
        .enumerate()
        .map(|(di, &beacons)| {
            let samples: Vec<Vec<TrialImprovement>> =
                parallel_map(cfg.trials, cfg.threads, |t| {
                    run_trial(cfg, noise, beacons, cfg.trial_seed(di, t), &algorithms)
                });
            let a: Vec<f64> = samples.iter().map(|s| s[0].mean).collect();
            let b: Vec<f64> = samples.iter().map(|s| s[1].mean).collect();
            PairedPoint {
                beacons,
                density: cfg.density_of(beacons),
                diff: abp_stats::paired_diff_ci(&a, &b),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            trials: 16,
            beacon_counts: vec![30, 100, 240],
            ..SimConfig::tiny()
        }
    }

    #[test]
    fn grid_beats_random_at_low_density() {
        let curves = run(&cfg(), 0.0, &AlgorithmKind::PAPER);
        let random = &curves[0].points[0];
        let grid = &curves[2].points[0];
        assert!(
            grid.mean_improvement.estimate > random.mean_improvement.estimate,
            "grid {} must beat random {}",
            grid.mean_improvement.estimate,
            random.mean_improvement.estimate
        );
    }

    #[test]
    fn improvements_vanish_at_saturation() {
        let curves = run(&cfg(), 0.0, &[AlgorithmKind::Grid]);
        let low = curves[0].points[0].mean_improvement.estimate;
        let high = curves[0].points[2].mean_improvement.estimate;
        assert!(
            high < low * 0.5,
            "gains must shrink toward saturation (low {low}, high {high})"
        );
    }

    #[test]
    fn paired_trials_share_fields() {
        // Running algorithms together or separately yields identical
        // curves (same trial seeds, independent RNG streams).
        let c = cfg();
        let together = run(&c, 0.0, &AlgorithmKind::PAPER);
        let grid_alone = run(&c, 0.0, &[AlgorithmKind::Grid]);
        // Grid's stream index differs (ai=2 vs ai=0); deterministic
        // algorithms ignore the rng, so the curves must match exactly.
        assert_eq!(together[2].points, grid_alone[0].points);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut c = cfg();
        c.beacon_counts = vec![60];
        c.trials = 8;
        let a = run(&c, 0.3, &AlgorithmKind::PAPER);
        let mut c1 = c.clone();
        c1.threads = 1;
        let b = run(&c1, 0.3, &AlgorithmKind::PAPER);
        assert_eq!(a, b);
    }

    #[test]
    fn median_gains_are_smaller_than_mean_gains() {
        // Paper: "the improvements in median localization error are
        // relatively more modest... the algorithms are effective in fixing
        // a few hot spots".
        let curves = run(&cfg(), 0.0, &[AlgorithmKind::Grid]);
        let p = &curves[0].points[0];
        assert!(
            p.median_improvement.estimate <= p.mean_improvement.estimate,
            "median gain {} should not exceed mean gain {}",
            p.median_improvement.estimate,
            p.mean_improvement.estimate
        );
    }

    #[test]
    fn paired_comparison_resolves_the_crossover() {
        let c = SimConfig {
            trials: 40,
            beacon_counts: vec![30, 240],
            ..SimConfig::tiny()
        };
        let points = paired_comparison(&c, 0.0, AlgorithmKind::Grid, AlgorithmKind::Max);
        // Low density: Grid significantly ahead (CI excludes zero).
        assert!(
            points[0].diff.lo() > 0.0,
            "grid-max diff at low density: {}",
            points[0].diff
        );
        // Saturation: the difference collapses toward zero.
        assert!(points[1].diff.estimate.abs() < points[0].diff.estimate);
    }

    #[test]
    fn paired_comparison_antisymmetric() {
        let c = SimConfig {
            trials: 10,
            beacon_counts: vec![40],
            ..SimConfig::tiny()
        };
        // Deterministic algorithms ignore their RNG streams, so swapping
        // the order exactly negates the difference.
        let ab = paired_comparison(&c, 0.0, AlgorithmKind::Grid, AlgorithmKind::Max);
        let ba = paired_comparison(&c, 0.0, AlgorithmKind::Max, AlgorithmKind::Grid);
        assert!((ab[0].diff.estimate + ba[0].diff.estimate).abs() < 1e-12);
    }

    #[test]
    fn all_algorithm_kinds_run() {
        let mut c = cfg();
        c.beacon_counts = vec![40];
        c.trials = 4;
        let all = [
            AlgorithmKind::Random,
            AlgorithmKind::Max,
            AlgorithmKind::Grid,
            AlgorithmKind::WeightedGrid,
            AlgorithmKind::LocusBreak,
        ];
        let curves = run(&c, 0.3, &all);
        assert_eq!(curves.len(), 5);
        for curve in &curves {
            assert_eq!(curve.points.len(), 1);
            assert!(curve.points[0].mean_improvement.estimate.is_finite());
        }
    }
}
