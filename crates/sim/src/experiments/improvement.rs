//! Improvement from one added beacon (Figures 5, 7, 8, 9).
//!
//! The paper's central experiment: for each random field, survey the
//! terrain, let a placement algorithm choose where to add **one** beacon,
//! re-survey, and record
//!
//! * *Improvement in Mean Error* — mean LE before − mean LE after, and
//! * *Improvement in Median Error* — median LE before − median LE after,
//!
//! averaged over 1000 fields per density with 95 % confidence intervals.
//! All algorithms see the *same* fields and the same before-survey
//! (paired comparison), which is also how the experiment is parallelized:
//! one survey per trial, one incremental re-survey per algorithm.

use crate::config::{AlgorithmKind, SimConfig};
use crate::progress::{Ctx, TrialFailureReport};
use crate::runner::{parallel_map, parallel_try_map};
use abp_geom::splitmix64;
use abp_placement::SurveyView;
use abp_stats::{ConfidenceInterval, Welford};
use abp_survey::ErrorMap;
use bytes::{Buf, BufMut, BytesMut};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One density point of an algorithm's improvement curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImprovementPoint {
    /// Number of beacons in the initial field.
    pub beacons: usize,
    /// Deployment density, beacons per m².
    pub density: f64,
    /// Improvement in mean localization error (m), with 95 % CI.
    pub mean_improvement: ConfidenceInterval,
    /// Improvement in median localization error (m), with 95 % CI.
    pub median_improvement: ConfidenceInterval,
}

/// An algorithm's full improvement curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmImprovement {
    /// Which algorithm.
    pub algorithm: AlgorithmKind,
    /// One point per configured beacon count.
    pub points: Vec<ImprovementPoint>,
}

/// Raw per-trial, per-algorithm sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialImprovement {
    /// Mean-error improvement in this trial.
    pub mean: f64,
    /// Median-error improvement in this trial.
    pub median: f64,
}

/// Runs one trial: one shared survey, then each algorithm places its own
/// beacon on a private copy. Returns one sample per algorithm, in input
/// order.
pub fn run_trial(
    cfg: &SimConfig,
    noise: f64,
    beacons: usize,
    trial_seed: u64,
    algorithms: &[AlgorithmKind],
) -> Vec<TrialImprovement> {
    let field = cfg.trial_field(beacons, trial_seed);
    let model = cfg.model(noise, splitmix64(trial_seed ^ 0x4E_01_5E));
    let lattice = cfg.lattice();
    // The shared before-survey and all quantile selections run through
    // this worker's scratch (bit-identical to the fresh sweeps — see
    // `density_error::run_trial`). The per-algorithm `after` map stays a
    // clone: each algorithm mutates its own private copy.
    crate::scratch::with_trial_scratch(|scratch| {
        let before = ErrorMap::survey_indexed_with(
            &lattice,
            &field,
            &*model,
            cfg.policy,
            &mut scratch.survey,
        );
        let before_mean = before.mean_error();
        let before_median = scratch.survey.median_error(&before);
        let samples = algorithms
            .iter()
            .enumerate()
            .map(|(ai, kind)| {
                let algo = kind.build(cfg);
                let pos = {
                    let view = SurveyView {
                        map: &before,
                        field: &field,
                        model: &*model,
                    };
                    // Each algorithm gets an independent RNG stream so adding
                    // or reordering algorithms never shifts another's draw.
                    let mut rng =
                        StdRng::seed_from_u64(splitmix64(trial_seed ^ (ai as u64) << 17 ^ 0xA160));
                    algo.propose(&view, &mut rng)
                };
                let mut extended = field.clone();
                let id = extended.add_beacon(pos);
                let mut after = before.clone();
                after.add_beacon(extended.get(id).expect("just added"), &*model);
                TrialImprovement {
                    mean: before_mean - after.mean_error(),
                    median: before_median - scratch.survey.median_error(&after),
                }
            })
            .collect();
        scratch.survey.recycle(before);
        samples
    })
}

/// The name sweeps of this experiment report to probes and checkpoints.
pub const EXPERIMENT: &str = "improvement";

/// The outcome of a fault-tolerant improvement sweep: one curve per
/// algorithm plus a report for every trial that panicked. A failed trial
/// is dropped for *all* algorithms (the comparison stays paired).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// One improvement curve per requested algorithm, in input order.
    pub curves: Vec<AlgorithmImprovement>,
    /// Every trial that panicked, in (density, trial) order.
    pub failures: Vec<TrialFailureReport>,
}

/// Runs the full density sweep at one noise level for a set of
/// algorithms. Deterministic in `cfg.seed`; parallel over trials. A
/// panicking trial aborts the whole run (the legacy contract); use
/// [`run_sweep`] to survive trial faults instead.
pub fn run(cfg: &SimConfig, noise: f64, algorithms: &[AlgorithmKind]) -> Vec<AlgorithmImprovement> {
    let outcome = run_sweep(cfg, noise, algorithms, Ctx::noop());
    if let Some(first) = outcome.failures.first() {
        panic!("{first}");
    }
    outcome.curves
}

/// Runs the full density sweep at one noise level, reporting progress to
/// `ctx.probe`, persisting each completed density to `ctx.checkpoint`
/// (when present), and surviving panicking trials.
pub fn run_sweep(
    cfg: &SimConfig,
    noise: f64,
    algorithms: &[AlgorithmKind],
    ctx: Ctx<'_>,
) -> SweepOutcome {
    run_sweep_with(cfg, noise, algorithms, ctx, run_trial)
}

/// [`run_sweep`] with a custom trial function — the fault-injection seam
/// for tests.
pub fn run_sweep_with<F>(
    cfg: &SimConfig,
    noise: f64,
    algorithms: &[AlgorithmKind],
    ctx: Ctx<'_>,
    trial: F,
) -> SweepOutcome
where
    F: Fn(&SimConfig, f64, usize, u64, &[AlgorithmKind]) -> Vec<TrialImprovement> + Sync,
{
    let mut curves: Vec<AlgorithmImprovement> = algorithms
        .iter()
        .map(|&algorithm| AlgorithmImprovement {
            algorithm,
            points: Vec::with_capacity(cfg.beacon_counts.len()),
        })
        .collect();
    let mut failures = Vec::new();
    let algo_tag: String = algorithms
        .iter()
        .map(|a| a.name())
        .collect::<Vec<_>>()
        .join("+");
    for (di, &beacons) in cfg.beacon_counts.iter().enumerate() {
        let key = format!("{EXPERIMENT}/noise={noise}/algos={algo_tag}/di={di}/beacons={beacons}");
        if let Some(entry) = ctx.checkpoint.and_then(|c| c.get(&key)) {
            if let Some((points, mut restored)) = decode_density_entry(&entry, algorithms.len()) {
                for f in &mut restored {
                    f.density_index = di;
                }
                ctx.probe
                    .sweep_done(EXPERIMENT, beacons, std::time::Duration::ZERO, true);
                for (curve, point) in curves.iter_mut().zip(points) {
                    curve.points.push(point);
                }
                failures.extend(restored);
                continue;
            }
        }
        ctx.probe.sweep_start(EXPERIMENT, beacons, cfg.trials);
        let started = Instant::now();
        let outcome = parallel_try_map(cfg.trials, cfg.threads, |t| {
            let _span = abp_trace::span!("trial.improvement");
            let begun = Instant::now();
            let sample = trial(cfg, noise, beacons, cfg.trial_seed(di, t), algorithms);
            ctx.probe.trial_done(begun.elapsed());
            sample
        });
        let sweep_failures: Vec<TrialFailureReport> = outcome
            .failures
            .into_iter()
            .map(|f| TrialFailureReport {
                experiment: EXPERIMENT,
                density_index: di,
                beacons,
                trial: f.index,
                seed: cfg.trial_seed(di, f.index),
                message: f.message,
            })
            .collect();
        for f in &sweep_failures {
            ctx.probe.trial_failed(f);
        }
        let samples: Vec<Vec<TrialImprovement>> =
            outcome.successes.into_iter().map(|(_, s)| s).collect();
        let mut density_points = Vec::with_capacity(algorithms.len());
        for ai in 0..algorithms.len() {
            let mut mean_w = Welford::new();
            let mut median_w = Welford::new();
            for trial in &samples {
                mean_w.push(trial[ai].mean);
                median_w.push(trial[ai].median);
            }
            density_points.push(ImprovementPoint {
                beacons,
                density: cfg.density_of(beacons),
                mean_improvement: ConfidenceInterval::from_moments(
                    mean_w.mean(),
                    mean_w.sample_std(),
                    mean_w.count(),
                ),
                median_improvement: ConfidenceInterval::from_moments(
                    median_w.mean(),
                    median_w.sample_std(),
                    median_w.count(),
                ),
            });
        }
        if let Some(ckpt) = ctx.checkpoint {
            if let Err(e) = ckpt.put(&key, encode_density_entry(&density_points, &sweep_failures)) {
                eprintln!(
                    "warning: checkpoint save to {} failed: {e}",
                    ckpt.path().display()
                );
            }
        }
        ctx.probe
            .sweep_done(EXPERIMENT, beacons, started.elapsed(), false);
        for (curve, point) in curves.iter_mut().zip(density_points) {
            curve.points.push(point);
        }
        failures.extend(sweep_failures);
    }
    SweepOutcome { curves, failures }
}

/// Encodes one completed density (one point per algorithm + failures);
/// floats as raw IEEE bits for bit-identical resume.
fn encode_density_entry(points: &[ImprovementPoint], failures: &[TrialFailureReport]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(16 + points.len() * 48);
    buf.put_u64(points.first().map_or(0, |p| p.beacons) as u64);
    buf.put_u32(points.len() as u32);
    for p in points {
        buf.put_f64(p.density);
        buf.put_f64(p.mean_improvement.estimate);
        buf.put_f64(p.mean_improvement.half_width);
        buf.put_f64(p.median_improvement.estimate);
        buf.put_f64(p.median_improvement.half_width);
    }
    buf.put_u32(failures.len() as u32);
    for f in failures {
        buf.put_u64(f.trial as u64);
        buf.put_u64(f.seed);
        buf.put_u32(f.message.len() as u32);
        buf.put_slice(f.message.as_bytes());
    }
    buf.freeze().to_vec()
}

fn decode_density_entry(
    raw: &[u8],
    n_algorithms: usize,
) -> Option<(Vec<ImprovementPoint>, Vec<TrialFailureReport>)> {
    let mut buf = raw;
    if buf.remaining() < 8 + 4 {
        return None;
    }
    let beacons = buf.get_u64() as usize;
    let n_points = buf.get_u32() as usize;
    if n_points != n_algorithms {
        return None;
    }
    let mut points = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        if buf.remaining() < 5 * 8 {
            return None;
        }
        points.push(ImprovementPoint {
            beacons,
            density: buf.get_f64(),
            mean_improvement: ConfidenceInterval {
                estimate: buf.get_f64(),
                half_width: buf.get_f64(),
            },
            median_improvement: ConfidenceInterval {
                estimate: buf.get_f64(),
                half_width: buf.get_f64(),
            },
        });
    }
    if buf.remaining() < 4 {
        return None;
    }
    let n_failures = buf.get_u32();
    let mut failures = Vec::with_capacity(n_failures as usize);
    for _ in 0..n_failures {
        if buf.remaining() < 8 + 8 + 4 {
            return None;
        }
        let trial = buf.get_u64() as usize;
        let seed = buf.get_u64();
        let mlen = buf.get_u32() as usize;
        if buf.remaining() < mlen {
            return None;
        }
        let message = String::from_utf8(buf[..mlen].to_vec()).ok()?;
        buf = &buf[mlen..];
        failures.push(TrialFailureReport {
            experiment: EXPERIMENT,
            // Patched in by the caller from the checkpoint key.
            density_index: usize::MAX,
            beacons,
            trial,
            seed,
            message,
        });
    }
    if buf.remaining() != 0 {
        return None;
    }
    Some((points, failures))
}

/// One density point of a paired algorithm comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairedPoint {
    /// Number of beacons in the initial field.
    pub beacons: usize,
    /// Deployment density, beacons per m².
    pub density: f64,
    /// 95 % CI of the per-field difference in mean-error improvement
    /// (first algorithm minus second). Excluding zero = significant.
    pub diff: ConfidenceInterval,
}

/// Paired comparison of two algorithms: both run on the *same* fields and
/// the per-field difference of their mean-error improvements is
/// aggregated ([`abp_stats::paired_diff_ci`]). Because the shared
/// field-to-field variance cancels, this resolves differences an order of
/// magnitude smaller than comparing the two marginal CIs — the rigorous
/// form of Figure 5's "Grid beats Max at low density" reading.
pub fn paired_comparison(
    cfg: &SimConfig,
    noise: f64,
    first: AlgorithmKind,
    second: AlgorithmKind,
) -> Vec<PairedPoint> {
    let algorithms = [first, second];
    cfg.beacon_counts
        .iter()
        .enumerate()
        .map(|(di, &beacons)| {
            let samples: Vec<Vec<TrialImprovement>> = parallel_map(cfg.trials, cfg.threads, |t| {
                run_trial(cfg, noise, beacons, cfg.trial_seed(di, t), &algorithms)
            });
            let a: Vec<f64> = samples.iter().map(|s| s[0].mean).collect();
            let b: Vec<f64> = samples.iter().map(|s| s[1].mean).collect();
            PairedPoint {
                beacons,
                density: cfg.density_of(beacons),
                diff: abp_stats::paired_diff_ci(&a, &b),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            trials: 16,
            beacon_counts: vec![30, 100, 240],
            ..SimConfig::tiny()
        }
    }

    #[test]
    fn grid_beats_random_at_low_density() {
        let curves = run(&cfg(), 0.0, &AlgorithmKind::PAPER);
        let random = &curves[0].points[0];
        let grid = &curves[2].points[0];
        assert!(
            grid.mean_improvement.estimate > random.mean_improvement.estimate,
            "grid {} must beat random {}",
            grid.mean_improvement.estimate,
            random.mean_improvement.estimate
        );
    }

    #[test]
    fn improvements_vanish_at_saturation() {
        let curves = run(&cfg(), 0.0, &[AlgorithmKind::Grid]);
        let low = curves[0].points[0].mean_improvement.estimate;
        let high = curves[0].points[2].mean_improvement.estimate;
        assert!(
            high < low * 0.5,
            "gains must shrink toward saturation (low {low}, high {high})"
        );
    }

    #[test]
    fn paired_trials_share_fields() {
        // Running algorithms together or separately yields identical
        // curves (same trial seeds, independent RNG streams).
        let c = cfg();
        let together = run(&c, 0.0, &AlgorithmKind::PAPER);
        let grid_alone = run(&c, 0.0, &[AlgorithmKind::Grid]);
        // Grid's stream index differs (ai=2 vs ai=0); deterministic
        // algorithms ignore the rng, so the curves must match exactly.
        assert_eq!(together[2].points, grid_alone[0].points);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut c = cfg();
        c.beacon_counts = vec![60];
        c.trials = 8;
        let a = run(&c, 0.3, &AlgorithmKind::PAPER);
        let mut c1 = c.clone();
        c1.threads = 1;
        let b = run(&c1, 0.3, &AlgorithmKind::PAPER);
        assert_eq!(a, b);
    }

    #[test]
    fn median_gains_are_smaller_than_mean_gains() {
        // Paper: "the improvements in median localization error are
        // relatively more modest... the algorithms are effective in fixing
        // a few hot spots".
        let curves = run(&cfg(), 0.0, &[AlgorithmKind::Grid]);
        let p = &curves[0].points[0];
        assert!(
            p.median_improvement.estimate <= p.mean_improvement.estimate,
            "median gain {} should not exceed mean gain {}",
            p.median_improvement.estimate,
            p.mean_improvement.estimate
        );
    }

    #[test]
    fn paired_comparison_resolves_the_crossover() {
        let c = SimConfig {
            trials: 40,
            beacon_counts: vec![30, 240],
            ..SimConfig::tiny()
        };
        let points = paired_comparison(&c, 0.0, AlgorithmKind::Grid, AlgorithmKind::Max);
        // Low density: Grid significantly ahead (CI excludes zero).
        assert!(
            points[0].diff.lo() > 0.0,
            "grid-max diff at low density: {}",
            points[0].diff
        );
        // Saturation: the difference collapses toward zero.
        assert!(points[1].diff.estimate.abs() < points[0].diff.estimate);
    }

    #[test]
    fn paired_comparison_antisymmetric() {
        let c = SimConfig {
            trials: 10,
            beacon_counts: vec![40],
            ..SimConfig::tiny()
        };
        // Deterministic algorithms ignore their RNG streams, so swapping
        // the order exactly negates the difference.
        let ab = paired_comparison(&c, 0.0, AlgorithmKind::Grid, AlgorithmKind::Max);
        let ba = paired_comparison(&c, 0.0, AlgorithmKind::Max, AlgorithmKind::Grid);
        assert!((ab[0].diff.estimate + ba[0].diff.estimate).abs() < 1e-12);
    }

    #[test]
    fn all_algorithm_kinds_run() {
        let mut c = cfg();
        c.beacon_counts = vec![40];
        c.trials = 4;
        let all = [
            AlgorithmKind::Random,
            AlgorithmKind::Max,
            AlgorithmKind::Grid,
            AlgorithmKind::WeightedGrid,
            AlgorithmKind::LocusBreak,
        ];
        let curves = run(&c, 0.3, &all);
        assert_eq!(curves.len(), 5);
        for curve in &curves {
            assert_eq!(curve.points.len(), 1);
            assert!(curve.points[0].mean_improvement.estimate.is_finite());
        }
    }

    #[test]
    fn injected_panic_keeps_comparison_paired() {
        let mut c = cfg();
        c.beacon_counts = vec![40];
        c.trials = 12;
        let algos = [AlgorithmKind::Grid, AlgorithmKind::Max];
        let bad = c.trial_seed(0, 3);
        let outcome = run_sweep_with(
            &c,
            0.0,
            &algos,
            Ctx::noop(),
            move |cfg, noise, beacons, seed, algorithms| {
                if seed == bad {
                    panic!("flaky trial");
                }
                run_trial(cfg, noise, beacons, seed, algorithms)
            },
        );
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].trial, 3);
        assert_eq!(outcome.failures[0].seed, bad);
        assert_eq!(outcome.curves.len(), 2);
        // The failed trial is dropped for *both* algorithms: each curve
        // aggregates the same 11 survivors.
        for curve in &outcome.curves {
            assert_eq!(curve.points.len(), 1);
            assert!(curve.points[0].mean_improvement.estimate.is_finite());
        }
    }

    #[test]
    fn checkpoint_restores_all_curves() {
        let mut c = cfg();
        c.beacon_counts = vec![40, 100];
        c.trials = 6;
        let algos = [AlgorithmKind::Grid, AlgorithmKind::Random];
        let full = run_sweep(&c, 0.0, &algos, Ctx::noop());

        let mut path = std::env::temp_dir();
        path.push(format!("abp-improvement-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ckpt = crate::checkpoint::SweepCheckpoint::open(&path, c.fingerprint()).unwrap();

        let probe = crate::progress::NoopProbe;
        let first = run_sweep(&c, 0.0, &algos, Ctx::new(&probe).with_checkpoint(&ckpt));
        assert_eq!(first.curves, full.curves);
        assert_eq!(ckpt.len(), 2);
        // Replay restores every density from the checkpoint, bit for bit.
        let replay = run_sweep(&c, 0.0, &algos, Ctx::new(&probe).with_checkpoint(&ckpt));
        assert_eq!(replay.curves, full.curves);
        // A different algorithm set must not see these entries.
        let other = run_sweep(
            &c,
            0.0,
            &[AlgorithmKind::Max],
            Ctx::new(&probe).with_checkpoint(&ckpt),
        );
        assert_eq!(other.curves.len(), 1);
        assert_eq!(ckpt.len(), 4, "the Max-only sweep adds its own entries");
        std::fs::remove_file(&path).unwrap();
    }
}
