//! Placement quality under injected faults (paper §6 future work).
//!
//! The paper evaluates adaptive placement in a benign world: every beacon
//! transmits forever, every message on a link within range arrives, and
//! the survey agent always knows where it is. Section 6 names the missing
//! piece — "beacons may fail or be compromised" — and this experiment
//! measures exactly that, with [`abp_fault`]'s deterministic injectors:
//!
//! * **failure axis** — a fraction `x` of beacons dies permanently
//!   ([`abp_fault::MortalityPlan`]),
//! * **burst axis** — every link runs over a Gilbert–Elliott on/off
//!   channel with stationary bad probability `x`
//!   ([`abp_fault::BurstPlan`]),
//!
//! optionally layered with survey-agent GPS outages. For each `x` the
//! sweep reports the terrain's mean localization error under the faults
//! and the paired improvement each placement algorithm (Random/Max/Grid)
//! still extracts — so the figure shows both how much the fault costs and
//! whether the algorithms' *ranking* survives it.
//!
//! The survey the algorithms see is a robot walk through the faulty world
//! (GPS outages drop waypoints into the explicit degraded/dropped
//! accounting channel); the improvement is evaluated at epoch 1 — after
//! placement — against a baseline of the *original* field at the same
//! epoch, so epoch-varying faults (bursts, flapping, drift) never
//! masquerade as placement gains.

use crate::config::{AlgorithmKind, SimConfig};
use crate::progress::{Ctx, TrialFailureReport};
use crate::runner::{parallel_try_map, supervised_try_map};
use abp_fault::{BurstPlan, FaultPlan, GpsOutagePlan, MortalityPlan};
use abp_geom::splitmix64;
use abp_placement::SurveyView;
use abp_stats::{ConfidenceInterval, Welford};
use abp_survey::{ErrorMap, Robot, SurveyPlan};
use bytes::{Buf, BufMut, BytesMut};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Which fault family the sweep's x-axis scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAxis {
    /// `x` = fraction of beacons permanently dead.
    FailureRate,
    /// `x` = stationary fraction of time each link spends in the
    /// Gilbert–Elliott bad state.
    BurstIntensity,
}

impl FaultAxis {
    /// Stable name used in checkpoint keys and figure ids.
    pub fn name(&self) -> &'static str {
        match self {
            FaultAxis::FailureRate => "failure",
            FaultAxis::BurstIntensity => "burst",
        }
    }

    /// The fault plan this axis induces at intensity `x` (before any
    /// cross-cutting faults from the spec are layered on).
    pub fn plan(&self, x: f64) -> FaultPlan {
        match self {
            FaultAxis::FailureRate => FaultPlan {
                mortality: Some(MortalityPlan {
                    death_rate: x,
                    flap_rate: 0.0,
                    duty_cycle: 1.0,
                }),
                ..FaultPlan::none()
            },
            FaultAxis::BurstIntensity => FaultPlan {
                burst: Some(BurstPlan::paper(x)),
                ..FaultPlan::none()
            },
        }
    }
}

impl fmt::Display for FaultAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a fault sweep needs beyond the base [`SimConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepSpec {
    /// The fault family the x-axis scales.
    pub axis: FaultAxis,
    /// Axis sample points (fault intensities), in plot order.
    pub xs: Vec<f64>,
    /// Beacon count of every generated field (a single density — the
    /// fault intensity is the independent variable here).
    pub beacons: usize,
    /// GPS outages layered on the survey walk at *every* x, so the
    /// degraded-accounting channel is exercised across the whole sweep.
    pub gps: Option<GpsOutagePlan>,
    /// Placement algorithms whose ranking the figure tracks.
    pub algorithms: Vec<AlgorithmKind>,
}

impl FaultSweepSpec {
    /// The robustness figure's beacon-failure axis: 0–50 % of beacons
    /// dead, a light GPS outage on the survey walk, and the paper's three
    /// algorithms.
    pub fn failure_axis(beacons: usize) -> Self {
        FaultSweepSpec {
            axis: FaultAxis::FailureRate,
            xs: vec![0.0, 0.1, 0.2, 0.3, 0.5],
            beacons,
            gps: Some(GpsOutagePlan {
                outage_fraction: 0.05,
                window: 16,
                bias_meters: 0.0,
            }),
            algorithms: AlgorithmKind::PAPER.to_vec(),
        }
    }

    /// The robustness figure's burst-loss axis: links spend 0–80 % of
    /// their time in the bad state.
    pub fn burst_axis(beacons: usize) -> Self {
        FaultSweepSpec {
            xs: vec![0.0, 0.2, 0.4, 0.6, 0.8],
            axis: FaultAxis::BurstIntensity,
            ..FaultSweepSpec::failure_axis(beacons)
        }
    }

    /// The complete fault plan in effect at intensity `x`.
    pub fn plan_at(&self, x: f64) -> FaultPlan {
        let mut plan = self.axis.plan(x);
        plan.gps = self.gps;
        plan
    }
}

/// Raw per-trial sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultTrialSample {
    /// Mean localization error of the faulty field (epoch 0).
    pub error_mean: f64,
    /// Fraction of the robot's survey measured at full fidelity (the
    /// rest landed in the degraded/unheard/dropped channels).
    pub measured_fraction: f64,
    /// Mean-error improvement per algorithm, in spec order, evaluated at
    /// epoch 1.
    pub improvements: Vec<f64>,
}

/// One aggregated axis point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPoint {
    /// The fault intensity (axis-dependent meaning).
    pub x: f64,
    /// Beacon count of the underlying fields.
    pub beacons: usize,
    /// Mean localization error under the faults, with 95 % CI.
    pub mean_error: ConfidenceInterval,
    /// Average fully-measured fraction of the robot survey.
    pub measured_fraction: f64,
    /// Improvement per algorithm, in spec order, with 95 % CIs.
    pub improvements: Vec<ConfidenceInterval>,
}

/// The name sweeps of this experiment report to probes and checkpoints.
pub const EXPERIMENT: &str = "fault-robustness";

/// The outcome of a fault sweep: one point per axis intensity plus every
/// trial that exhausted its retries.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// One aggregated point per `spec.xs` entry, in order.
    pub points: Vec<FaultPoint>,
    /// Every trial that failed terminally, in (x, trial) order.
    pub failures: Vec<TrialFailureReport>,
}

/// Runs one trial at fault intensity `x`: compile the plan, survey the
/// faulty world (truth and robot view), let each algorithm place from the
/// view, and measure the epoch-1 improvement.
pub fn run_trial(
    cfg: &SimConfig,
    noise: f64,
    spec: &FaultSweepSpec,
    x: f64,
    trial_seed: u64,
) -> FaultTrialSample {
    let schedule = spec.plan_at(x).compile(trial_seed);
    let field = cfg.trial_field(spec.beacons, trial_seed);
    let model_seed = splitmix64(trial_seed ^ 0x4E_01_5E);
    let lattice = cfg.lattice();

    // Epoch 0: the world the survey happens in.
    let model0 = cfg.model(noise * schedule.noise_multiplier(0), model_seed);
    let faulty0 = schedule.wrap(&*model0, 0);
    let truth0 = ErrorMap::survey(&lattice, &field, &faulty0, cfg.policy);

    // The algorithms only ever see the robot's walk through that world,
    // GPS outages and all.
    let walk = SurveyPlan::from_lattice(lattice);
    let mut robot = Robot::new(0.0, 0, splitmix64(trial_seed ^ 0x0B07));
    let (view, _report) = robot.survey_faulty(&walk, &field, &faulty0, cfg.policy, schedule.gps());
    let accounting = view.accounting();

    // Epoch 1: the world after deployment. Both the baseline and every
    // extended field are evaluated here, so epoch-varying faults cancel
    // out of the improvement.
    let model1 = cfg.model(noise * schedule.noise_multiplier(1), model_seed);
    let faulty1 = schedule.wrap(&*model1, 1);
    let before1 = ErrorMap::survey(&lattice, &field, &faulty1, cfg.policy).mean_error();
    let improvements = spec
        .algorithms
        .iter()
        .enumerate()
        .map(|(ai, kind)| {
            let algo = kind.build(cfg);
            let pos = {
                let sv = SurveyView {
                    map: &view,
                    field: &field,
                    model: &faulty0,
                };
                // Same per-algorithm stream salt as the improvement
                // experiment: adding or reordering algorithms never
                // shifts another's draw.
                let mut rng =
                    StdRng::seed_from_u64(splitmix64(trial_seed ^ (ai as u64) << 17 ^ 0xA160));
                algo.propose(&sv, &mut rng)
            };
            let mut extended = field.clone();
            extended.add_beacon(pos);
            let after = ErrorMap::survey(&lattice, &extended, &faulty1, cfg.policy);
            before1 - after.mean_error()
        })
        .collect();
    FaultTrialSample {
        error_mean: truth0.mean_error(),
        measured_fraction: accounting.measured_fraction(view.len()),
        improvements,
    }
}

/// Runs the full fault sweep, reporting to `ctx.probe`, persisting each
/// completed axis point to `ctx.checkpoint` (keys carry the fault plan's
/// fingerprint, so regimes never share entries), and honoring
/// `ctx.policy` (retry with re-derived seeds, watchdog timeouts).
///
/// Deterministic in `cfg.seed` and thread-count invariant; a healthy
/// sweep is bit-identical under any retry policy.
pub fn run_sweep(cfg: &SimConfig, noise: f64, spec: &FaultSweepSpec, ctx: Ctx<'_>) -> SweepOutcome {
    let shared = Arc::new((cfg.clone(), spec.clone()));
    let mut points = Vec::with_capacity(spec.xs.len());
    let mut failures = Vec::new();
    for (xi, &x) in spec.xs.iter().enumerate() {
        let plan_fp = spec.plan_at(x).fingerprint();
        let key = format!(
            "{EXPERIMENT}/plan={plan_fp:016x}/axis={}/noise={noise}/x={x}/beacons={}",
            spec.axis.name(),
            spec.beacons
        );
        if let Some(entry) = ctx.checkpoint.and_then(|c| c.get(&key)) {
            if let Some((point, mut restored)) = decode_axis_entry(&entry, spec.algorithms.len()) {
                for f in &mut restored {
                    f.density_index = xi;
                }
                ctx.probe
                    .sweep_done(EXPERIMENT, spec.beacons, std::time::Duration::ZERO, true);
                points.push(point);
                failures.extend(restored);
                continue;
            }
        }
        ctx.probe.sweep_start(EXPERIMENT, spec.beacons, cfg.trials);
        let started = Instant::now();
        let (samples, sweep_failures) = if ctx.policy.is_active() {
            let worker = Arc::clone(&shared);
            let outcome = supervised_try_map(
                cfg.trials,
                cfg.threads,
                ctx.policy,
                move |t, attempt| {
                    let _span = abp_trace::span!("trial.fault_robustness");
                    let (cfg, spec) = &*worker;
                    run_trial(cfg, noise, spec, x, cfg.retry_seed(xi, t, attempt))
                },
                crate::progress::forward_trial_events(ctx.probe, EXPERIMENT, xi, spec.beacons),
            );
            let sweep_failures: Vec<TrialFailureReport> = outcome
                .failures
                .iter()
                .map(|f| TrialFailureReport {
                    experiment: EXPERIMENT,
                    density_index: xi,
                    beacons: spec.beacons,
                    trial: f.index,
                    seed: cfg.retry_seed(xi, f.index, f.attempts.saturating_sub(1)),
                    message: f.fault.to_string(),
                })
                .collect();
            let samples: Vec<FaultTrialSample> =
                outcome.successes.into_iter().map(|(_, s)| s).collect();
            (samples, sweep_failures)
        } else {
            let outcome = parallel_try_map(cfg.trials, cfg.threads, |t| {
                let _span = abp_trace::span!("trial.fault_robustness");
                let begun = Instant::now();
                let sample = run_trial(cfg, noise, spec, x, cfg.trial_seed(xi, t));
                ctx.probe.trial_done(begun.elapsed());
                sample
            });
            let sweep_failures: Vec<TrialFailureReport> = outcome
                .failures
                .into_iter()
                .map(|f| TrialFailureReport {
                    experiment: EXPERIMENT,
                    density_index: xi,
                    beacons: spec.beacons,
                    trial: f.index,
                    seed: cfg.trial_seed(xi, f.index),
                    message: f.message,
                })
                .collect();
            let samples: Vec<FaultTrialSample> =
                outcome.successes.into_iter().map(|(_, s)| s).collect();
            (samples, sweep_failures)
        };
        for f in &sweep_failures {
            ctx.probe.trial_failed(f);
        }
        let point = aggregate(spec, x, &samples);
        if let Some(ckpt) = ctx.checkpoint {
            if let Err(e) = ckpt.put(&key, encode_axis_entry(&point, &sweep_failures)) {
                eprintln!(
                    "warning: checkpoint save to {} failed: {e}",
                    ckpt.path().display()
                );
            }
        }
        ctx.probe
            .sweep_done(EXPERIMENT, spec.beacons, started.elapsed(), false);
        points.push(point);
        failures.extend(sweep_failures);
    }
    SweepOutcome { points, failures }
}

fn aggregate(spec: &FaultSweepSpec, x: f64, samples: &[FaultTrialSample]) -> FaultPoint {
    let mut error_w = Welford::new();
    let mut measured = 0.0;
    let mut improvement_w: Vec<Welford> = spec.algorithms.iter().map(|_| Welford::new()).collect();
    for s in samples {
        error_w.push(s.error_mean);
        measured += s.measured_fraction;
        for (w, &imp) in improvement_w.iter_mut().zip(&s.improvements) {
            w.push(imp);
        }
    }
    FaultPoint {
        x,
        beacons: spec.beacons,
        mean_error: ConfidenceInterval::from_moments(
            error_w.mean(),
            error_w.sample_std(),
            error_w.count(),
        ),
        measured_fraction: measured / samples.len().max(1) as f64,
        improvements: improvement_w
            .into_iter()
            .map(|w| ConfidenceInterval::from_moments(w.mean(), w.sample_std(), w.count()))
            .collect(),
    }
}

/// Encodes one completed axis point (+ its failures) for the checkpoint;
/// floats travel as raw IEEE bits so resumed sweeps are bit-identical.
fn encode_axis_entry(point: &FaultPoint, failures: &[TrialFailureReport]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + point.improvements.len() * 16);
    buf.put_u64(point.beacons as u64);
    buf.put_f64(point.x);
    buf.put_f64(point.mean_error.estimate);
    buf.put_f64(point.mean_error.half_width);
    buf.put_f64(point.measured_fraction);
    buf.put_u32(point.improvements.len() as u32);
    for ci in &point.improvements {
        buf.put_f64(ci.estimate);
        buf.put_f64(ci.half_width);
    }
    buf.put_u32(failures.len() as u32);
    for f in failures {
        buf.put_u64(f.trial as u64);
        buf.put_u64(f.seed);
        buf.put_u32(f.message.len() as u32);
        buf.put_slice(f.message.as_bytes());
    }
    buf.freeze().to_vec()
}

fn decode_axis_entry(
    raw: &[u8],
    n_algorithms: usize,
) -> Option<(FaultPoint, Vec<TrialFailureReport>)> {
    let mut buf = raw;
    if buf.remaining() < 8 + 4 * 8 + 4 {
        return None;
    }
    let beacons = buf.get_u64() as usize;
    let x = buf.get_f64();
    let mean_error = ConfidenceInterval {
        estimate: buf.get_f64(),
        half_width: buf.get_f64(),
    };
    let measured_fraction = buf.get_f64();
    let n_improvements = buf.get_u32() as usize;
    if n_improvements != n_algorithms || buf.remaining() < n_improvements * 16 {
        return None;
    }
    let improvements = (0..n_improvements)
        .map(|_| ConfidenceInterval {
            estimate: buf.get_f64(),
            half_width: buf.get_f64(),
        })
        .collect();
    if buf.remaining() < 4 {
        return None;
    }
    let n_failures = buf.get_u32();
    let mut failures = Vec::with_capacity(n_failures as usize);
    for _ in 0..n_failures {
        if buf.remaining() < 8 + 8 + 4 {
            return None;
        }
        let trial = buf.get_u64() as usize;
        let seed = buf.get_u64();
        let mlen = buf.get_u32() as usize;
        if buf.remaining() < mlen {
            return None;
        }
        let message = String::from_utf8(buf[..mlen].to_vec()).ok()?;
        buf = &buf[mlen..];
        failures.push(TrialFailureReport {
            experiment: EXPERIMENT,
            // Patched in by the caller from the checkpoint key.
            density_index: usize::MAX,
            beacons,
            trial,
            seed,
            message,
        });
    }
    if buf.remaining() != 0 {
        return None;
    }
    Some((
        FaultPoint {
            x,
            beacons,
            mean_error,
            measured_fraction,
            improvements,
        },
        failures,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            trials: 6,
            ..SimConfig::tiny()
        }
    }

    fn spec() -> FaultSweepSpec {
        FaultSweepSpec {
            xs: vec![0.0, 0.3],
            ..FaultSweepSpec::failure_axis(60)
        }
    }

    #[test]
    fn beacon_death_raises_error() {
        let c = cfg();
        let s = FaultSweepSpec {
            xs: vec![0.0, 0.5],
            gps: None,
            ..FaultSweepSpec::failure_axis(60)
        };
        let out = run_sweep(&c, 0.0, &s, Ctx::noop());
        assert_eq!(out.points.len(), 2);
        assert!(out.failures.is_empty());
        assert!(
            out.points[1].mean_error.estimate > out.points[0].mean_error.estimate,
            "killing half the beacons must raise mean error ({} -> {})",
            out.points[0].mean_error.estimate,
            out.points[1].mean_error.estimate
        );
    }

    #[test]
    fn burst_loss_raises_error() {
        let c = cfg();
        let s = FaultSweepSpec {
            xs: vec![0.0, 0.6],
            gps: None,
            ..FaultSweepSpec::burst_axis(60)
        };
        let out = run_sweep(&c, 0.0, &s, Ctx::noop());
        assert!(
            out.points[1].mean_error.estimate > out.points[0].mean_error.estimate,
            "bursty links must raise mean error"
        );
    }

    #[test]
    fn zero_intensity_matches_the_healthy_pipeline() {
        // x = 0 with no GPS plan is a fault-free trial: the truth survey
        // must equal a survey without abp-fault in the loop at all.
        let c = cfg();
        let s = FaultSweepSpec {
            xs: vec![0.0],
            gps: None,
            ..FaultSweepSpec::failure_axis(60)
        };
        let trial_seed = c.trial_seed(0, 0);
        let sample = run_trial(&c, 0.2, &s, 0.0, trial_seed);
        let field = c.trial_field(60, trial_seed);
        let model = c.model(0.2, splitmix64(trial_seed ^ 0x4E_01_5E));
        let map = ErrorMap::survey(&c.lattice(), &field, &*model, c.policy);
        assert_eq!(sample.error_mean.to_bits(), map.mean_error().to_bits());
        // No GPS faults ⇒ nothing dropped; the only unmeasured points are
        // the ones the healthy survey can't hear either.
        assert_eq!(
            sample.measured_fraction,
            map.accounting().measured_fraction(map.len())
        );
    }

    #[test]
    fn gps_outage_shows_up_in_accounting() {
        let c = cfg();
        let s = spec(); // 5 % outage windows on the walk
        let sample = run_trial(&c, 0.0, &s, 0.3, c.trial_seed(0, 1));
        assert!(
            sample.measured_fraction < 1.0,
            "outage windows must remove measured points"
        );
        assert!(sample.measured_fraction > 0.5, "but not most of them");
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let c = cfg();
        let s = spec();
        let a = run_sweep(&c, 0.1, &s, Ctx::noop());
        let b = run_sweep(&c, 0.1, &s, Ctx::noop());
        assert_eq!(a, b);
        let mut c1 = c.clone();
        c1.threads = 1;
        let seq = run_sweep(&c1, 0.1, &s, Ctx::noop());
        assert_eq!(a.points, seq.points, "results must not depend on threads");
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let c = cfg();
        let s = spec();
        let full = run_sweep(&c, 0.0, &s, Ctx::noop());

        let mut path = std::env::temp_dir();
        path.push(format!("abp-fault-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ckpt = crate::checkpoint::SweepCheckpoint::open(&path, c.fingerprint()).unwrap();

        // Simulate an interrupted run: seed the checkpoint with the first
        // axis point only, then resume the whole sweep.
        let plan_fp = s.plan_at(s.xs[0]).fingerprint();
        let key = format!("{EXPERIMENT}/plan={plan_fp:016x}/axis=failure/noise=0/x=0/beacons=60");
        ckpt.put(&key, encode_axis_entry(&full.points[0], &[]))
            .unwrap();

        let probe = crate::progress::NoopProbe;
        let resumed = run_sweep(&c, 0.0, &s, Ctx::new(&probe).with_checkpoint(&ckpt));
        assert_eq!(resumed.points, full.points, "resume must be bit-identical");
        assert_eq!(ckpt.len(), 2);
        let replay = run_sweep(&c, 0.0, &s, Ctx::new(&probe).with_checkpoint(&ckpt));
        assert_eq!(replay.points, full.points);

        // A different fault regime must not see these entries: same axis,
        // different intensity set ⇒ different plan fingerprints in keys.
        let other = FaultSweepSpec {
            xs: vec![0.15],
            ..s.clone()
        };
        let fresh = run_sweep(&c, 0.0, &other, Ctx::new(&probe).with_checkpoint(&ckpt));
        assert_eq!(fresh.points.len(), 1);
        assert_eq!(ckpt.len(), 3, "the other regime adds its own entry");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn supervised_healthy_sweep_is_bit_identical_to_plain() {
        use crate::runner::RunPolicy;
        use std::time::Duration;
        let c = cfg();
        let s = spec();
        let plain = run_sweep(&c, 0.0, &s, Ctx::noop());
        let policy = RunPolicy {
            retries: 2,
            trial_timeout: Some(Duration::from_secs(120)),
            backoff: Duration::from_millis(1),
        };
        let supervised = run_sweep(&c, 0.0, &s, Ctx::noop().with_policy(policy));
        assert_eq!(plain.points, supervised.points);
        assert!(supervised.failures.is_empty());
    }

    #[test]
    fn axis_entry_roundtrips() {
        let point = FaultPoint {
            x: 0.3,
            beacons: 60,
            mean_error: ConfidenceInterval {
                estimate: 4.25,
                half_width: 0.5,
            },
            measured_fraction: 0.93,
            improvements: vec![
                ConfidenceInterval {
                    estimate: 1.5,
                    half_width: 0.25,
                },
                ConfidenceInterval {
                    estimate: 2.5,
                    half_width: 0.125,
                },
            ],
        };
        let failures = vec![TrialFailureReport {
            experiment: EXPERIMENT,
            density_index: usize::MAX,
            beacons: 60,
            trial: 4,
            seed: 0xFEED,
            message: "boom".into(),
        }];
        let raw = encode_axis_entry(&point, &failures);
        let (decoded, decoded_failures) = decode_axis_entry(&raw, 2).unwrap();
        assert_eq!(decoded, point);
        assert_eq!(decoded_failures, failures);
        // Algorithm-count mismatch and truncation are both rejected.
        assert!(decode_axis_entry(&raw, 3).is_none());
        assert!(decode_axis_entry(&raw[..raw.len() - 1], 2).is_none());
    }
}
