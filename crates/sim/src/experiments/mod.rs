//! The paper's experiment families.
//!
//! | Module | Reproduces |
//! |--------|------------|
//! | [`density_error`] | Figures 4 and 6: mean localization error vs beacon density, per noise level |
//! | [`improvement`] | Figures 5, 7, 8, 9: improvement in mean/median error from one added beacon, per algorithm and noise level |
//! | [`granularity`] | Figure 1: beacon density vs granularity of localization regions |
//! | [`overlap_bound`] | §2.2: maximum centroid error vs range-overlap ratio `R/d` under uniform placement |
//! | [`robustness`] | §3.1 generalization: placement quality under partial exploration and GPS measurement noise |
//! | [`fault_robustness`] | §6 future work: localization error and algorithm ranking under injected faults (beacon death, burst loss, GPS outages) |
//! | [`solution_space`] | §1 contribution 3: measuring the solution-space density the algorithms rely on |
//! | [`multilat_placement`] | §6 future work: the placement algorithms recast for multilateration localization |
//! | [`net_sim`] | §2.2/§6 time domain (`abp-net`): localization error vs beacon interval, collision rate vs density, network lifetime vs duty cycle |

pub mod density_error;
pub mod fault_robustness;
pub mod granularity;
pub mod improvement;
pub mod localizer_compare;
pub mod multi_beacon;
pub mod multilat_placement;
pub mod net_sim;
pub mod overlap_bound;
pub mod robustness;
pub mod solution_space;
