//! Several beacons at once (paper §6).
//!
//! "We also plan to evaluate the algorithms with respect to the gains
//! obtained when several beacons are added at once (instead of just one
//! beacon)." Two deployment strategies are compared as `k` grows:
//!
//! * **greedy** — propose, deploy, incrementally re-survey, repeat
//!   (`abp_placement::greedy_batch`): each beacon reacts to the previous
//!   ones but the robot must re-measure between drops;
//! * **one-shot** — rank the top `k` grids from a *single* survey
//!   (`GridPlacement::propose_top_k`): one pass, but the k-th beacon is
//!   blind to the first k−1.
//!
//! The gap between the curves prices the re-measurement passes.

use crate::config::SimConfig;
use crate::runner::parallel_map;
use abp_geom::splitmix64;
use abp_placement::{greedy_batch, GridPlacement};
use abp_stats::{ConfidenceInterval, Welford};
use abp_survey::ErrorMap;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One `k` point of the strategy comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiBeaconPoint {
    /// Number of beacons added at once.
    pub k: usize,
    /// Total improvement in mean error from greedy placement.
    pub greedy: ConfidenceInterval,
    /// Total improvement in mean error from one-shot top-k placement.
    pub oneshot: ConfidenceInterval,
}

/// Runs the comparison at one beacon count and noise level for each `k`.
///
/// # Panics
///
/// Panics if any `k` is zero or exceeds the Grid algorithm's grid count.
pub fn run(cfg: &SimConfig, noise: f64, beacons: usize, ks: &[usize]) -> Vec<MultiBeaconPoint> {
    let grid = GridPlacement::new(cfg.terrain(), cfg.nominal_range, cfg.num_grids);
    ks.iter()
        .enumerate()
        .map(|(ki, &k)| {
            assert!(k >= 1, "k must be at least 1");
            let samples = parallel_map(cfg.trials, cfg.threads, |t| {
                let trial_seed = cfg.trial_seed(ki, t);
                let field = cfg.trial_field(beacons, trial_seed);
                let model = cfg.model(noise, splitmix64(trial_seed ^ 0x4E_01_5E));
                let lattice = cfg.lattice();
                let before = ErrorMap::survey(&lattice, &field, &*model, cfg.policy);
                let before_mean = before.mean_error();

                // Greedy with incremental re-surveys.
                let mut greedy_field = field.clone();
                let mut greedy_map = before.clone();
                let mut rng = StdRng::seed_from_u64(splitmix64(trial_seed ^ 0x6EED));
                greedy_batch(
                    &grid,
                    &mut greedy_map,
                    &mut greedy_field,
                    &*model,
                    k,
                    &mut rng,
                );
                let greedy_gain = before_mean - greedy_map.mean_error();

                // One-shot top-k from the single 'before' survey.
                let mut oneshot_field = field.clone();
                let mut oneshot_map = before.clone();
                for pos in grid.propose_top_k(&before, k) {
                    let id = oneshot_field.add_beacon(pos);
                    oneshot_map.add_beacon(oneshot_field.get(id).expect("just added"), &*model);
                }
                let oneshot_gain = before_mean - oneshot_map.mean_error();
                (greedy_gain, oneshot_gain)
            });
            let mut g = Welford::new();
            let mut o = Welford::new();
            for (gg, oo) in samples {
                g.push(gg);
                o.push(oo);
            }
            MultiBeaconPoint {
                k,
                greedy: ConfidenceInterval::from_moments(g.mean(), g.sample_std(), g.count()),
                oneshot: ConfidenceInterval::from_moments(o.mean(), o.sample_std(), o.count()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            trials: 16,
            ..SimConfig::tiny()
        }
    }

    #[test]
    fn gains_grow_with_k() {
        let points = run(&cfg(), 0.0, 30, &[1, 4, 8]);
        assert_eq!(points.len(), 3);
        assert!(points[2].greedy.estimate > points[0].greedy.estimate);
        assert!(points[2].oneshot.estimate > points[0].oneshot.estimate);
    }

    #[test]
    fn greedy_at_least_matches_oneshot() {
        let points = run(&cfg(), 0.0, 30, &[4, 8]);
        for p in &points {
            assert!(
                p.greedy.estimate >= p.oneshot.estimate - p.oneshot.half_width,
                "k={}: greedy {} clearly lost to one-shot {}",
                p.k,
                p.greedy.estimate,
                p.oneshot.estimate
            );
        }
    }

    #[test]
    fn k_one_strategies_coincide() {
        // With a single beacon both strategies place at the same grid
        // center, so their gains are identical.
        let points = run(&cfg(), 0.0, 40, &[1]);
        assert!(
            (points[0].greedy.estimate - points[0].oneshot.estimate).abs() < 1e-9,
            "{} vs {}",
            points[0].greedy.estimate,
            points[0].oneshot.estimate
        );
    }

    #[test]
    fn deterministic() {
        let c = cfg();
        assert_eq!(run(&c, 0.3, 30, &[2]), run(&c, 0.3, 30, &[2]));
    }
}
