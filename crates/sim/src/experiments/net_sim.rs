//! Time-domain experiments on the `abp-net` discrete-event simulator.
//!
//! Three new axes the timeless oracle predicate could never measure:
//!
//! * **localization error vs beacon interval** ([`interval_sweep`]) — how
//!   the §2.2 message-counting rule degrades localization as the
//!   beaconing period `T` grows against a fixed listen window `t` and
//!   `CMthresh`,
//! * **collision rate vs beacon density** ([`collision_sweep`]) — what
//!   fraction of in-range receptions the MAC loses to interference as
//!   deployments densify (hidden terminals included),
//! * **network lifetime vs duty cycle** ([`lifetime_sweep`]) — how
//!   receiver duty cycling stretches time-to-first-death on a finite
//!   battery.
//!
//! Each sweep is deterministic in `cfg.seed` and thread-count invariant,
//! reports progress through the standard [`Ctx`] probe, and survives
//! panicking trials exactly like the density sweep (failed trials are
//! reported and excluded from the statistics). Net sweeps always run on
//! the plain parallel engine — they are short compared to the Monte-Carlo
//! surveys, so the supervised retry machinery is not wired here.

use crate::config::SimConfig;
use crate::progress::{Ctx, TrialFailureReport};
use crate::runner::parallel_try_map;
use abp_geom::splitmix64;
use abp_net::{NetConfig, NetSim};
use abp_stats::{ConfidenceInterval, Welford};
use abp_survey::ErrorMap;
use std::time::Instant;

/// Experiment name of the interval axis (probe events, figure id).
pub const NET_INTERVAL: &str = "net-interval";
/// Experiment name of the collision axis.
pub const NET_COLLISIONS: &str = "net-collisions";
/// Experiment name of the lifetime axis.
pub const NET_LIFETIME: &str = "net-lifetime";

/// Seed salts separating the model and schedule draw streams from the
/// field stream (which reuses [`SimConfig::trial_field`] unchanged).
const MODEL_SALT: u64 = 0x4E70_10DE;
const NET_SALT: u64 = 0x4E70_5EED;

/// The three sweep axes plus the [`NetConfig`] template behind each.
#[derive(Debug, Clone, PartialEq)]
pub struct NetAxes {
    /// Beacon count for the interval and lifetime axes.
    pub beacons: usize,
    /// Beaconing periods `T` (seconds) swept by [`interval_sweep`].
    pub periods: Vec<f64>,
    /// Receiver duty cycles swept by [`lifetime_sweep`].
    pub duty_cycles: Vec<f64>,
    /// Template for the interval axis (its `period` is overridden per
    /// point).
    pub interval: NetConfig,
    /// Template for the collision axis: short period, long airtime, full
    /// jitter — a deliberately contended channel.
    pub collision: NetConfig,
    /// Template for the lifetime axis: finite battery (its `duty_cycle`
    /// is overridden per point).
    pub lifetime: NetConfig,
}

impl NetAxes {
    /// Default axes scaled for a [`SimConfig`] preset: the middle entry
    /// of `beacon_counts` as the fixed deployment, periods spanning
    /// `t / CMthresh` (where the message-counting rule tips over), and
    /// duty cycles from 20 % to always-on.
    pub fn for_config(cfg: &SimConfig) -> Self {
        let beacons = cfg
            .beacon_counts
            .get(cfg.beacon_counts.len() / 2)
            .copied()
            .unwrap_or(100);
        let interval = NetConfig {
            duration: 12.0,
            listen: 4.0,
            ..NetConfig::paper()
        };
        let collision = NetConfig {
            duration: 12.0,
            listen: 4.0,
            period: 0.5,
            airtime: 10e-3,
            jitter: 1.0,
            ..NetConfig::paper()
        };
        let lifetime = NetConfig {
            duration: 30.0,
            listen: 4.0,
            battery: 0.06,
            tx_cost: 1e-3,
            idle_power: 4e-3,
            ..NetConfig::paper()
        };
        NetAxes {
            beacons,
            periods: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            duty_cycles: vec![0.2, 0.4, 0.6, 0.8, 1.0],
            interval,
            collision,
            lifetime,
        }
    }
}

/// One trial's two summary metrics (what they mean depends on the axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetTrialSample {
    /// The axis's headline metric.
    pub primary: f64,
    /// Its companion metric.
    pub secondary: f64,
}

/// One aggregated point of a net sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetPoint {
    /// The axis value (period in seconds, density in /m², or duty cycle).
    pub x: f64,
    /// Headline metric with a 95 % confidence interval.
    pub primary: ConfidenceInterval,
    /// Companion metric with a 95 % confidence interval.
    pub secondary: ConfidenceInterval,
}

/// A completed net sweep: one point per axis value plus any trial
/// failures (absent from the statistics, like the density sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct NetSweepOutcome {
    /// One aggregated point per axis value.
    pub points: Vec<NetPoint>,
    /// Every trial that panicked.
    pub failures: Vec<TrialFailureReport>,
}

/// **Localization error vs beacon interval.** Each trial deploys
/// `axes.beacons` beacons, simulates the schedule at the point's period,
/// then surveys the lattice through the run's [`abp_net::MessageCountOracle`]
/// — `primary` is the mean localization error, `secondary` the fraction
/// of lattice points hearing no beacon at all.
pub fn interval_sweep(cfg: &SimConfig, axes: &NetAxes, ctx: Ctx<'_>) -> NetSweepOutcome {
    let mut outcome = NetSweepOutcome {
        points: Vec::with_capacity(axes.periods.len()),
        failures: Vec::new(),
    };
    for (di, &period) in axes.periods.iter().enumerate() {
        let ncfg = NetConfig {
            period,
            ..axes.interval.clone()
        };
        let (point, failures) =
            run_point(cfg, NET_INTERVAL, di, axes.beacons, period, ctx, |seed| {
                interval_trial(cfg, &ncfg, axes.beacons, seed)
            });
        outcome.points.push(point);
        outcome.failures.extend(failures);
    }
    outcome
}

/// One interval-axis trial, exposed for tests.
pub fn interval_trial(
    cfg: &SimConfig,
    ncfg: &NetConfig,
    beacons: usize,
    seed: u64,
) -> NetTrialSample {
    let field = cfg.trial_field(beacons, seed);
    let model = cfg.model(0.0, splitmix64(seed ^ MODEL_SALT));
    let run = NetSim::run(&field, &*model, ncfg, splitmix64(seed ^ NET_SALT));
    let oracle = run.oracle(&*model);
    let lattice = cfg.lattice();
    let map = ErrorMap::survey(&lattice, &field, &oracle, cfg.policy);
    NetTrialSample {
        primary: map.mean_error(),
        secondary: map.unheard_count() as f64 / map.len() as f64,
    }
}

/// **Collision rate vs beacon density.** Each trial deploys the point's
/// beacon count on a deliberately contended channel — `primary` is the
/// fraction of in-range receptions destroyed by interference
/// ([`abp_net::NetStats::collision_rate`]), `secondary` the backoffs per
/// transmitted message.
pub fn collision_sweep(cfg: &SimConfig, axes: &NetAxes, ctx: Ctx<'_>) -> NetSweepOutcome {
    let mut outcome = NetSweepOutcome {
        points: Vec::with_capacity(cfg.beacon_counts.len()),
        failures: Vec::new(),
    };
    for (di, &beacons) in cfg.beacon_counts.iter().enumerate() {
        let x = cfg.density_of(beacons);
        let (point, failures) = run_point(cfg, NET_COLLISIONS, di, beacons, x, ctx, |seed| {
            collision_trial(cfg, &axes.collision, beacons, seed)
        });
        outcome.points.push(point);
        outcome.failures.extend(failures);
    }
    outcome
}

/// One collision-axis trial, exposed for tests.
pub fn collision_trial(
    cfg: &SimConfig,
    ncfg: &NetConfig,
    beacons: usize,
    seed: u64,
) -> NetTrialSample {
    let field = cfg.trial_field(beacons, seed);
    let model = cfg.model(0.0, splitmix64(seed ^ MODEL_SALT));
    let run = NetSim::run(&field, &*model, ncfg, splitmix64(seed ^ NET_SALT));
    NetTrialSample {
        primary: run.stats.collision_rate(),
        secondary: run.stats.backoffs as f64 / run.stats.messages_sent.max(1) as f64,
    }
}

/// **Network lifetime vs duty cycle.** Each trial runs `axes.beacons`
/// beacons on the finite-battery template at the point's duty cycle —
/// `primary` is the network lifetime in seconds (time of first battery
/// death, or the full duration when everyone survives), `secondary` the
/// fraction of beacons still alive at the end.
pub fn lifetime_sweep(cfg: &SimConfig, axes: &NetAxes, ctx: Ctx<'_>) -> NetSweepOutcome {
    let mut outcome = NetSweepOutcome {
        points: Vec::with_capacity(axes.duty_cycles.len()),
        failures: Vec::new(),
    };
    for (di, &duty) in axes.duty_cycles.iter().enumerate() {
        let ncfg = NetConfig {
            duty_cycle: duty,
            ..axes.lifetime.clone()
        };
        let (point, failures) = run_point(cfg, NET_LIFETIME, di, axes.beacons, duty, ctx, |seed| {
            lifetime_trial(cfg, &ncfg, axes.beacons, seed)
        });
        outcome.points.push(point);
        outcome.failures.extend(failures);
    }
    outcome
}

/// One lifetime-axis trial, exposed for tests.
pub fn lifetime_trial(
    cfg: &SimConfig,
    ncfg: &NetConfig,
    beacons: usize,
    seed: u64,
) -> NetTrialSample {
    let field = cfg.trial_field(beacons, seed);
    let model = cfg.model(0.0, splitmix64(seed ^ MODEL_SALT));
    let run = NetSim::run(&field, &*model, ncfg, splitmix64(seed ^ NET_SALT));
    NetTrialSample {
        primary: run.lifetime_secs(),
        secondary: run.stats.alive_at_end as f64 / beacons.max(1) as f64,
    }
}

/// Runs `cfg.trials` trials of one axis point on the parallel engine,
/// reporting sweep/trial events to `ctx.probe` and isolating panicking
/// trials, then aggregates both metrics into 95 % confidence intervals.
fn run_point<F>(
    cfg: &SimConfig,
    experiment: &'static str,
    di: usize,
    beacons: usize,
    x: f64,
    ctx: Ctx<'_>,
    trial: F,
) -> (NetPoint, Vec<TrialFailureReport>)
where
    F: Fn(u64) -> NetTrialSample + Sync,
{
    ctx.probe.sweep_start(experiment, beacons, cfg.trials);
    let started = Instant::now();
    let outcome = parallel_try_map(cfg.trials, cfg.threads, |t| {
        let _span = abp_trace::span!("trial.net");
        let begun = Instant::now();
        let sample = trial(cfg.trial_seed(di, t));
        ctx.probe.trial_done(begun.elapsed());
        sample
    });
    let failures: Vec<TrialFailureReport> = outcome
        .failures
        .into_iter()
        .map(|f| TrialFailureReport {
            experiment,
            density_index: di,
            beacons,
            trial: f.index,
            seed: cfg.trial_seed(di, f.index),
            message: f.message,
        })
        .collect();
    for f in &failures {
        ctx.probe.trial_failed(f);
    }
    let mut primary = Welford::new();
    let mut secondary = Welford::new();
    for (_, s) in &outcome.successes {
        primary.push(s.primary);
        secondary.push(s.secondary);
    }
    let point = NetPoint {
        x,
        primary: ConfidenceInterval::from_moments(
            primary.mean(),
            primary.sample_std(),
            primary.count(),
        ),
        secondary: ConfidenceInterval::from_moments(
            secondary.mean(),
            secondary.sample_std(),
            secondary.count(),
        ),
    };
    ctx.probe
        .sweep_done(experiment, beacons, started.elapsed(), false);
    (point, failures)
}

/// The CLI's `--replay-check` gate: simulates one schedule twice from the
/// same trial seed and reports whether the event logs are byte-identical.
/// Any `false` here is a determinism regression.
pub fn replay_identical(cfg: &SimConfig, axes: &NetAxes, trial: usize) -> bool {
    let seed = cfg.trial_seed(0, trial);
    let field = cfg.trial_field(axes.beacons, seed);
    let model = cfg.model(0.0, splitmix64(seed ^ MODEL_SALT));
    let net_seed = splitmix64(seed ^ NET_SALT);
    let a = NetSim::run(&field, &*model, &axes.collision, net_seed);
    let b = NetSim::run(&field, &*model, &axes.collision, net_seed);
    a.log_bytes() == b.log_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            trials: 6,
            beacon_counts: vec![30, 120, 240],
            ..SimConfig::tiny()
        }
    }

    fn axes(cfg: &SimConfig) -> NetAxes {
        let mut a = NetAxes::for_config(cfg);
        // Shrink the simulated spans so the unit suite stays fast.
        a.interval.duration = 6.0;
        a.collision.duration = 6.0;
        a.lifetime.duration = 12.0;
        a.lifetime.battery = 0.024;
        a.periods = vec![0.5, 2.0, 4.0];
        a.duty_cycles = vec![0.25, 1.0];
        a
    }

    #[test]
    fn axes_scale_from_config() {
        let c = cfg();
        let a = NetAxes::for_config(&c);
        assert_eq!(a.beacons, 120, "middle of the beacon counts");
        assert!(!a.periods.is_empty());
        a.interval.validate();
        a.collision.validate();
        a.lifetime.validate();
        assert!(a.lifetime.battery.is_finite());
    }

    #[test]
    fn interval_error_rises_with_period() {
        let c = cfg();
        let a = axes(&c);
        let out = interval_sweep(&c, &a, Ctx::noop());
        assert!(out.failures.is_empty());
        assert_eq!(out.points.len(), 3);
        let first = &out.points[0];
        let last = &out.points[2];
        assert!(
            last.primary.estimate > first.primary.estimate,
            "period 4 s must localize worse than 0.5 s ({} vs {})",
            last.primary.estimate,
            first.primary.estimate
        );
        assert!(
            last.secondary.estimate > first.secondary.estimate,
            "unheard fraction must rise with the period"
        );
    }

    #[test]
    fn collision_rate_rises_with_density() {
        let c = cfg();
        let a = axes(&c);
        let out = collision_sweep(&c, &a, Ctx::noop());
        assert!(out.failures.is_empty());
        assert_eq!(out.points.len(), 3);
        assert!(
            out.points[2].primary.estimate > out.points[0].primary.estimate,
            "240 beacons must collide more than 30 ({} vs {})",
            out.points[2].primary.estimate,
            out.points[0].primary.estimate
        );
        for p in &out.points {
            assert!((0.0..=1.0).contains(&p.primary.estimate));
        }
    }

    #[test]
    fn lifetime_grows_as_duty_falls() {
        let c = cfg();
        let a = axes(&c);
        let out = lifetime_sweep(&c, &a, Ctx::noop());
        assert!(out.failures.is_empty());
        assert_eq!(out.points.len(), 2);
        let low_duty = &out.points[0];
        let full_duty = &out.points[1];
        assert!(
            low_duty.primary.estimate > full_duty.primary.estimate,
            "duty 0.25 must outlive duty 1.0 ({} vs {})",
            low_duty.primary.estimate,
            full_duty.primary.estimate
        );
    }

    #[test]
    fn sweeps_are_deterministic_and_thread_invariant() {
        let mut c = cfg();
        c.trials = 4;
        c.beacon_counts = vec![60];
        let a = axes(&c);
        let x = collision_sweep(&c, &a, Ctx::noop());
        let y = collision_sweep(&c, &a, Ctx::noop());
        assert_eq!(x, y);
        let mut c1 = c.clone();
        c1.threads = 1;
        let seq = collision_sweep(&c1, &a, Ctx::noop());
        assert_eq!(x, seq, "results must not depend on thread count");
    }

    #[test]
    fn replay_gate_accepts_the_deterministic_engine() {
        let mut c = cfg();
        c.beacon_counts = vec![60];
        let a = axes(&c);
        assert!(replay_identical(&c, &a, 0));
        assert!(replay_identical(&c, &a, 3));
    }

    #[test]
    fn failed_trials_are_reported_not_fatal() {
        let c = cfg();
        let (point, failures) = run_point(&c, NET_INTERVAL, 0, 60, 1.0, Ctx::noop(), |seed| {
            if seed == c.trial_seed(0, 2) {
                panic!("injected net fault");
            }
            NetTrialSample {
                primary: 1.0,
                secondary: 0.5,
            }
        });
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].trial, 2);
        assert!(failures[0].message.contains("injected net fault"));
        assert_eq!(point.primary.estimate, 1.0);
    }
}
