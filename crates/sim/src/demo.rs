//! A worked demonstration for the CLI: survey, render, place, render.

use crate::config::SimConfig;
use abp_field::BeaconField;
use abp_placement::{GridPlacement, PlacementAlgorithm, SurveyView};
use abp_survey::render::{render_heatmap, HeatmapOptions};
use abp_survey::ErrorMap;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one adaptive-placement step on a random field and renders the
/// before/after error maps as ASCII heatmaps — the terminal version of the
/// paper's "localization regions" intuition.
///
/// Deterministic in `cfg.seed`.
///
/// # Example
///
/// ```
/// use abp_sim::{heatmap_demo, SimConfig};
/// let art = heatmap_demo(&SimConfig::tiny());
/// assert!(art.contains("before placement"));
/// assert!(art.contains("after placement"));
/// ```
pub fn heatmap_demo(cfg: &SimConfig) -> String {
    let terrain = cfg.terrain();
    let lattice = cfg.lattice();
    let model = cfg.model(0.0, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut field = BeaconField::random_uniform(40, terrain, &mut rng);
    let before = ErrorMap::survey(&lattice, &field, &*model, cfg.policy);
    let scale = before.valid_errors().fold(0.0f64, f64::max);
    let options = HeatmapOptions {
        width: 64,
        scale_max: Some(scale.max(f64::MIN_POSITIVE)),
        show_beacons: true,
    };

    let mut out = String::new();
    out.push_str(&format!(
        "before placement: mean error {:.2} m\n",
        before.mean_error()
    ));
    out.push_str(&render_heatmap(&before, Some(&field), options));

    let grid = GridPlacement::new(terrain, cfg.nominal_range, cfg.num_grids);
    let spot = {
        let view = SurveyView {
            map: &before,
            field: &field,
            model: &*model,
        };
        grid.propose(&view, &mut rng)
    };
    let id = field.add_beacon(spot);
    let mut after = before.clone();
    after.add_beacon(field.get(id).expect("just added"), &*model);

    out.push_str(&format!(
        "\nafter placement at ({:.1}, {:.1}): mean error {:.2} m\n",
        spot.x,
        spot.y,
        after.mean_error()
    ));
    out.push_str(&render_heatmap(&after, Some(&field), options));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_renders_both_maps_and_improves() {
        let art = heatmap_demo(&SimConfig::tiny());
        assert!(art.contains("before placement"));
        assert!(art.contains("after placement"));
        assert!(art.matches("error scale").count() == 2);
        // Extract the two mean errors and check improvement.
        let means: Vec<f64> = art
            .lines()
            .filter(|l| l.contains("mean error"))
            .map(|l| {
                l.split("mean error ")
                    .nth(1)
                    .unwrap()
                    .trim_end_matches(" m")
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(means.len(), 2);
        assert!(means[1] <= means[0]);
    }

    #[test]
    fn demo_is_deterministic() {
        let cfg = SimConfig::tiny();
        assert_eq!(heatmap_demo(&cfg), heatmap_demo(&cfg));
    }
}
